"""Ablation — the SLA billing window (EXPERIMENTS.md deviation 1).

This reproduction evaluates the violation tiers over a trailing billing
window instead of the paper's cumulative-from-start percentage.  The
deviation must not *create* the headline ordering: Megh has to beat
THR-MMT on total cost under a short window (2 h), a long window (1 day),
and the cumulative reading (window = experiment length).  This bench
runs all three and asserts exactly that.
"""

from benchmarks.conftest import run_once
from repro.baselines.mmt.scheduler import MMTScheduler
from repro.config import CostConfig, SimulationConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import build_planetlab_simulation
from repro.harness.runner import run_comparison

STEPS = 600
WINDOWS = {
    "2h window": 7200.0,
    "1d window": 86400.0,
    "cumulative": STEPS * 300.0,
}


def test_ablation_billing_window(benchmark, emit):
    def experiment():
        outcome = {}
        for label, window in WINDOWS.items():
            config = SimulationConfig(
                num_steps=STEPS,
                seed=0,
                costs=CostConfig(sla_billing_window_seconds=window),
            )
            sim = build_planetlab_simulation(
                num_pms=16, num_vms=21, num_steps=STEPS, seed=0,
                config=config,
            )
            outcome[label] = run_comparison(
                sim,
                {
                    "THR-MMT": lambda s: MMTScheduler("THR"),
                    "Megh": lambda s: MeghScheduler.from_simulation(
                        s, seed=0
                    ),
                },
            )
        return outcome

    results = run_once(benchmark, experiment)
    lines = ["ablation: SLA billing window (600 steps, 16 PMs/21 VMs)"]
    for label, runs in results.items():
        lines.append(
            f"{label:11s}: Megh={runs['Megh'].total_cost_usd:8.2f} USD  "
            f"THR-MMT={runs['THR-MMT'].total_cost_usd:8.2f} USD"
        )
    emit("\n".join(lines))

    for label, runs in results.items():
        assert (
            runs["Megh"].total_cost_usd < runs["THR-MMT"].total_cost_usd
        ), f"Megh must beat THR-MMT under the {label} billing model"