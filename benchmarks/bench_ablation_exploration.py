"""Ablation — Boltzmann exploration vs pure-greedy and heavy exploration.

Megh's Algorithm 2 argues for Boltzmann weights with a decaying
temperature.  This bench runs the paper default (Temp0 = 3, eps = 0.01)
against a near-greedy variant (tiny Temp0) and a hot, slowly-decaying
variant, on the same PlanetLab workload, and reports total cost and
migrations.  The paper-default must not lose to both extremes.
"""

from benchmarks.conftest import run_once
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.core.exploration import EpsilonGreedyPolicy
from repro.harness.builders import build_planetlab_simulation

VARIANTS = {
    "greedy (Temp0=0.01)": MeghConfig(
        initial_temperature=0.01, temperature_decay=0.0
    ),
    "paper (Temp0=3, eps=0.01)": MeghConfig(),
    "hot (Temp0=10, eps=0.001)": MeghConfig(
        initial_temperature=10.0, temperature_decay=0.001
    ),
    "epsilon-greedy (0.3)": MeghConfig(),
}


def test_ablation_exploration(benchmark, emit):
    def experiment():
        outcome = {}
        for name, config in VARIANTS.items():
            sim = build_planetlab_simulation(
                num_pms=16, num_vms=21, num_steps=800, seed=0
            )
            policy = (
                EpsilonGreedyPolicy(epsilon=0.3, decay=0.01, seed=0)
                if name.startswith("epsilon-greedy")
                else None
            )
            agent = MeghScheduler.from_simulation(
                sim, config=config, seed=0
            )
            if policy is not None:
                agent.policy = policy
            outcome[name] = sim.run(agent)
        return outcome

    results = run_once(benchmark, experiment)
    lines = ["ablation: exploration strategies (800 steps, 16 PMs/21 VMs)"]
    steady = {}
    for name, result in results.items():
        costs = result.metrics.per_step_cost_series()
        steady[name] = sum(costs[-200:]) / 200
        lines.append(
            f"{name:28s} total={result.total_cost_usd:8.2f} USD "
            f"steady/step={steady[name]:.4f} "
            f"migrations={result.total_migrations:5d}"
        )
    emit("\n".join(lines))

    # Exploration buys steady-state quality at transient price; the
    # paper setting's converged per-step cost must stay within 2x of the
    # best variant and must beat the hot extreme (which never stops
    # exploring).
    paper = steady["paper (Temp0=3, eps=0.01)"]
    assert paper <= 2.0 * min(steady.values())
    assert paper <= steady["hot (Temp0=10, eps=0.001)"]
