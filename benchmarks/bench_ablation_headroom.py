"""Ablation — Megh's destination headroom (DESIGN.md decision 3).

Consolidation proposals fill destinations only to
``destination_headroom x beta`` of capacity.  Too little headroom packs
hosts onto the overload edge (demand noise tips them over and the SLA
bill explodes); too much forfeits consolidation's energy savings.  The
landscape is noisy per seed, so the sweep aggregates over three seeds
and asserts the shipped default (0.60) stays within 1.5x of the best
*mean* total cost.
"""

from benchmarks.conftest import run_once
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import build_planetlab_simulation
from repro.harness.multiseed import run_multi_seed

HEADROOMS = (0.4, 0.6, 0.85, 1.0)
SEEDS = (0, 1, 2)
DEFAULT = 0.4


def test_ablation_destination_headroom(benchmark, emit):
    def experiment():
        factories = {
            f"h={headroom:.2f}": (
                lambda sim, headroom=headroom: MeghScheduler.from_simulation(
                    sim,
                    config=MeghConfig(destination_headroom=headroom),
                    seed=0,
                )
            )
            for headroom in HEADROOMS
        }
        return run_multi_seed(
            lambda seed: build_planetlab_simulation(
                num_pms=16, num_vms=21, num_steps=600, seed=seed
            ),
            factories,
            seeds=SEEDS,
        )

    aggregates = run_once(benchmark, experiment)
    lines = [
        "ablation: destination headroom "
        f"(600 steps, 16 PMs/21 VMs, {len(SEEDS)} seeds)"
    ]
    for name, aggregate in aggregates.items():
        lines.append(
            f"{name}: total={aggregate.total_cost_usd.mean:8.2f} "
            f"± {aggregate.total_cost_usd.std:6.2f} USD  "
            f"hosts={aggregate.mean_active_hosts.mean:4.1f}  "
            f"migrations={aggregate.total_migrations.mean:5.0f}  "
            f"wins={aggregate.wins}"
        )
    emit("\n".join(lines))

    means = {
        name: aggregate.total_cost_usd.mean
        for name, aggregate in aggregates.items()
    }
    best = min(means.values())
    assert means[f"h={DEFAULT:.2f}"] <= 1.5 * best, (
        "the shipped headroom default must stay near the sweep optimum "
        f"(means: {means})"
    )
