"""Ablation — the 2 % per-step migration cap (Section 6.1).

The paper caps Megh at 2 % of the VMs per step.  This bench sweeps the
cap and reports total cost and migrations: a tiny cap starves overload
relief, an unbounded cap lets exploration churn; the paper's 2 % must be
competitive with the best of the sweep.
"""

from benchmarks.conftest import run_once
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import build_planetlab_simulation

CAPS = (0.02, 0.10, 0.50)


def test_ablation_migration_cap(benchmark, emit):
    def experiment():
        outcome = {}
        for cap in CAPS:
            sim = build_planetlab_simulation(
                num_pms=16, num_vms=21, num_steps=400, seed=0
            )
            config = MeghConfig(max_migration_fraction=cap)
            agent = MeghScheduler.from_simulation(sim, config=config, seed=0)
            outcome[cap] = sim.run(agent)
        return outcome

    results = run_once(benchmark, experiment)
    lines = ["ablation: migration cap (400 steps, 16 PMs/21 VMs)"]
    for cap, result in results.items():
        lines.append(
            f"cap={cap:4.0%}: total={result.total_cost_usd:8.2f} USD "
            f"migrations={result.total_migrations:5d}"
        )
    emit("\n".join(lines))

    # Larger caps must produce at least as many migrations.
    migrations = [results[cap].total_migrations for cap in CAPS]
    assert migrations == sorted(migrations)
    # The paper's 2 % must be within 2x of the sweep's best cost.
    best = min(r.total_cost_usd for r in results.values())
    assert results[0.02].total_cost_usd <= 2.0 * best
