"""Ablation — Megh's sparse data structure vs dense linear algebra.

Section 5.2 claims the triplet/sparse representation (plus
Sherman-Morrison) is what makes Megh real-time: a dense implementation
pays O(d^2) per step (d = N x M) while the sparse one touches only the
non-zeros involved in the executed actions.  This bench updates both
representations with an identical action stream and compares per-update
cost; the gap must widen with d.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.dense import DenseLstd
from repro.core.lstd import SparseLstd


def action_stream(dimension: int, length: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    actions = rng.integers(0, dimension, size=(length, 2))
    costs = rng.normal(0.0, 1.0, size=length)
    return [(int(a), int(b), float(c)) for (a, b), c in zip(actions, costs)]


@pytest.mark.parametrize("dimension", [256, 1024])
def test_ablation_sparse_vs_dense(benchmark, emit, dimension):
    stream = action_stream(dimension, length=200)

    import time

    def run_sparse():
        lstd = SparseLstd(dimension=dimension, gamma=0.5)
        for a, b, c in stream:
            lstd.update(a, b, c)
        return lstd

    sparse_lstd = run_once(benchmark, run_sparse)

    started = time.perf_counter()
    dense = DenseLstd(dimension=dimension, gamma=0.5)
    for a, b, c in stream:
        dense.update(a, b, c)
    dense_seconds = time.perf_counter() - started

    # Correctness: both representations agree on every Q-value.
    for a in range(0, dimension, max(1, dimension // 16)):
        assert sparse_lstd.q_value(a) == pytest.approx(
            dense.q_value(a), abs=1e-6
        )

    emit(
        f"ablation sparse-vs-dense d={dimension}: dense reference took "
        f"{dense_seconds * 1000:.1f} ms for 200 updates "
        f"(sparse timing in the benchmark table); "
        f"sparse nnz={sparse_lstd.q_table_nonzeros} of {dimension**2}"
    )

    # The sparse store must stay far from dense fill-in.
    assert sparse_lstd.q_table_nonzeros < 0.5 * dimension**2
