"""Microbenchmark — full ``MeghScheduler.decide()`` at paper scale.

Times every ``decide()`` call of a synthetic-PlanetLab run at the
paper's fleet size (N=1052 VMs, M=800 PMs, d=841,600) with contracts
off, capturing the end-to-end per-step latency the Figure-6 scalability
claim is about — candidate generation, the Algorithm-1 learning step,
batched Q scoring, and Boltzmann selection together.

Results merge into the ``"decide"`` section of ``BENCH_core.json``::

    PYTHONPATH=src python benchmarks/bench_core_decide.py          # paper scale
    PYTHONPATH=src python benchmarks/bench_core_decide.py --fast   # CI smoke

Standalone script (no pytest test functions); the CI ``bench-smoke``
job runs it in ``--fast`` mode.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

try:
    from benchmarks.core_bench_util import DEFAULT_OUTPUT, merge_section
    from benchmarks.core_bench_util import PAPER_NUM_PMS, PAPER_NUM_VMS
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    from core_bench_util import DEFAULT_OUTPUT, merge_section
    from core_bench_util import PAPER_NUM_PMS, PAPER_NUM_VMS


class _TimedDecide:
    """Scheduler proxy that samples the latency of every decide()."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.samples: List[float] = []

    def decide(self, observation):
        started = time.perf_counter()
        migrations = self._inner.decide(observation)
        self.samples.append(time.perf_counter() - started)
        return migrations

    def __getattr__(self, name):
        return getattr(self._inner, name)


def measure_decide(
    num_pms: int, num_vms: int, num_steps: int, seed: int = 0
) -> Dict:
    """Run a fixed-seed simulation, timing each scheduler decision."""
    from repro.core.agent import MeghScheduler
    from repro.harness.builders import build_planetlab_simulation
    from repro.harness.runner import run_scheduler

    simulation = build_planetlab_simulation(
        num_pms=num_pms, num_vms=num_vms, num_steps=num_steps, seed=seed
    )
    scheduler = MeghScheduler.from_simulation(
        simulation, seed=seed, contracts=False
    )
    timed = _TimedDecide(scheduler)
    result = run_scheduler(simulation, timed)
    samples = np.asarray(timed.samples)
    return {
        "num_pms": num_pms,
        "num_vms": num_vms,
        "dimension": num_pms * num_vms,
        "num_steps": int(samples.shape[0]),
        "seed": seed,
        "decide_ms_mean": float(samples.mean() * 1e3),
        "decide_ms_p50": float(np.median(samples) * 1e3),
        "decide_ms_max": float(samples.max() * 1e3),
        "decide_ops_per_s": float(samples.shape[0] / samples.sum()),
        "total_migrations": result.total_migrations,
        "q_table_nonzeros": scheduler.q_table_nonzeros,
        "theta_cache_hits": scheduler.lstd.theta_cache_hits,
        "theta_cache_misses": scheduler.lstd.theta_cache_misses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="tiny fleet for the CI smoke job (seconds, not minutes)",
    )
    parser.add_argument("--out", default=DEFAULT_OUTPUT, metavar="PATH")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="override the number of simulated steps",
    )
    args = parser.parse_args(argv)
    os.environ["REPRO_CONTRACTS"] = "0"  # clean timings

    if args.fast:
        payload = measure_decide(
            num_pms=10,
            num_vms=14,
            num_steps=args.steps or 25,
            seed=args.seed,
        )
    else:
        payload = measure_decide(
            num_pms=PAPER_NUM_PMS,
            num_vms=PAPER_NUM_VMS,
            num_steps=args.steps or 12,
            seed=args.seed,
        )
    merge_section(args.out, "decide", payload)
    json.dump(payload, sys.stdout, indent=1, sort_keys=True)
    print(f"\nmerged into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
