"""Microbenchmark — full ``MeghScheduler.decide()`` at paper scale.

Times every ``decide()`` call of a synthetic-PlanetLab run at the
paper's fleet size (N=1052 VMs, M=800 PMs, d=841,600) with contracts
off, capturing the end-to-end per-step latency the Figure-6 scalability
claim is about — candidate generation, the Algorithm-1 learning step,
batched Q scoring, and Boltzmann selection together.  A per-phase
breakdown splits the total into ``candidate_seconds`` (the array-native
:class:`~repro.core.candidates.CandidateIndex` plan), ``q_seconds``
(batched ``SparseLstd.q_values`` — including any deferred rank-k
flushes the reads trigger) and ``apply_seconds`` (the Sherman–Morrison
``SparseLstd.update`` enqueues).

``--check-oracle`` additionally reruns the same seeded simulation twice
— once through the vectorized candidate pipeline, once through the
retained scalar oracle — and fails unless the decision traces are
element-for-element identical (``oracle_match`` in the payload).

Results merge into the ``"decide"`` section of ``BENCH_core.json``::

    PYTHONPATH=src python benchmarks/bench_core_decide.py          # paper scale
    PYTHONPATH=src python benchmarks/bench_core_decide.py --fast   # CI smoke

Standalone script (no pytest test functions); the CI ``bench-smoke``
job runs it in ``--fast --check-oracle`` mode.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

try:
    from benchmarks.core_bench_util import DEFAULT_OUTPUT, merge_section
    from benchmarks.core_bench_util import PAPER_NUM_PMS, PAPER_NUM_VMS
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    from core_bench_util import DEFAULT_OUTPUT, merge_section
    from core_bench_util import PAPER_NUM_PMS, PAPER_NUM_VMS


class _TimedDecide:
    """Scheduler proxy that samples the latency of every decide()."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.samples: List[float] = []

    def decide(self, observation):
        started = time.perf_counter()
        migrations = self._inner.decide(observation)
        self.samples.append(time.perf_counter() - started)
        return migrations

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _PhaseTimers:
    """Cumulative wall-clock per decide() phase."""

    def __init__(self) -> None:
        self.candidate = 0.0
        self.q = 0.0
        self.apply = 0.0


def _instrument_phases(scheduler, timers: _PhaseTimers) -> None:
    """Shadow the phase entry points with timing wrappers.

    Instance-attribute shadows, so only this scheduler is touched:
    candidate = the CandidateIndex plan (plus the scalar generator when
    the oracle path is active), q = batched Q reads (which also pay any
    pending rank-k flush), apply = Sherman–Morrison update enqueues.
    """
    plan = scheduler.candidate_index.plan
    plan_from_lists = scheduler.candidate_index.plan_from_lists
    scalar_gen = scheduler._candidate_actions
    q_values = scheduler.lstd.q_values
    update = scheduler.lstd.update

    def timed(accumulate, function):
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                accumulate(time.perf_counter() - started)
        return wrapper

    def to_candidate(dt):
        timers.candidate += dt

    def to_q(dt):
        timers.q += dt

    def to_apply(dt):
        timers.apply += dt

    scheduler.candidate_index.plan = timed(to_candidate, plan)
    scheduler.candidate_index.plan_from_lists = timed(
        to_candidate, plan_from_lists
    )
    scheduler._candidate_actions = timed(to_candidate, scalar_gen)
    scheduler.lstd.q_values = timed(to_q, q_values)
    scheduler.lstd.update = timed(to_apply, update)


def measure_decide(
    num_pms: int, num_vms: int, num_steps: int, seed: int = 0
) -> Dict:
    """Run a fixed-seed simulation, timing each scheduler decision."""
    from repro.core.agent import MeghScheduler
    from repro.harness.builders import build_planetlab_simulation
    from repro.harness.runner import run_scheduler

    simulation = build_planetlab_simulation(
        num_pms=num_pms, num_vms=num_vms, num_steps=num_steps, seed=seed
    )
    scheduler = MeghScheduler.from_simulation(
        simulation, seed=seed, contracts=False
    )
    timers = _PhaseTimers()
    _instrument_phases(scheduler, timers)
    timed = _TimedDecide(scheduler)
    result = run_scheduler(simulation, timed)
    samples = np.asarray(timed.samples)
    return {
        "num_pms": num_pms,
        "num_vms": num_vms,
        "dimension": num_pms * num_vms,
        "num_steps": int(samples.shape[0]),
        "seed": seed,
        "decide_ms_mean": float(samples.mean() * 1e3),
        "decide_ms_p50": float(np.median(samples) * 1e3),
        "decide_ms_max": float(samples.max() * 1e3),
        "decide_ops_per_s": float(samples.shape[0] / samples.sum()),
        "candidate_seconds": timers.candidate,
        "q_seconds": timers.q,
        "apply_seconds": timers.apply,
        "total_migrations": result.total_migrations,
        "q_table_nonzeros": scheduler.q_table_nonzeros,
        "theta_cache_hits": scheduler.lstd.theta_cache_hits,
        "theta_cache_misses": scheduler.lstd.theta_cache_misses,
    }


def check_oracle(
    num_pms: int, num_vms: int, num_steps: int, seed: int = 0
) -> bool:
    """Vectorized vs scalar candidate generation: traces must match."""
    from repro.core.agent import MeghScheduler
    from repro.core.trace import DecisionTrace
    from repro.harness.builders import build_planetlab_simulation
    from repro.harness.runner import run_scheduler

    traces = []
    totals = []
    for scalar in (False, True):
        simulation = build_planetlab_simulation(
            num_pms=num_pms, num_vms=num_vms, num_steps=num_steps,
            seed=seed,
        )
        scheduler = MeghScheduler.from_simulation(
            simulation, seed=seed, contracts=False
        )
        scheduler.scalar_candidates = scalar
        scheduler.trace = DecisionTrace()
        result = run_scheduler(simulation, scheduler)
        traces.append(scheduler.trace.records)
        totals.append(
            (result.total_migrations, scheduler.q_table_nonzeros)
        )
    return traces[0] == traces[1] and totals[0] == totals[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="tiny fleet for the CI smoke job (seconds, not minutes)",
    )
    parser.add_argument("--out", default=DEFAULT_OUTPUT, metavar="PATH")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="override the number of simulated steps",
    )
    parser.add_argument(
        "--check-oracle",
        action="store_true",
        help=(
            "also rerun the simulation through the scalar candidate "
            "oracle and fail unless the decision traces are identical"
        ),
    )
    args = parser.parse_args(argv)
    os.environ["REPRO_CONTRACTS"] = "0"  # clean timings

    if args.fast:
        shape = dict(num_pms=10, num_vms=14, num_steps=args.steps or 25)
    else:
        shape = dict(
            num_pms=PAPER_NUM_PMS,
            num_vms=PAPER_NUM_VMS,
            num_steps=args.steps or 12,
        )
    payload = measure_decide(seed=args.seed, **shape)
    if args.check_oracle:
        payload["oracle_match"] = check_oracle(seed=args.seed, **shape)
    merge_section(args.out, "decide", payload)
    json.dump(payload, sys.stdout, indent=1, sort_keys=True)
    print(f"\nmerged into {args.out}")
    if args.check_oracle and not payload["oracle_match"]:
        print(
            "bench_core_decide: ORACLE MISMATCH — vectorized candidate "
            "plan diverged from the scalar generator",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
