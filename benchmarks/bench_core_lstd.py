"""Microbenchmark — SparseLstd primitives at paper scale (d = N x M).

Measures the three numerical-core operations every simulation step is
built from, on a ``B`` with realistic fill-in (an 8000-update action
stream over a 256-action pool at the paper's d = 1052 x 800 = 841,600):

* ``rank_one_update`` throughput (Sherman–Morrison, Eq. 11);
* ``q_value`` cold (theta cache invalidated before every pass) vs warm
  (served from the dirty-row cache) — the ISSUE's >= 5x criterion;
* batched ``q_values`` throughput and a full ``theta()`` scan.

The update loop is also broken down by phase via the deferred kernel's
profiling counters (``SparseMatrix.kernel_stats``): staging (enqueue)
vs grouped replay (flush) vs the rest of the learning step.  Run with
``REPRO_KERNEL=off`` (or ``numpy``) to compare backends; the recorded
``kernel`` field says which one produced the committed numbers.

Results merge into the ``"lstd"`` section of ``BENCH_core.json``::

    PYTHONPATH=src python benchmarks/bench_core_lstd.py          # paper scale
    PYTHONPATH=src python benchmarks/bench_core_lstd.py --fast   # CI smoke

This file is a standalone script, not a pytest-benchmark suite: it
defines no test functions, so ``pytest benchmarks/`` collects nothing
from it.  The CI ``bench-smoke`` job runs it in ``--fast`` mode.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

try:
    from benchmarks.core_bench_util import DEFAULT_OUTPUT, merge_section
    from benchmarks.core_bench_util import PAPER_NUM_PMS, PAPER_NUM_VMS
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    from core_bench_util import DEFAULT_OUTPUT, merge_section
    from core_bench_util import PAPER_NUM_PMS, PAPER_NUM_VMS

from repro.core.lstd import SparseLstd


def _draw_stream(
    rng: np.random.Generator, pool: np.ndarray, count: int
) -> List[Tuple[int, int, float]]:
    first = rng.integers(0, pool.shape[0], size=count)
    second = rng.integers(0, pool.shape[0], size=count)
    costs = rng.normal(0.0, 1.0, size=count)
    return [
        (int(pool[i]), int(pool[j]), float(c))
        for i, j, c in zip(first, second, costs)
    ]


def measure_lstd(
    dimension: int,
    pool_size: int,
    fill_updates: int,
    timed_updates: int,
    eval_passes: int,
    seed: int = 7,
) -> Dict:
    """Fill a ``SparseLstd``, then time its hot-path primitives."""
    rng = np.random.default_rng(seed)
    pool = np.sort(rng.choice(dimension, size=pool_size, replace=False))
    lstd = SparseLstd(dimension=dimension, gamma=0.5)

    for a, a_next, cost in _draw_stream(rng, pool, fill_updates):
        lstd.update(a, a_next, cost)

    timed_stream = _draw_stream(rng, pool, timed_updates)
    stats_before = lstd.B.kernel_stats()
    started = time.perf_counter()
    for a, a_next, cost in timed_stream:
        lstd.update(a, a_next, cost)
    update_seconds = time.perf_counter() - started
    stats_after = lstd.B.kernel_stats()

    # Per-phase breakdown of the timed update loop: staging (enqueue)
    # vs replay (flush) vs everything else (row combine, denominator,
    # theta invalidation).  Counter deltas cover exactly the timed
    # window; all zeros when the deferred kernel is off.
    enqueue_seconds = float(
        stats_after["enqueue_seconds"] - stats_before["enqueue_seconds"]
    )
    flush_seconds = float(
        stats_after["flush_seconds"] - stats_before["flush_seconds"]
    )
    phase_breakdown = {
        "kernel": stats_after["kernel"],
        "window": stats_after["window"],
        "enqueue_seconds": enqueue_seconds,
        "flush_seconds": flush_seconds,
        "other_seconds": update_seconds - enqueue_seconds - flush_seconds,
        "enqueued": int(stats_after["enqueued"] - stats_before["enqueued"]),
        "row_flushes": int(
            stats_after["row_flushes"] - stats_before["row_flushes"]
        ),
        "full_flushes": int(
            stats_after["full_flushes"] - stats_before["full_flushes"]
        ),
        "updates_applied_at_replay": int(
            stats_after["applied"] - stats_before["applied"]
        ),
        "updates_skipped_at_replay": int(
            stats_after["skipped"] - stats_before["skipped"]
        ),
    }

    indices = pool.tolist()

    # Cold: every pass starts with the theta cache fully invalidated, so
    # each q_value is one sparse-row dot product.
    started = time.perf_counter()
    for _ in range(eval_passes):
        lstd.invalidate_theta_cache()
        for index in indices:
            lstd.q_value(index)
    cold_seconds = time.perf_counter() - started

    # Warm: the cache stays valid across passes; each q_value is one
    # array read (this is what repeated candidate scoring looks like).
    lstd.invalidate_theta_cache()
    for index in indices:
        lstd.q_value(index)
    started = time.perf_counter()
    for _ in range(eval_passes):
        for index in indices:
            lstd.q_value(index)
    warm_seconds = time.perf_counter() - started

    # Batched warm path: one q_values() call per pass.
    started = time.perf_counter()
    for _ in range(eval_passes):
        lstd.q_values(pool)
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    theta = lstd.theta()
    theta_seconds = time.perf_counter() - started

    evaluations = eval_passes * len(indices)
    row_nnz = [lstd.B.row_view(int(index))[0].shape[0] for index in indices]
    return {
        "dimension": dimension,
        "pool_size": pool_size,
        "fill_updates": fill_updates,
        "timed_updates": timed_updates,
        "eval_passes": eval_passes,
        "seed": seed,
        "rank_one_update_ops_per_s": timed_updates / update_seconds,
        "q_value_cold_ops_per_s": evaluations / cold_seconds,
        "q_value_warm_ops_per_s": evaluations / warm_seconds,
        "q_values_batched_ops_per_s": evaluations / batched_seconds,
        "warm_over_cold_speedup": cold_seconds / warm_seconds,
        "theta_seconds": theta_seconds,
        "theta_nonzero_entries": int(np.count_nonzero(theta)),
        "q_table_nonzeros": lstd.q_table_nonzeros,
        "mean_pool_row_nnz": float(np.mean(row_nnz)),
        "kernel": lstd.B.kernel_name,
        "phase_breakdown": phase_breakdown,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="tiny sizes for the CI smoke job (seconds, not minutes)",
    )
    parser.add_argument("--out", default=DEFAULT_OUTPUT, metavar="PATH")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    os.environ["REPRO_CONTRACTS"] = "0"  # clean timings

    if args.fast:
        payload = measure_lstd(
            dimension=2_000,
            pool_size=32,
            fill_updates=300,
            timed_updates=200,
            eval_passes=5,
            seed=args.seed,
        )
    else:
        payload = measure_lstd(
            dimension=PAPER_NUM_VMS * PAPER_NUM_PMS,
            pool_size=256,
            fill_updates=8_000,
            timed_updates=2_000,
            eval_passes=40,
            seed=args.seed,
        )
    merge_section(args.out, "lstd", payload)
    json.dump(payload, sys.stdout, indent=1, sort_keys=True)
    print(f"\nmerged into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
