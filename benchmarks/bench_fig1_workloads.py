"""Figure 1 — workload characterisation.

(a) PlanetLab dynamics: per-step mean/max/min utilization with the
    published fleet statistics (mean ~12 %, high dispersion, extremes
    from ~5 % to ~90 %).
(b) Google task durations: log-spaced histogram spanning 10^1..10^6 s
    that matches no standard parametric distribution (Cullen-Frey).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.figures import downsample
from repro.workloads.google import generate_google_workload
from repro.workloads.planetlab import generate_planetlab_workload
from repro.workloads.statistics import (
    duration_histogram,
    nearest_standard_distribution,
    summarize_workload,
)


def test_fig1a_planetlab_dynamics(benchmark, emit):
    def experiment():
        workload = generate_planetlab_workload(
            num_vms=200, num_steps=576, seed=0
        )
        return summarize_workload(workload)

    stats = run_once(benchmark, experiment)
    lines = ["Figure 1(a): PlanetLab workload dynamics (bench scale)"]
    lines.append(f"fleet mean={stats.mean_utilization:.1%} "
                 f"std={stats.std_utilization:.1%}")
    for label, series in (
        ("mean", stats.per_step_mean),
        ("max ", stats.per_step_max),
        ("min ", stats.per_step_min),
    ):
        samples = " ".join(f"{v:.2f}" for v in downsample(list(series), 12))
        lines.append(f"per-step {label}: {samples}")
    emit("\n".join(lines))

    # Paper statistics: mean ~12 %, extremes up to ~90 %, min ~5 %.
    assert 0.05 <= stats.mean_utilization <= 0.30
    assert max(stats.per_step_max) >= 0.80
    assert stats.std_utilization >= 0.10


def test_fig1b_google_durations(benchmark, emit):
    def experiment():
        _, tasks = generate_google_workload(
            num_vms=400, num_steps=2016, seed=0, return_tasks=True
        )
        durations = [
            t.duration_steps * 300.0 for t in tasks
        ]
        return durations

    durations = run_once(benchmark, experiment)
    histogram = duration_histogram(durations, bins_per_decade=1)
    lines = ["Figure 1(b): Google task-duration histogram (bench scale)"]
    for low, high, count in histogram:
        bar = "#" * max(1, int(40 * count / max(c for _, _, c in histogram)))
        lines.append(f"[{low:9.0f}, {high:9.0f}) s: {count:5d} {bar}")
    fit = nearest_standard_distribution(durations)
    lines.append(f"nearest standard distribution: {fit}")
    emit("\n".join(lines))

    # Durations span several decades and fit no standard family.
    assert max(durations) / min(durations) > 1e2
    assert fit == "none (non-standard)"
    assert np.mean(durations) > 2 * np.median(durations)  # heavy tail
