"""Figure 2 — Megh vs THR-MMT on PlanetLab: the four panel series.

Paper findings reproduced in shape:
(a) Megh's per-step cost converges faster (~100 steps vs ~600) and with
    less variance; (b) its cumulative migrations stay far below
    THR-MMT's at every instant; (c) active-host counts are comparable
    (Megh keeps a little slack); (d) per-step execution times are the
    same order at this scale (Figure 6 covers the scaling gap).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.experiments import PRESETS, run_megh_vs_thr
from repro.harness.figures import figure_series, render_figure


def test_fig2_planetlab_series(benchmark, emit, engine):
    preset = PRESETS["fig2"]
    results = run_once(
        benchmark, lambda: run_megh_vs_thr(preset, engine=engine)
    )
    series = [figure_series(result) for result in results.values()]
    emit(render_figure(series, title="Figure 2 (bench scale): PlanetLab"))

    megh = figure_series(results["Megh"])
    thr = figure_series(results["THR-MMT"])

    # (b): Megh's cumulative migrations below THR-MMT's at every instant
    # beyond the first few steps.
    for step in range(20, megh.num_steps):
        assert (
            megh.cumulative_migrations[step]
            <= thr.cumulative_migrations[step]
        )

    # (a): Megh's converged per-step cost is lower and less variable.
    tail = megh.num_steps // 4
    megh_tail = np.asarray(megh.per_step_cost_usd[-tail:])
    thr_tail = np.asarray(thr.per_step_cost_usd[-tail:])
    assert megh_tail.mean() < thr_tail.mean()
    assert megh_tail.std() <= thr_tail.std() * 1.5
