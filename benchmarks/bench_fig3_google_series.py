"""Figure 3 — Megh vs THR-MMT on Google Cluster: the four panel series.

Same panels as Figure 2 on the task-based trace.  The distinguishing
Google finding (Section 6.3): light short-lived tasks make spreading
cheaper than consolidation, so Megh holds *more* hosts active than
THR-MMT while paying less overall.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.experiments import PRESETS, run_megh_vs_thr
from repro.harness.figures import figure_series, render_figure


def test_fig3_google_series(benchmark, emit, engine):
    preset = PRESETS["fig3"]
    results = run_once(
        benchmark, lambda: run_megh_vs_thr(preset, engine=engine)
    )
    series = [figure_series(result) for result in results.values()]
    emit(render_figure(series, title="Figure 3 (bench scale): Google"))

    megh = figure_series(results["Megh"])
    thr = figure_series(results["THR-MMT"])

    # (b): cumulative migrations dominated by THR-MMT throughout.
    for step in range(20, megh.num_steps):
        assert (
            megh.cumulative_migrations[step]
            <= thr.cumulative_migrations[step]
        )

    # (a): converged per-step cost lower for Megh.
    tail = megh.num_steps // 4
    assert np.mean(megh.per_step_cost_usd[-tail:]) < np.mean(
        thr.per_step_cost_usd[-tail:]
    )

    # (c): on Google, Megh does not consolidate aggressively — its
    # active-host count stays the same order as THR-MMT's (at paper
    # scale Megh actually keeps ~2.4x more hosts; at bench scale the
    # light task trace leaves both schedulers in the same band).
    assert np.mean(megh.active_hosts[-tail:]) >= 0.6 * np.mean(
        thr.active_hosts[-tail:]
    )
