"""Figure 4 — Megh vs MadVM on a PlanetLab subset (random placement).

Paper (100 PMs / 150 VMs / 3 days, uniform random initial placement):
Megh incurs less converged per-step cost (-4.3 %), migrates 5.5x less,
keeps ~1/3 the active hosts (21 vs ~58), and executes each step about
1000x faster (7 ms vs 4143 ms).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.experiments import PRESETS, run_megh_vs_madvm
from repro.harness.figures import figure_series, render_figure


def test_fig4_megh_vs_madvm_planetlab(benchmark, emit, engine):
    preset = PRESETS["fig4"]
    results = run_once(
        benchmark, lambda: run_megh_vs_madvm(preset, engine=engine)
    )
    series = [figure_series(result) for result in results.values()]
    emit(
        render_figure(
            series, title="Figure 4 (bench scale): Megh vs MadVM, PlanetLab"
        )
    )

    megh = results["Megh"]
    madvm = results["MadVM"]
    # Converged regime: the last 100 steps (one third of a billing window
    # past Megh's exploration phase).
    tail = 100

    # (a) converged per-step cost: Megh below MadVM.
    assert np.mean(megh.metrics.per_step_cost_series()[-tail:]) < np.mean(
        madvm.metrics.per_step_cost_series()[-tail:]
    )
    # (b) migrations: MadVM migrates several times more.
    assert madvm.total_migrations > 1.5 * megh.total_migrations
    # (c) active hosts: MadVM's per-VM QoS objective spreads VMs.
    assert np.mean(madvm.metrics.active_host_series()[-tail:]) > np.mean(
        megh.metrics.active_host_series()[-tail:]
    )
    # (d) execution overhead: MadVM's value iteration is far slower.
    assert madvm.mean_scheduler_ms > 2.0 * megh.mean_scheduler_ms
