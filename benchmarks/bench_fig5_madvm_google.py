"""Figure 5 — Megh vs MadVM on a Google subset (random placement).

Paper: same panels as Figure 4 on the Google trace — Megh converges in
~40 steps vs ~700 for MadVM, incurs 8.8 % less cost, migrates 6.1x less,
and runs ~1000x faster per step.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.experiments import PRESETS, run_megh_vs_madvm
from repro.harness.figures import figure_series, render_figure


def test_fig5_megh_vs_madvm_google(benchmark, emit, engine):
    preset = PRESETS["fig5"]
    results = run_once(
        benchmark, lambda: run_megh_vs_madvm(preset, engine=engine)
    )
    series = [figure_series(result) for result in results.values()]
    emit(
        render_figure(
            series, title="Figure 5 (bench scale): Megh vs MadVM, Google"
        )
    )

    megh = results["Megh"]
    madvm = results["MadVM"]
    # Converged regime: the last 100 steps.
    tail = 100

    # (a) converged per-step cost: Megh at or below MadVM.
    assert np.mean(
        megh.metrics.per_step_cost_series()[-tail:]
    ) <= 1.05 * np.mean(madvm.metrics.per_step_cost_series()[-tail:])
    # (b) migrations: MadVM migrates several times more.
    assert madvm.total_migrations > 1.5 * megh.total_migrations
    # (d) execution overhead: MadVM far slower per step.
    assert madvm.mean_scheduler_ms > 2.0 * megh.mean_scheduler_ms
