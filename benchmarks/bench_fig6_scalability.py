"""Figure 6 — scalability: per-step decision time vs fleet size.

Paper: m, n swept over {100..800}; THR-MMT's per-step time grows steeply
with the fleet while Megh's rises only gently, making Megh the better
real-time decision maker at scale.  The bench grid spans the same 8x
range at reduced absolute size; the assertion is on *growth factors*:
THR-MMT's time must grow by a larger factor than Megh's across the grid,
with Megh strictly faster at the largest size.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_scalability_grid

SIZES = ((10, 13), (20, 26), (40, 52), (80, 104))


def test_fig6_scalability(benchmark, emit):
    points = run_once(
        benchmark, lambda: run_scalability_grid(sizes=SIZES, num_steps=100)
    )
    by_algorithm = {}
    for point in points:
        by_algorithm.setdefault(point.algorithm, []).append(point)
    lines = ["Figure 6 (bench scale): per-step execution time vs (m, n)"]
    for name, series in by_algorithm.items():
        for point in series:
            lines.append(
                f"{name:8s} m={point.num_pms:4d} n={point.num_vms:4d} "
                f"{point.mean_step_ms:9.3f} ms"
            )
    emit("\n".join(lines))

    thr = sorted(by_algorithm["THR-MMT"], key=lambda p: p.num_pms)
    megh = sorted(by_algorithm["Megh"], key=lambda p: p.num_pms)
    thr_growth = thr[-1].mean_step_ms / max(thr[0].mean_step_ms, 1e-9)
    megh_growth = megh[-1].mean_step_ms / max(megh[0].mean_step_ms, 1e-9)

    assert thr_growth > megh_growth, (
        "THR-MMT's per-step time must grow faster across the grid "
        f"(THR x{thr_growth:.1f} vs Megh x{megh_growth:.1f})"
    )
    assert megh[-1].mean_step_ms < thr[-1].mean_step_ms, (
        "at the largest fleet Megh must decide faster than THR-MMT"
    )
