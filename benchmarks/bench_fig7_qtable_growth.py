"""Figure 7 — growth of Megh's Q-table non-zeros with time and fleet size.

Paper: with N = M, the number of non-zero elements grows linearly in time
and the vertical shift between fleet sizes is roughly linear in the
number of PMs (proportionality constant ~0.3 at paper scale).  The bench
verifies linear-in-time growth (high R^2 of a linear fit) and a starting
level that scales with M (the initial diagonal is d = M^2, so the shift
across sizes is governed by the fleet).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.experiments import run_qtable_growth

PM_COUNTS = (10, 20, 40)


def test_fig7_qtable_growth(benchmark, emit):
    growths = run_once(
        benchmark,
        lambda: run_qtable_growth(pm_counts=PM_COUNTS, num_steps=300),
    )
    lines = ["Figure 7 (bench scale): Q-table non-zeros vs time (N = M)"]
    for growth in growths:
        lines.append(
            f"M=N={growth.num_pms:3d}: start={growth.nonzeros[0]:7d} "
            f"final={growth.nonzeros[-1]:7d} "
            f"slope={growth.slope:7.2f} nnz/step "
            f"intercept={growth.intercept:9.1f}"
        )
    emit("\n".join(lines))

    r_squared_by_size = {}
    for growth in growths:
        nnz = np.asarray(growth.nonzeros, dtype=float)
        steps = np.asarray(growth.steps, dtype=float)
        # Monotone non-decreasing growth with a positive trend...
        assert np.all(np.diff(nnz) >= -2)
        assert nnz[-1] > nnz[0]
        slope, intercept = np.polyfit(steps, nnz, 1)
        assert slope > 0.0
        prediction = intercept + slope * steps
        residual = nnz - prediction
        total = nnz - nnz.mean()
        r_squared_by_size[growth.num_pms] = (
            1.0 - residual @ residual / max(total @ total, 1e-9)
        )
    # ...and approximately linear where the fleet is big enough for a
    # steady migration flow.  (Tiny N = M fleets alternate bursts and
    # calm, bending the curve; the paper's 100+-PM fleets don't.)
    largest = max(r_squared_by_size)
    assert r_squared_by_size[largest] > 0.70, (
        f"growth must be ~linear at scale (R^2={r_squared_by_size})"
    )

    # Vertical shift increases with the number of PMs.
    intercepts = [g.intercept for g in growths]
    assert intercepts == sorted(intercepts)
    assert growths[-1].nonzeros[-1] > growths[0].nonzeros[-1]
