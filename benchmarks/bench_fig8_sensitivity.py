"""Figure 8 — sensitivity of per-step cost to Temp0 and epsilon.

Paper: the median per-step cost falls as Temp0 rises towards ~3 (more
exploration escapes local minima) and rises again beyond it (too much
exploration wastes migrations) — a U-shape with its minimum near
Temp0 = 3.  The epsilon response is "sporadic": no single tipping point,
with a good region near 1e-3.  The bench prints both box-plot summaries
and asserts the weak-form shape: mid-range Temp0 is no worse than the
extremes, and the cost spread across epsilon values stays bounded.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import (
    run_epsilon_sensitivity,
    run_temperature_sensitivity,
)

TEMPERATURES = (0.5, 1.0, 3.0, 6.0, 10.0)
EPSILONS = (0.001, 0.01, 0.1, 1.0)


def test_fig8a_temperature_sensitivity(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: run_temperature_sensitivity(
            temperatures=TEMPERATURES, repeats=3, num_steps=300
        ),
    )
    lines = ["Figure 8(a) (bench scale): per-step cost vs Temp0"]
    for point in points:
        lines.append(
            f"Temp0={point.value:5.1f}: median={point.median_cost:.4f} "
            f"[p10={point.p10_cost:.4f}, p90={point.p90_cost:.4f}]"
        )
    emit("\n".join(lines))

    by_value = {p.value: p.median_cost for p in points}
    # Weak U-shape: the paper's chosen Temp0 = 3 must not be worse than
    # both extremes of the sweep.
    assert by_value[3.0] <= max(by_value[0.5], by_value[10.0])
    for point in points:
        assert point.p10_cost <= point.median_cost <= point.p90_cost


def test_fig8b_epsilon_sensitivity(benchmark, emit):
    points = run_once(
        benchmark,
        lambda: run_epsilon_sensitivity(
            epsilons=EPSILONS, repeats=3, num_steps=300
        ),
    )
    lines = ["Figure 8(b) (bench scale): per-step cost vs epsilon"]
    for point in points:
        lines.append(
            f"eps={point.value:7.3f}: median={point.median_cost:.4f} "
            f"[p10={point.p10_cost:.4f}, p90={point.p90_cost:.4f}]"
        )
    emit("\n".join(lines))

    # "Sporadic" response: all medians the same order of magnitude —
    # epsilon tunes convergence speed, it cannot sink the system.
    medians = [p.median_cost for p in points]
    assert max(medians) <= 5.0 * min(medians)
    for point in points:
        assert point.median_cost > 0.0
