"""Megh vs offline-trained Q-learning (Section 2.2's omitted comparison).

The paper dismisses Q-learning because it needs "computationally
expensive training periods of a few hundred iterations" before online
use and breaks under distribution shift; it omits the detailed numbers.
This bench supplies them: Q-learning trains offline for several episodes
on one trace (the paid-up-front cost Megh does not have), then both
deploy on a *shifted* trace (different seed).  Asserted shape: Megh's
deployment cost is competitive without any training, while Q-learning's
total cost including training is far higher.
"""

from benchmarks.conftest import run_once
from repro.baselines.qlearning import QLearningScheduler
from repro.core.agent import MeghScheduler
from repro.harness.builders import build_planetlab_simulation

TRAIN_EPISODES = 3


def test_qlearning_vs_megh(benchmark, emit):
    def experiment():
        # Q-learning: offline training on the training trace...
        train_sim = build_planetlab_simulation(
            num_pms=12, num_vms=16, num_steps=300, seed=0
        )
        qlearning = QLearningScheduler(seed=0)
        import time

        started = time.perf_counter()
        qlearning.train(train_sim, episodes=TRAIN_EPISODES)
        training_seconds = time.perf_counter() - started
        # ...then deployment on a shifted workload.
        deploy_sim = build_planetlab_simulation(
            num_pms=12, num_vms=16, num_steps=300, seed=5
        )
        q_result = deploy_sim.run(qlearning)

        # Megh: straight onto the shifted workload, learning as it goes.
        megh_sim = build_planetlab_simulation(
            num_pms=12, num_vms=16, num_steps=300, seed=5
        )
        megh = MeghScheduler.from_simulation(megh_sim, seed=5)
        megh_result = megh_sim.run(megh)
        return q_result, megh_result, training_seconds

    q_result, megh_result, training_seconds = run_once(benchmark, experiment)
    training_steps = TRAIN_EPISODES * 300
    emit(
        "Megh vs offline Q-learning (deployment on a shifted trace):\n"
        f"Q-learning: {training_steps} offline training steps "
        f"({training_seconds:.1f} s) + deployment "
        f"{q_result.total_cost_usd:.2f} USD, "
        f"{q_result.total_migrations} migrations\n"
        f"Megh:       0 training steps + deployment "
        f"{megh_result.total_cost_usd:.2f} USD, "
        f"{megh_result.total_migrations} migrations"
    )

    # Megh needs no training phase at all (the paper's core point)...
    assert training_seconds > 0.0
    # ...and still deploys at a competitive cost on the shifted trace.
    assert megh_result.total_cost_usd <= 2.0 * q_result.total_cost_usd
