"""Service-loop throughput: churn events, retirements, steps per second.

Runs the churn-driven :class:`~repro.service.loop.ServiceSimulation`
with a Megh agent (contracts off — this measures the production path)
and records how fast the event-driven step pipeline drains lifecycle
events and retires learner slots::

    PYTHONPATH=src python benchmarks/bench_service_churn.py
    PYTHONPATH=src python benchmarks/bench_service_churn.py --fast

Results merge into ``BENCH_service.json`` (section ``service_churn``),
which ``repro bench --check`` gates against regressions.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

from core_bench_util import DEFAULT_OUTPUT, merge_section  # noqa: E402

SERVICE_OUTPUT = os.path.join(
    os.path.dirname(DEFAULT_OUTPUT), "BENCH_service.json"
)


def run_service(
    num_pms: int,
    capacity: int,
    num_steps: int,
    arrival_rate: float,
    mean_lifetime_steps: float,
    seed: int,
) -> dict:
    from repro.core.agent import MeghScheduler
    from repro.service.builders import build_churn_service

    service = build_churn_service(
        seed=seed,
        num_pms=num_pms,
        capacity=capacity,
        num_steps=num_steps,
        arrival_rate=arrival_rate,
        mean_lifetime_steps=mean_lifetime_steps,
        initial_vms=max(2, capacity // 2),
    )
    agent = MeghScheduler.from_simulation(
        service, seed=seed, contracts=False
    )
    start = time.perf_counter()
    result = service.run(agent, validate_every_step=False)
    duration = time.perf_counter() - start
    events = service.churn_events_applied
    retirements = agent.lstd.retirements_applied
    return {
        "num_pms": num_pms,
        "capacity": capacity,
        "num_steps": num_steps,
        "arrival_rate": arrival_rate,
        "mean_lifetime_steps": mean_lifetime_steps,
        "seed": seed,
        "duration_s": duration,
        "steps_per_s": num_steps / duration,
        "churn_events_applied": events,
        "events_per_s": events / duration,
        "retirements_applied": retirements,
        "retirements_per_s": retirements / duration,
        "total_migrations": result.total_migrations,
        "q_table_nonzeros": agent.q_table_nonzeros,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="tiny run for the CI smoke gate",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=SERVICE_OUTPUT)
    args = parser.parse_args()
    if args.fast:
        params = dict(
            num_pms=8,
            capacity=12,
            num_steps=args.steps or 120,
            arrival_rate=0.8,
            mean_lifetime_steps=16.0,
        )
    else:
        params = dict(
            num_pms=24,
            capacity=36,
            num_steps=args.steps or 600,
            arrival_rate=1.5,
            mean_lifetime_steps=32.0,
        )
    section = run_service(seed=args.seed, **params)
    section["fast"] = args.fast
    merge_section(args.out, "service_churn", section)
    print(
        f"service_churn: {section['steps_per_s']:.1f} steps/s, "
        f"{section['events_per_s']:.1f} events/s, "
        f"{section['retirements_per_s']:.1f} retirements/s "
        f"({section['num_pms']} PMs / {section['capacity']} slots / "
        f"{section['num_steps']} steps)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
