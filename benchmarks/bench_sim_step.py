"""End-to-end simulator-step throughput at paper scale (``BENCH_sim.json``).

Measures ``Simulation.run`` steps/second on the paper's PlanetLab scale
(N=1052 VMs on M=800 PMs, Section 6) with a no-migration scheduler so
the numbers isolate the *simulator* pipeline — workload application, CPU
sharing, SLA accounting, power/cost evaluation and per-step metrics —
from scheduler cost.  A probe wraps each pipeline stage with
``time.perf_counter`` so the per-phase breakdown is measured, not
estimated, and the same probe runs unmodified against either datacenter
backend:

* ``soa`` — the struct-of-arrays :class:`~repro.cloudsim.datacenter
  .Datacenter` (the "after" numbers);
* ``reference`` — the retained pure-object
  :class:`~repro.cloudsim.reference.ReferenceDatacenter` (the "before"
  pipeline; on a pre-rewrite tree it falls back to the then-current
  ``Datacenter``, which is how the committed ``before`` numbers were
  recorded).

With ``--backend both`` the script additionally asserts the two
backends produce byte-identical ``SimulationResult.to_dict()`` payloads
— same migrations, SLA windows and step costs — before reporting any
speedup.  Usage::

    PYTHONPATH=src python benchmarks/bench_sim_step.py            # both
    PYTHONPATH=src python benchmarks/bench_sim_step.py --fast     # CI smoke

``--record-before`` stores the reference measurement under the
``before`` key (done once, on the pre-rewrite tree); later runs update
``after``/``reference_backend`` without disturbing it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from core_bench_util import (  # noqa: E402
    DEFAULT_OUTPUT,
    PAPER_NUM_PMS,
    PAPER_NUM_VMS,
    merge_section,
)

from repro.baselines.noop import NoMigrationScheduler  # noqa: E402
from repro.cloudsim.allocation import PLACEMENT_POLICIES  # noqa: E402
from repro.cloudsim.datacenter import Datacenter  # noqa: E402
from repro.cloudsim.migration import MigrationEngine  # noqa: E402
from repro.cloudsim.simulation import Simulation  # noqa: E402
from repro.cloudsim.sla import SlaAccountant  # noqa: E402
from repro.config import SimulationConfig  # noqa: E402
from repro.costs.energy import EnergyCostModel  # noqa: E402
from repro.costs.sla_cost import SlaCostModel  # noqa: E402
from repro.harness.builders import make_planetlab_fleet  # noqa: E402
from repro.workloads.planetlab import generate_planetlab_workload  # noqa: E402

DEFAULT_SIM_OUTPUT = os.path.join(
    os.path.dirname(DEFAULT_OUTPUT), "BENCH_sim.json"
)

#: Pipeline stages instrumented by the probe, in execution order.
PHASES = (
    "workload",
    "monitor",
    "observe_state",
    "migration",
    "share_cpu",
    "sla",
    "power",
    "sla_cost",
    "metrics",
)


def _reference_datacenter_cls():
    """The pure-object backend; pre-rewrite trees have only Datacenter."""
    try:
        from repro.cloudsim.reference import ReferenceDatacenter

        return ReferenceDatacenter
    except ImportError:
        return Datacenter


class PhaseProbe:
    """Wraps the per-step pipeline stages of one run with timers.

    Class-level patches (MigrationEngine, SlaAccountant, cost models)
    are restored in :meth:`detach`; instance-level patches die with the
    simulation object.
    """

    def __init__(self, sim: Simulation) -> None:
        self.seconds: Dict[str, float] = {name: 0.0 for name in PHASES}
        self._restores: List[Tuple[object, str, object]] = []
        self._wrap(sim, "_apply_workload", "workload")
        self._wrap(sim.monitor, "observe", "monitor")
        import repro.cloudsim.simulation as sim_module

        self._wrap(sim_module, "observe_state", "observe_state")
        self._wrap(MigrationEngine, "start", "migration")
        self._wrap(MigrationEngine, "advance", "migration")
        self._wrap(sim.datacenter, "share_cpu", "share_cpu")
        self._wrap(SlaAccountant, "observe_step", "sla")
        self._wrap(EnergyCostModel, "step_cost", "power")
        self._wrap(SlaCostModel, "step_cost", "sla_cost")
        self._wrap(sim.datacenter, "num_active_hosts", "metrics")
        self._wrap(sim.datacenter, "sleep_idle_hosts", "metrics")
        self._wrap(sim.datacenter, "overloaded_pm_ids", "metrics")
        self._wrap(sim, "_mean_active_host_utilization", "metrics")

    def _wrap(self, target: object, attr: str, phase: str) -> None:
        original: Callable = getattr(target, attr)
        seconds = self.seconds

        def timed(*args, **kwargs):
            started = time.perf_counter()
            try:
                return original(*args, **kwargs)
            finally:
                seconds[phase] += time.perf_counter() - started

        self._restores.append((target, attr, original))
        setattr(target, attr, timed)

    def detach(self) -> None:
        for target, attr, original in reversed(self._restores):
            setattr(target, attr, original)
        self._restores = []


def build_sim(
    backend: str, num_pms: int, num_vms: int, num_steps: int, seed: int
) -> Simulation:
    """Paper-scale PlanetLab run on the requested datacenter backend."""
    cls = Datacenter if backend == "soa" else _reference_datacenter_cls()
    pms, vms = make_planetlab_fleet(num_pms, num_vms, seed=seed)
    datacenter = cls(pms, vms)
    PLACEMENT_POLICIES["first-fit"](datacenter)
    workload = generate_planetlab_workload(
        num_vms=num_vms, num_steps=num_steps, seed=seed
    )
    config = SimulationConfig(num_steps=num_steps, seed=seed)
    return Simulation(datacenter, workload, config)


def measure_backend(
    backend: str, num_pms: int, num_vms: int, num_steps: int, seed: int
) -> Tuple[Dict, str]:
    """Run one backend; return (payload, canonical result JSON)."""
    sim = build_sim(backend, num_pms, num_vms, num_steps, seed)
    probe = PhaseProbe(sim)
    started = time.perf_counter()
    try:
        result = sim.run(NoMigrationScheduler(), validate_every_step=False)
    finally:
        probe.detach()
    total_seconds = time.perf_counter() - started
    scheduler_seconds = sum(
        step.scheduler_seconds for step in result.metrics.steps
    )
    sim_seconds = max(total_seconds - scheduler_seconds, 1e-12)
    phase_ms = {
        name: 1e3 * probe.seconds[name] / num_steps for name in PHASES
    }
    accounted = sum(probe.seconds.values()) + scheduler_seconds
    phase_ms["other"] = (
        1e3 * max(total_seconds - accounted, 0.0) / num_steps
    )
    payload = {
        "backend": backend,
        "num_pms": num_pms,
        "num_vms": num_vms,
        "num_steps": num_steps,
        "steps_per_s_total": num_steps / total_seconds,
        "steps_per_s_non_scheduler": num_steps / sim_seconds,
        "sim_ms_per_step": 1e3 * sim_seconds / num_steps,
        "scheduler_ms_per_step": 1e3 * scheduler_seconds / num_steps,
        "phase_ms_per_step": phase_ms,
        "total_migrations": result.total_migrations,
        "total_cost_usd": result.total_cost_usd,
        "mean_active_hosts": result.mean_active_hosts,
    }
    # Canonical comparison payload: everything the run produced except
    # the measured wall-clock scheduler time, which is non-deterministic
    # by nature and identical in no two runs.
    result_dict = result.to_dict()
    for step in result_dict.get("steps", []):
        step.pop("scheduler_seconds", None)
    canonical = json.dumps(result_dict, sort_keys=True)
    return payload, canonical


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("soa", "reference", "both"),
        default="both",
        help="datacenter backend(s) to measure (default: both)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="tiny sizes for the CI smoke job",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=DEFAULT_SIM_OUTPUT)
    parser.add_argument(
        "--record-before",
        action="store_true",
        help="store the reference measurement under the 'before' key",
    )
    args = parser.parse_args(argv)

    if args.fast:
        num_pms, num_vms = 40, 52
        num_steps = args.steps if args.steps is not None else 10
    else:
        num_pms, num_vms = PAPER_NUM_PMS, PAPER_NUM_VMS
        num_steps = args.steps if args.steps is not None else 60

    existing: Dict = {}
    if os.path.exists(args.out):
        with open(args.out, "r", encoding="utf-8") as handle:
            try:
                existing = json.load(handle).get("sim_step", {})
            except json.JSONDecodeError:
                existing = {}
    section: Dict = dict(existing) if isinstance(existing, dict) else {}
    section["fast"] = bool(args.fast)

    payloads: Dict[str, Dict] = {}
    canonicals: Dict[str, str] = {}
    for backend in ("reference", "soa"):
        if args.backend not in (backend, "both"):
            continue
        payload, canonical = measure_backend(
            backend, num_pms, num_vms, num_steps, args.seed
        )
        payloads[backend] = payload
        canonicals[backend] = canonical
        print(
            f"{backend:>9}: {payload['steps_per_s_non_scheduler']:8.2f} "
            f"steps/s (non-scheduler), "
            f"{payload['sim_ms_per_step']:7.2f} ms/step"
        )
        for name, value in payload["phase_ms_per_step"].items():
            print(f"           {name:>13}: {value:7.3f} ms/step")

    if "reference" in payloads:
        key = "before" if args.record_before else "reference_backend"
        section[key] = payloads["reference"]
    if "soa" in payloads:
        section["after"] = payloads["soa"]
    if len(canonicals) == 2:
        identical = canonicals["reference"] == canonicals["soa"]
        section["identical_results_soa_vs_reference"] = identical
        if not identical:
            print("ERROR: backends diverged — refusing to record a speedup")
            return 1
    before = section.get("before") or section.get("reference_backend")
    after = section.get("after")
    if before and after:
        section["speedup_non_scheduler"] = (
            after["steps_per_s_non_scheduler"]
            / before["steps_per_s_non_scheduler"]
        )
        print(f"speedup (non-scheduler): {section['speedup_non_scheduler']:.2f}x")
    merge_section(args.out, "sim_step", section)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
