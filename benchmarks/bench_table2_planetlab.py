"""Table 2 — PlanetLab: the five MMT variants vs Megh.

Paper (800 PMs / 1052 VMs / 7 days):

    Algorithms        THR     IQR     MAD     LR      LRR     Megh
    Total cost (USD)  1347    1504    1367    1392    1392    1155
    #VM migrations    325299  444624  331304  324079  324079  2309
    #Active hosts     666     684     682     692     692     203
    Exec time (ms)    2016    3077    2226    1924    2080    1426

Shape reproduced here at bench scale: Megh's total cost is the lowest and
its migration count at least an order of magnitude below every MMT
variant.  (Absolute values differ: smaller fleet, synthetic trace.)
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import PRESETS, run_table_experiment
from repro.harness.tables import render_comparison

MMT_NAMES = ("THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT")


def test_table2_planetlab(benchmark, emit, engine):
    preset = PRESETS["table2"]
    results = run_once(
        benchmark, lambda: run_table_experiment(preset, engine=engine)
    )
    emit(
        render_comparison(
            results,
            title=(
                "Table 2 (bench scale "
                f"{preset.num_pms} PMs / {preset.num_vms} VMs / "
                f"{preset.num_steps} steps; paper: {preset.paper_scale})"
            ),
        )
    )
    megh = results["Megh"]
    for name in MMT_NAMES:
        mmt = results[name]
        assert megh.total_cost_usd < mmt.total_cost_usd, (
            f"Megh must beat {name} on total cost"
        )
        assert megh.total_migrations * 4 < mmt.total_migrations, (
            f"Megh must migrate far less than {name}"
        )
