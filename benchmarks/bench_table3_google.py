"""Table 3 — Google Cluster: the five MMT variants vs Megh.

Paper (500 PMs / 2000 VMs):

    Algorithms        THR     IQR     MAD     LR      LRR     Megh
    Total cost (USD)  706     708     708     710     710     688
    #VM migrations    299352  262185  266706  233172  233172  3104
    #Active hosts     82      72      73      59      59      194
    Exec time (ms)    2887    4030    4000    3889    3923    1945

Shape reproduced at bench scale: Megh's total cost is the lowest, its
migration count is an order of magnitude below MMT's, and — the paper's
counter-intuitive Google finding — Megh keeps *more* hosts active than
the consolidating MMT variants (light short tasks are better spread than
packed).
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import PRESETS, run_table_experiment
from repro.harness.tables import render_comparison

MMT_NAMES = ("THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT")


def test_table3_google(benchmark, emit, engine):
    preset = PRESETS["table3"]
    results = run_once(
        benchmark, lambda: run_table_experiment(preset, engine=engine)
    )
    emit(
        render_comparison(
            results,
            title=(
                "Table 3 (bench scale "
                f"{preset.num_pms} PMs / {preset.num_vms} VMs / "
                f"{preset.num_steps} steps; paper: {preset.paper_scale})"
            ),
        )
    )
    megh = results["Megh"]
    for name in MMT_NAMES:
        mmt = results[name]
        assert megh.total_cost_usd < mmt.total_cost_usd, (
            f"Megh must beat {name} on total cost"
        )
        assert megh.total_migrations * 4 < mmt.total_migrations, (
            f"Megh must migrate far less than {name}"
        )
    # The paper's Google quirk: Megh keeps at least as many hosts active
    # as the most aggressive consolidator.
    min_mmt_hosts = min(results[n].mean_active_hosts for n in MMT_NAMES)
    assert megh.mean_active_hosts >= 0.8 * min_mmt_hosts
