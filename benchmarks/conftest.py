"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper at bench scale,
prints the paper-style rows/series (run pytest with ``-s`` to see them),
and asserts the qualitative shape.  ``benchmark.pedantic(..., rounds=1)``
is used throughout: each experiment is a full multi-scheduler simulation,
so one round is the meaningful unit.
"""

from __future__ import annotations

import os

import pytest

# Benchmarks measure clean timings: runtime contracts and per-step
# validation default off here (export REPRO_CONTRACTS=1 to force on).
os.environ.setdefault("REPRO_CONTRACTS", "0")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so ``-s`` shows the tables."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
