"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper at bench scale,
prints the paper-style rows/series (run pytest with ``-s`` to see them),
and asserts the qualitative shape.  ``benchmark.pedantic(..., rounds=1)``
is used throughout: each experiment is a full multi-scheduler simulation,
so one round is the meaningful unit.
"""

from __future__ import annotations

import os

import pytest

# Benchmarks measure clean timings: runtime contracts and per-step
# validation default off here (export REPRO_CONTRACTS=1 to force on).
os.environ.setdefault("REPRO_CONTRACTS", "0")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def engine():
    """Session-wide :class:`repro.engine.ExecutionEngine` for the benches.

    Defaults to inline serial execution (identical to the legacy path);
    export ``REPRO_BENCH_JOBS=N`` to fan simulations out over N worker
    processes and ``REPRO_BENCH_CACHE_DIR=DIR`` to replay unchanged
    experiments from the content-addressed cache.
    """
    from repro.engine import ExecutionEngine

    instance = ExecutionEngine(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR") or None,
        journal_path=os.environ.get("REPRO_BENCH_JOURNAL") or None,
    )
    yield instance
    instance.close()


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so ``-s`` shows the tables."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
