"""Shared plumbing for the core microbenchmarks (``BENCH_core.json``).

The two core microbenchmark scripts (``bench_core_lstd.py`` and
``bench_core_decide.py``) each measure one layer of the hot path and
merge their section into a single JSON artefact, so a full record is
built up incrementally::

    PYTHONPATH=src python benchmarks/bench_core_lstd.py
    PYTHONPATH=src python benchmarks/bench_core_decide.py

Both accept ``--fast`` (tiny sizes, used by the CI ``bench-smoke`` job)
and ``--out PATH`` (defaults to ``BENCH_core.json`` at the repo root).
No wall-clock timestamps are recorded — only durations via
``time.perf_counter`` — keeping the artefact reproducible and meghlint
(MEGH002) clean.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Dict

import numpy as np

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_core.json",
)

#: The paper's evaluation scale (Section 6): N=1052 VMs on M=800 PMs.
PAPER_NUM_VMS = 1052
PAPER_NUM_PMS = 800


def environment_metadata() -> Dict[str, str]:
    """Toolchain/platform fingerprint stored alongside the numbers."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "contracts": os.environ.get("REPRO_CONTRACTS", "0"),
    }


def merge_section(path: str, section: str, payload: Dict) -> Dict:
    """Merge one benchmark's results into the shared JSON artefact."""
    data: Dict = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError:
                data = {}
    if not isinstance(data, dict):
        data = {}
    data["meta"] = environment_metadata()
    data[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return data
