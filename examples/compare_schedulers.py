#!/usr/bin/env python3
"""Compare every scheduler on one identical workload replay.

Runs the paper's full line-up — the five MMT variants, Megh, MadVM — plus
the no-migration and random calibration baselines, all against the same
initial placement and trace, and prints the Table-2-style comparison.

Run:
    python examples/compare_schedulers.py [--steps N] [--seed S]
"""

import argparse

from repro import (
    NoMigrationScheduler,
    RandomScheduler,
    build_planetlab_simulation,
)
from repro.harness.runner import (
    madvm_factory,
    megh_factory,
    mmt_factories,
    run_comparison,
)
from repro.harness.tables import render_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pms", type=int, default=16)
    parser.add_argument("--vms", type=int, default=21)
    args = parser.parse_args()

    simulation = build_planetlab_simulation(
        num_pms=args.pms,
        num_vms=args.vms,
        num_steps=args.steps,
        seed=args.seed,
    )

    factories = dict(mmt_factories())
    factories["Megh"] = megh_factory(seed=args.seed)
    factories["MadVM"] = madvm_factory(seed=args.seed)
    factories["NoMigration"] = lambda sim: NoMigrationScheduler()
    factories["Random"] = lambda sim: RandomScheduler(
        migrations_per_step=1, seed=args.seed
    )

    results = run_comparison(simulation, factories)
    print(
        render_comparison(
            results,
            title=(
                f"All schedulers on PlanetLab-style trace "
                f"({args.pms} PMs / {args.vms} VMs / {args.steps} steps, "
                f"seed {args.seed})"
            ),
        )
    )

    def converged_rate(result):
        costs = result.metrics.per_step_cost_series()
        quarter = max(1, len(costs) // 4)
        return sum(costs[-quarter:]) / quarter

    print("\nconverged per-step cost (last quarter, USD):")
    for name, result in sorted(results.items(), key=lambda kv: converged_rate(kv[1])):
        print(f"  {name:12s} {converged_rate(result):.4f}")
    best = min(results.items(), key=lambda kv: converged_rate(kv[1]))
    print(f"best long-run operator: {best[0]}")


if __name__ == "__main__":
    main()
