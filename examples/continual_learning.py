#!/usr/bin/env python3
"""Continual learning: checkpoint a Megh agent and resume it later.

Day 1: a fresh agent runs a day of PlanetLab-style load; the agent is
checkpointed and the data center's end-of-day placement captured (the
fleet does not reset overnight).  Day 2: from that same placement, a
warm-started agent (restored Q-table, decayed temperature) and a fresh
agent each run the next day — the warm agent exploits what it learned
while the fresh one pays the exploration transient again.

Run:
    python examples/continual_learning.py
"""

import os
import tempfile
from typing import Dict

from repro.cloudsim.allocation import place_first_fit
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.core.checkpoint import load_agent, save_agent
from repro.harness.builders import make_planetlab_fleet
from repro.workloads.planetlab import generate_planetlab_workload

NUM_PMS = 16
NUM_VMS = 21
DAY = 288  # steps


def day_simulation(
    workload, start: int, placement: Dict[int, int] | None = None
) -> Simulation:
    """A data center replaying one day's slice of the trace.

    ``placement`` seeds the initial VM->PM map (defaults to first-fit).
    """
    pms, vms = make_planetlab_fleet(NUM_PMS, NUM_VMS, seed=0)
    datacenter = Datacenter(pms, vms)
    if placement is None:
        place_first_fit(datacenter)
    else:
        for vm_id, pm_id in placement.items():
            datacenter.place(vm_id, pm_id)
    return Simulation(
        datacenter,
        workload.slice_steps(start, start + DAY),
        SimulationConfig(num_steps=DAY, seed=0),
    )


def main() -> None:
    workload = generate_planetlab_workload(
        num_vms=NUM_VMS, num_steps=2 * DAY, seed=7
    )

    # Day 1: train, checkpoint, and capture the end-of-day placement.
    sim_day1 = day_simulation(workload, 0)
    agent = MeghScheduler.from_simulation(sim_day1, seed=7)
    day1 = sim_day1.run(agent)
    overnight_placement = sim_day1.datacenter.placement()
    checkpoint = os.path.join(tempfile.gettempdir(), "megh-agent.npz")
    save_agent(agent, checkpoint)
    print(f"day 1 (training) : {day1.total_cost_usd:8.2f} USD, "
          f"{day1.total_migrations} migrations")
    print(f"checkpoint saved : {checkpoint} "
          f"({agent.q_table_nonzeros} Q-table non-zeros, "
          f"temperature {agent.temperature:.3f})")

    # Day 2: warm vs fresh, both resuming the fleet exactly as day 1
    # left it.
    warm = load_agent(checkpoint, seed=7)
    warm_result = day_simulation(workload, DAY, overnight_placement).run(warm)

    sim_fresh = day_simulation(workload, DAY, overnight_placement)
    fresh = MeghScheduler.from_simulation(sim_fresh, seed=7)
    fresh_result = sim_fresh.run(fresh)

    print(f"\nday 2, warm agent : {warm_result.total_cost_usd:8.2f} USD, "
          f"{warm_result.total_migrations} migrations")
    print(f"day 2, fresh agent: {fresh_result.total_cost_usd:8.2f} USD, "
          f"{fresh_result.total_migrations} migrations")
    saved = fresh_result.total_cost_usd - warm_result.total_cost_usd
    print(f"\nwarm start: {saved:+.2f} USD and "
          f"{fresh_result.total_migrations - warm_result.total_migrations:+d}"
          " migrations saved on day 2 relative to relearning from scratch (varies by trace).")

    os.unlink(checkpoint)


if __name__ == "__main__":
    main()
