#!/usr/bin/env python3
"""Bring-your-own workload: plug a custom trace into the public API.

Shows the three extension points a downstream user needs most:

1. a hand-built utilization matrix wrapped in :class:`ArrayWorkload`
   (here: a diurnal pattern with a correlated spike event);
2. a hand-built fleet (heterogeneous PMs / VMs via the cloudsim models);
3. a custom scheduler implementing the ``Scheduler`` protocol (here: a
   toy "evict the hungriest VM from any overloaded host" policy),
   compared against Megh on the same replay.

Run:
    python examples/custom_workload.py
"""

from typing import List

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.migration import Migration
from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.power import HP_PROLIANT_G4, HP_PROLIANT_G5
from repro.cloudsim.simulation import Simulation
from repro.cloudsim.vm import VirtualMachine
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.harness.runner import run_comparison
from repro.harness.tables import render_comparison
from repro.mdp.interfaces import Observation
from repro.workloads.base import ArrayWorkload

NUM_PMS = 8
NUM_VMS = 12
NUM_STEPS = 576


def build_workload(seed: int = 0) -> ArrayWorkload:
    """Diurnal base load plus one synchronized spike hour."""
    rng = np.random.default_rng(seed)
    steps = np.arange(NUM_STEPS)
    matrix = np.zeros((NUM_VMS, NUM_STEPS))
    for vm_id in range(NUM_VMS):
        phase = 2 * np.pi * vm_id / NUM_VMS
        diurnal = 0.15 + 0.10 * np.sin(2 * np.pi * steps / 288 + phase)
        noise = rng.normal(0.0, 0.02, NUM_STEPS)
        matrix[vm_id] = diurnal + noise
    # A flash-crowd event each day: a third of the fleet spikes for an
    # hour (day 1 hits VMs 0-2, day 2 hits VMs 4-6).
    matrix[0:3, 140:152] += 0.60
    matrix[4:7, 428:440] += 0.60
    return ArrayWorkload(np.clip(matrix, 0.0, 1.0), name="diurnal+flash")


def build_datacenter() -> Datacenter:
    pms = [
        PhysicalMachine(
            pm_id=i,
            mips=2 * 1860.0 if i % 2 == 0 else 2 * 2660.0,
            ram_mb=4096.0,
            bandwidth_mbps=1000.0,
            power_model=HP_PROLIANT_G4 if i % 2 == 0 else HP_PROLIANT_G5,
        )
        for i in range(NUM_PMS)
    ]
    vms = [
        VirtualMachine(
            vm_id=j,
            mips=1600.0 + 100.0 * (j % 5),
            ram_mb=768.0,
            bandwidth_mbps=100.0,
        )
        for j in range(NUM_VMS)
    ]
    datacenter = Datacenter(pms, vms)
    for j in range(NUM_VMS):
        datacenter.place(j, j % NUM_PMS)
    return datacenter


class EvictHungriestScheduler:
    """Toy policy: move the hungriest VM off each overloaded host."""

    name = "EvictHungriest"

    def __init__(self, beta: float = 0.70) -> None:
        self.beta = beta

    def decide(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        migrations: List[Migration] = []
        for pm_id in datacenter.overloaded_pm_ids(self.beta):
            vm_ids = datacenter.vms_on(pm_id)
            if not vm_ids:
                continue
            hungriest = max(
                vm_ids, key=lambda v: datacenter.vm(v).demanded_mips
            )
            # Least-loaded feasible destination.
            options = [
                pm.pm_id
                for pm in datacenter.pms
                if pm.pm_id != pm_id
                and datacenter.fits(hungriest, pm.pm_id)
            ]
            if not options:
                continue
            dest = min(options, key=datacenter.demanded_utilization)
            migrations.append(Migration(vm_id=hungriest, dest_pm_id=dest))
        return migrations


def main() -> None:
    workload = build_workload()
    config = SimulationConfig(num_steps=NUM_STEPS, seed=0)

    simulation = Simulation(build_datacenter(), workload, config)
    results = run_comparison(
        simulation,
        {
            "EvictHungriest": lambda sim: EvictHungriestScheduler(),
            "Megh": lambda sim: MeghScheduler.from_simulation(sim, seed=0),
        },
    )
    print(
        render_comparison(
            results,
            title="Custom diurnal+flash workload on a hand-built fleet",
        )
    )
    megh = results["Megh"].metrics.per_step_cost_series()
    toy = results["EvictHungriest"].metrics.per_step_cost_series()
    tail = 100  # the calm stretch after the day-2 flash has been billed
    print(
        "\nconverged per-step cost (last 100 steps): "
        f"Megh {sum(megh[-tail:]) / tail:.4f} USD vs "
        f"EvictHungriest {sum(toy[-tail:]) / tail:.4f} USD"
    )
    print(
        "The spread-out static placement rides the flash crowds out "
        "without overloading; Megh instead packs the fleet onto ~3 hosts "
        "and relieves the flashes as they hit, winning on energy."
    )


if __name__ == "__main__":
    main()
