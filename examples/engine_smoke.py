#!/usr/bin/env python3
"""Engine smoke test: parallel == serial, and a warm cache runs nothing.

Runs a seeds × schedulers matrix twice through the execution engine —
once inline (``jobs=1``) and once on worker processes — and asserts the
aggregates are identical for every simulated metric.  Then re-runs the
parallel matrix against the now-warm cache and asserts zero simulations
execute.  CI runs this as the ``engine-smoke`` job; it exits non-zero on
any mismatch.

Run:
    python examples/engine_smoke.py --seeds 4 --jobs 2
    python examples/engine_smoke.py --cache-dir /tmp/megh-cache
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.engine import ExecutionEngine, events
from repro.engine.registry import BuilderSpec, SchedulerSpec
from repro.harness.multiseed import render_aggregates, run_multi_seed


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=4, help="seed count")
    parser.add_argument("--jobs", type=int, default=2, help="worker count")
    parser.add_argument("--steps", type=int, default=60, help="steps per run")
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: a fresh temp dir)",
    )
    return parser.parse_args()


def check_identical(serial, parallel) -> None:
    assert list(serial) == list(parallel), "algorithm sets differ"
    for name in serial:
        a, b = serial[name], parallel[name]
        assert a.total_cost_usd.values == b.total_cost_usd.values, (
            f"{name}: total cost diverged between jobs=1 and jobs=N"
        )
        assert a.total_migrations.values == b.total_migrations.values, (
            f"{name}: migration counts diverged"
        )
        assert a.mean_active_hosts.values == b.mean_active_hosts.values, (
            f"{name}: active-host counts diverged"
        )
        assert a.wins == b.wins, f"{name}: win counts diverged"


def main() -> int:
    args = parse_args()
    seeds = list(range(args.seeds))
    builder = BuilderSpec.create(
        "planetlab", num_pms=10, num_vms=13, num_steps=args.steps
    )
    factories = {
        "Megh": SchedulerSpec.create("megh", seed=0),
        "THR-MMT": SchedulerSpec.create(
            "mmt", detector="THR", utilization_threshold=0.7
        ),
    }
    jobs = len(seeds) * len(factories)

    started = time.perf_counter()
    serial = run_multi_seed(builder, factories, seeds)
    serial_seconds = time.perf_counter() - started
    print(f"serial: {jobs} jobs in {serial_seconds:.1f}s")

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="megh-engine-")
    engine = ExecutionEngine(jobs=args.jobs, cache_dir=cache_dir)
    started = time.perf_counter()
    parallel = run_multi_seed(builder, factories, seeds, engine=engine)
    parallel_seconds = time.perf_counter() - started
    print(f"jobs={args.jobs}: {engine.summary()} in {parallel_seconds:.1f}s")

    check_identical(serial, parallel)
    print("aggregates identical across jobs=1 and parallel execution")
    print()
    print(render_aggregates(parallel, title="engine smoke matrix"))

    warm = ExecutionEngine(jobs=args.jobs, cache_dir=cache_dir)
    rerun = run_multi_seed(builder, factories, seeds, engine=warm)
    executed = warm.journal.count(events.STARTED)
    hits = warm.journal.count(events.CACHE_HIT)
    print(f"\nwarm cache: {warm.summary()}")
    assert executed == 0, f"warm cache still executed {executed} simulations"
    assert hits == jobs, f"expected {jobs} cache hits, saw {hits}"
    check_identical(parallel, rerun)
    print("warm-cache re-run executed zero simulations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
