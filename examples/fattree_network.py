#!/usr/bin/env python3
"""Network-aware migration on a fat-tree (the paper's Section-7 extension).

Attaches a k-ary fat-tree topology to the simulator so cross-pod
migrations run over oversubscribed links (slower transfers, more
degradation downtime) while rack-local ones stay fast.  Megh is unchanged
algorithmically — exactly the paper's claim that network awareness can be
"seamlessly accommodated" — it simply learns from the different costs.

Run:
    python examples/fattree_network.py
"""

from repro.cloudsim.allocation import place_round_robin
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.network import FatTreeTopology, FlatNetwork
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import make_planetlab_fleet
from repro.workloads.planetlab import generate_planetlab_workload

NUM_PMS = 16  # exactly a k=4 fat-tree's capacity
NUM_VMS = 21
NUM_STEPS = 576


def run_with(topology, label: str) -> None:
    pms, vms = make_planetlab_fleet(NUM_PMS, NUM_VMS, seed=0)
    datacenter = Datacenter(pms, vms)
    place_round_robin(datacenter)
    workload = generate_planetlab_workload(
        num_vms=NUM_VMS, num_steps=NUM_STEPS, seed=4
    )
    simulation = Simulation(
        datacenter,
        workload,
        SimulationConfig(num_steps=NUM_STEPS, seed=4),
        topology=topology,
    )
    agent = MeghScheduler.from_simulation(simulation, seed=4)
    result = simulation.run(agent)
    print(f"{label:34s} total={result.total_cost_usd:8.2f} USD  "
          f"migrations={result.total_migrations:4d}  "
          f"SLA={result.metrics.total_sla_cost_usd:7.2f} USD")


def main() -> None:
    print(f"{NUM_PMS} PMs / {NUM_VMS} VMs / {NUM_STEPS} steps "
          "(k=4 fat-tree: 2 hosts per edge switch, 4 per pod)\n")
    run_with(FlatNetwork(link_bandwidth_mbps=1000.0), "flat non-blocking fabric")
    run_with(
        FatTreeTopology(k=4),
        "fat-tree, non-blocking (ideal)",
    )
    run_with(
        FatTreeTopology(
            k=4, edge_oversubscription=4.0, aggregation_oversubscription=4.0
        ),
        "fat-tree, 4:1 oversubscribed",
    )
    print(
        "\nOversubscription slows cross-pod transfers 16x, so every "
        "migration Megh issues across pods costs more downtime — the "
        "learned policy pays for the topology without any algorithmic "
        "change."
    )


if __name__ == "__main__":
    main()
