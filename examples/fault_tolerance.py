#!/usr/bin/env python3
"""Failure injection: schedulers under host crashes.

Injects two scripted host failures (with later repairs) into a
PlanetLab-style run and compares how Megh and THR-MMT absorb them: the
displaced VMs are emergency-replaced, the fleet shrinks, the schedulers
adapt, and the repaired hosts rejoin.

Run:
    python examples/fault_tolerance.py
"""

from repro.cloudsim.allocation import place_first_fit
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.faults import (
    FaultEvent,
    FaultInjector,
    FaultTolerantScheduler,
)
from repro.cloudsim.simulation import Simulation
from repro.baselines.mmt.scheduler import MMTScheduler
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import make_planetlab_fleet
from repro.workloads.planetlab import generate_planetlab_workload

NUM_PMS = 12
NUM_VMS = 16
NUM_STEPS = 400

FAULTS = [
    FaultEvent(pm_id=0, fail_step=100, repair_step=180),
    FaultEvent(pm_id=5, fail_step=220, repair_step=320),
]


def build_simulation() -> Simulation:
    pms, vms = make_planetlab_fleet(NUM_PMS, NUM_VMS, seed=3)
    datacenter = Datacenter(pms, vms)
    place_first_fit(datacenter)
    workload = generate_planetlab_workload(
        num_vms=NUM_VMS, num_steps=NUM_STEPS, seed=3
    )
    return Simulation(
        datacenter, workload, SimulationConfig(num_steps=NUM_STEPS, seed=3)
    )


def run(scheduler_factory, label: str) -> None:
    simulation = build_simulation()
    injector = FaultInjector(FAULTS)
    wrapped = FaultTolerantScheduler(scheduler_factory(simulation), injector)
    result = simulation.run(wrapped)
    displaced = sum(len(r.displaced_vms) for r in wrapped.reports)
    stranded = sum(len(r.stranded_vms) for r in wrapped.reports)
    print(
        f"{label:10s}: total={result.total_cost_usd:8.2f} USD  "
        f"migrations={result.total_migrations:4d}  "
        f"displaced={displaced:2d}  stranded={stranded:2d}"
    )
    # Sanity: the fleet is whole again after both repairs.
    assert sorted(simulation.datacenter.placement()) == list(range(NUM_VMS))


def main() -> None:
    print(
        f"{NUM_PMS} PMs / {NUM_VMS} VMs / {NUM_STEPS} steps; host 0 fails "
        "at step 100 (repaired 180), host 5 at 220 (repaired 320)\n"
    )
    run(lambda sim: MeghScheduler.from_simulation(sim, seed=3), "Megh")
    run(lambda sim: MMTScheduler("THR"), "THR-MMT")
    print(
        "\nBoth schedulers ride out the crashes: displaced VMs are "
        "emergency-replaced, decisions targeting the dead hosts are "
        "filtered, and the fleet is whole after the repairs."
    )


if __name__ == "__main__":
    main()
