#!/usr/bin/env python3
"""Google-Cluster-style workload: heavy-tailed tasks on small VMs.

Generates the task-based synthetic trace (log-uniform durations spanning
10^1..10^6 seconds, idle gaps between tasks), characterises it the way
Figure 1(b) does, then runs Megh and THR-MMT on it and reports the
paper's counter-intuitive Google finding: for light short-lived tasks,
keeping VMs spread over more hosts beats aggressive consolidation.

Run:
    python examples/google_cluster_tasks.py
"""

from repro import MeghScheduler, build_google_simulation
from repro.baselines.mmt.scheduler import MMTScheduler
from repro.harness.runner import run_comparison
from repro.harness.tables import render_comparison
from repro.workloads.google import generate_google_workload
from repro.workloads.statistics import (
    duration_histogram,
    nearest_standard_distribution,
)


def characterise_trace() -> None:
    _, tasks = generate_google_workload(
        num_vms=150, num_steps=864, seed=7, return_tasks=True
    )
    durations = [t.duration_steps * 300.0 for t in tasks]
    print(f"{len(tasks)} tasks on 150 VMs over 3 days")
    print("task-duration histogram (log bins):")
    bins = duration_histogram(durations, bins_per_decade=1)
    peak = max(count for _, _, count in bins)
    for low, high, count in bins:
        bar = "#" * max(1, int(30 * count / peak)) if count else ""
        print(f"  [{low:9.0f}, {high:9.0f}) s  {count:5d} {bar}")
    print(
        "nearest standard distribution: "
        f"{nearest_standard_distribution(durations)}"
    )
    print()


def run_schedulers() -> None:
    simulation = build_google_simulation(
        num_pms=15, num_vms=50, num_steps=576, seed=7
    )
    results = run_comparison(
        simulation,
        {
            "THR-MMT": lambda sim: MMTScheduler("THR"),
            "Megh": lambda sim: MeghScheduler.from_simulation(sim, seed=7),
        },
    )
    print(
        render_comparison(
            results, title="Google-style tasks: THR-MMT vs Megh"
        )
    )
    megh_hosts = results["Megh"].mean_active_hosts
    thr_hosts = results["THR-MMT"].mean_active_hosts
    print(
        f"\nactive hosts — Megh {megh_hosts:.1f} vs THR-MMT {thr_hosts:.1f}: "
        "light, short-lived tasks reward spreading over packing "
        "(Section 6.3 of the paper)."
    )


def main() -> None:
    characterise_trace()
    run_schedulers()


if __name__ == "__main__":
    main()
