#!/usr/bin/env python3
"""Inspect Megh's learning: decision trace + terminal charts.

Runs a traced Megh agent, then renders what the paper's figures show —
per-step cost, migrations, temperature decay, Q-table growth — as
terminal sparklines and a line chart, plus a per-VM migration census.

Run:
    python examples/inspect_learning.py
"""

from repro.core.agent import MeghScheduler
from repro.core.trace import DecisionTrace
from repro.harness.ascii_plot import labelled_sparklines, line_chart
from repro.harness.builders import build_planetlab_simulation

NUM_PMS = 16
NUM_VMS = 21
NUM_STEPS = 600


def main() -> None:
    simulation = build_planetlab_simulation(
        num_pms=NUM_PMS, num_vms=NUM_VMS, num_steps=NUM_STEPS, seed=1
    )
    trace = DecisionTrace()
    agent = MeghScheduler(
        num_vms=NUM_VMS,
        num_pms=NUM_PMS,
        beta=simulation.config.datacenter.overload_threshold,
        seed=1,
        trace=trace,
    )
    result = simulation.run(agent)

    costs = result.metrics.per_step_cost_series()
    print(result.summary())
    print()
    print(
        line_chart(
            {"cost/step (USD)": costs},
            width=70,
            height=10,
            title="per-step operation cost (exploration transient, then calm)",
        )
    )
    print()
    print(
        labelled_sparklines(
            {
                "cost/step": costs,
                "migrations": [float(m) for m in trace.migrations_per_step],
                "temperature": trace.temperatures,
                "Q-table nnz": [
                    float(r.q_table_nonzeros) for r in trace.records
                ],
                "active hosts": [
                    float(h) for h in result.metrics.active_host_series()
                ],
            },
            width=60,
        )
    )
    print()
    end = trace.exploration_phase_end(quiet_steps=30)
    print(f"exploration phase settles around step {end} "
          f"(temperature there: {trace.temperatures[min(end, NUM_STEPS - 1)]:.3f})")
    census = sorted(
        trace.vm_move_counts().items(), key=lambda kv: -kv[1]
    )[:5]
    print("most-migrated VMs:", ", ".join(f"vm{v} x{c}" for v, c in census))


if __name__ == "__main__":
    main()
