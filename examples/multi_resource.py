#!/usr/bin/env python3
"""Multi-resource scheduling: CPU *and* network bandwidth.

Section 3.1 of the paper claims additional resources "can be added as
additional modules ... without modifying Megh algorithmically".  This
example demonstrates it: the workload carries a network-utilization
stream correlated with CPU, the simulator treats link saturation as
overload, and the same Megh agent — fed only the richer cost signal —
relieves bandwidth hotspots a CPU-only view cannot even see.

Run:
    python examples/multi_resource.py
"""

from repro.cloudsim.allocation import place_first_fit
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.config import DatacenterConfig, SimulationConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import make_planetlab_fleet
from repro.workloads.bandwidth import derive_bandwidth_workload
from repro.workloads.planetlab import generate_planetlab_workload

NUM_PMS = 12
NUM_VMS = 16
NUM_STEPS = 400


def build_simulation(bandwidth_aware: bool) -> Simulation:
    pms, vms = make_planetlab_fleet(NUM_PMS, NUM_VMS, seed=2)
    # Give VMs big traffic allocations so co-located chatty VMs can
    # saturate the 1-Gbps host links.
    for vm in vms:
        vm.bandwidth_mbps = 400.0
    datacenter = Datacenter(pms, vms)
    place_first_fit(datacenter)
    cpu = generate_planetlab_workload(
        num_vms=NUM_VMS, num_steps=NUM_STEPS, seed=2
    )
    workload = derive_bandwidth_workload(
        cpu, correlation=0.9, base_level=0.25, noise_std=0.05, seed=2
    )
    config = SimulationConfig(
        num_steps=NUM_STEPS,
        seed=2,
        datacenter=DatacenterConfig(bandwidth_aware=bandwidth_aware),
    )
    return Simulation(datacenter, workload, config)


def run(bandwidth_aware: bool) -> None:
    label = "bandwidth-aware" if bandwidth_aware else "CPU-only view"
    simulation = build_simulation(bandwidth_aware)
    agent = MeghScheduler.from_simulation(simulation, seed=2)
    result = simulation.run(agent)
    link_overloads = len(
        simulation.datacenter.overloaded_pm_ids(0.7, bandwidth_threshold=0.7)
    )
    print(
        f"{label:16s}: total={result.total_cost_usd:8.2f} USD "
        f"(SLA {result.metrics.total_sla_cost_usd:7.2f})  "
        f"migrations={result.total_migrations:4d}  "
        f"saturated links at end={link_overloads}"
    )


def main() -> None:
    print(
        f"{NUM_PMS} PMs / {NUM_VMS} VMs / {NUM_STEPS} steps; VM traffic "
        "allocations 400 Mbps on 1-Gbps host links\n"
    )
    run(bandwidth_aware=False)
    run(bandwidth_aware=True)
    print(
        "\nWith bandwidth awareness on, saturated links count as overload: "
        "Megh sees their cost, spreads the chatty VMs, and the SLA bill "
        "reflects network QoS — no algorithmic change to the agent."
    )


if __name__ == "__main__":
    main()
