#!/usr/bin/env python3
"""Quickstart: run Megh on a synthetic PlanetLab-style data center.

Builds a 20-PM / 26-VM data center replaying a day of PlanetLab-style
CPU traces, runs the Megh scheduler on it, and prints the Table-2-style
summary plus a short convergence readout.

Run:
    python examples/quickstart.py
"""

from repro import MeghScheduler, build_planetlab_simulation


def main() -> None:
    # One day of 5-minute intervals (288 steps).
    simulation = build_planetlab_simulation(
        num_pms=20, num_vms=26, num_steps=288, seed=42
    )

    # Megh sizes its action space (d = N x M) from the simulation and
    # inherits the simulator's overload threshold beta.
    scheduler = MeghScheduler.from_simulation(simulation, seed=42)

    result = simulation.run(scheduler)

    print(result.summary())
    print()
    print(f"Q-table non-zeros : {scheduler.q_table_nonzeros}")
    print(f"final temperature : {scheduler.temperature:.4f}")
    print(f"convergence step  : {result.metrics.convergence_step()}")

    costs = result.metrics.per_step_cost_series()
    quarter = len(costs) // 4
    early = sum(costs[:quarter]) / quarter
    late = sum(costs[-quarter:]) / quarter
    print(f"per-step cost     : {early:.4f} USD (first quarter) -> "
          f"{late:.4f} USD (last quarter)")


if __name__ == "__main__":
    main()
