#!/usr/bin/env python3
"""Scalability study: per-step decision time vs fleet size (Figure 6).

Sweeps the fleet over an 8x range, measuring the mean per-step decision
time of THR-MMT and Megh, and reports the growth factors and crossover —
the paper's argument for Megh as the real-time scheduler at scale.

Run:
    python examples/scalability_study.py [--max-pms N]
"""

import argparse

from repro.harness.experiments import run_scalability_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-pms",
        type=int,
        default=80,
        help="largest PM count in the sweep (VMs = 1.3x PMs)",
    )
    parser.add_argument("--steps", type=int, default=100)
    args = parser.parse_args()

    sizes = []
    pms = max(10, args.max_pms // 8)
    while pms <= args.max_pms:
        sizes.append((pms, int(1.3 * pms)))
        pms *= 2

    print(f"sweeping fleet sizes: {sizes} ({args.steps} steps each)\n")
    points = run_scalability_grid(sizes=tuple(sizes), num_steps=args.steps)

    by_algorithm = {}
    for point in points:
        by_algorithm.setdefault(point.algorithm, []).append(point)

    print(f"{'m':>5} {'n':>5} {'THR-MMT (ms)':>14} {'Megh (ms)':>12}")
    thr = {p.num_pms: p for p in by_algorithm["THR-MMT"]}
    megh = {p.num_pms: p for p in by_algorithm["Megh"]}
    for num_pms, num_vms in sizes:
        print(
            f"{num_pms:>5} {num_vms:>5} "
            f"{thr[num_pms].mean_step_ms:>14.3f} "
            f"{megh[num_pms].mean_step_ms:>12.3f}"
        )

    first, last = sizes[0][0], sizes[-1][0]
    thr_factor = thr[last].mean_step_ms / max(thr[first].mean_step_ms, 1e-9)
    megh_factor = megh[last].mean_step_ms / max(megh[first].mean_step_ms, 1e-9)
    print(
        f"\ngrowth over the {last // first}x size range: "
        f"THR-MMT x{thr_factor:.1f}, Megh x{megh_factor:.1f}"
    )
    if megh[last].mean_step_ms < thr[last].mean_step_ms:
        print("at the largest fleet Megh decides faster — the Figure-6 story.")


if __name__ == "__main__":
    main()
