"""Reproduction of "Learn-as-you-go with Megh" (ICDCS 2017).

This package provides a complete, self-contained reproduction of the Megh
paper: a discrete-time cloud data-center simulator (``repro.cloudsim``),
energy/SLA cost models (``repro.costs``), synthetic PlanetLab- and
Google-Cluster-style workload generators (``repro.workloads``), the Megh
online reinforcement-learning scheduler (``repro.core``), the MMT heuristic
family, MadVM and Q-learning baselines (``repro.baselines``), and an
experiment harness that regenerates every table and figure of the paper's
evaluation section (``repro.harness``).

Quickstart::

    from repro import build_planetlab_simulation, MeghScheduler

    sim = build_planetlab_simulation(num_pms=20, num_vms=30, num_steps=288)
    scheduler = MeghScheduler.from_simulation(sim)
    result = sim.run(scheduler)
    print(result.summary())
"""

from repro.config import (
    CostConfig,
    DatacenterConfig,
    MeghConfig,
    SimulationConfig,
)
from repro.cloudsim.simulation import Simulation, SimulationResult
from repro.core.agent import MeghScheduler
from repro.baselines.mmt.scheduler import MMTScheduler
from repro.baselines.madvm import MadVMScheduler
from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.random_policy import RandomScheduler
from repro.harness.builders import (
    build_google_simulation,
    build_planetlab_simulation,
    build_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "CostConfig",
    "DatacenterConfig",
    "MeghConfig",
    "SimulationConfig",
    "Simulation",
    "SimulationResult",
    "MeghScheduler",
    "MMTScheduler",
    "MadVMScheduler",
    "NoMigrationScheduler",
    "RandomScheduler",
    "build_simulation",
    "build_planetlab_simulation",
    "build_google_simulation",
    "__version__",
]
