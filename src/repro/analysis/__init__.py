"""meghlint: project-specific static analysis for the Megh reproduction.

Megh's headline result — a convergent learn-as-you-go scheduler — is only
reproducible if every run is bit-deterministic under a seed and the
Sherman–Morrison incremental inverse stays numerically honest.  This
package provides an AST-based lint framework that enforces exactly those
project invariants:

* a rule registry (:mod:`repro.analysis.rules`) with the MEGH rule set
  (unseeded randomness, wall-clock reads, float equality, mutable
  defaults, missing seed plumbing, swallowed exceptions);
* an engine (:mod:`repro.analysis.engine`) that walks files, applies the
  rules, and honours ``# meghlint: ignore[RULE]`` suppressions;
* text and JSON reporters (:mod:`repro.analysis.reporting`);
* a CLI (:mod:`repro.analysis.cli`), reachable as ``repro lint`` /
  ``megh-repro lint`` or ``python -m repro.analysis``.

The runtime counterpart — contracts that audit the live LSPI state —
lives in :mod:`repro.core.contracts`.
"""

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintConfig, lint_file, lint_paths, lint_source
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, Rule, all_rule_ids

__all__ = [
    "Diagnostic",
    "Severity",
    "LintConfig",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "RULE_REGISTRY",
    "Rule",
    "all_rule_ids",
]
