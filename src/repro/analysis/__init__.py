"""meghlint: project-specific static analysis for the Megh reproduction.

Megh's headline result — a convergent learn-as-you-go scheduler — is only
reproducible if every run is bit-deterministic under a seed and the
Sherman–Morrison incremental inverse stays numerically honest.  This
package provides an AST-based lint framework that enforces exactly those
project invariants:

* a rule registry (:mod:`repro.analysis.rules`) with the MEGH rule set
  (unseeded randomness, wall-clock reads, float equality, mutable
  defaults, missing seed plumbing, swallowed exceptions);
* a whole-program flow pass (:mod:`repro.analysis.flow`, "meghflow")
  checking RNG provenance, dirty-flag invalidation, and dtype/axis
  discipline across module boundaries (MEGH010–MEGH012);
* an engine (:mod:`repro.analysis.engine`) that walks files, parses each
  module once for every pass, applies the rules, honours
  ``# meghlint: ignore[RULE] -- reason`` suppressions, and reports
  directives that never fire;
* an accepted-findings baseline (:mod:`repro.analysis.baseline`) gating
  CI on *no new findings* with a written reason per entry;
* text and JSON reporters (:mod:`repro.analysis.reporting`);
* a CLI (:mod:`repro.analysis.cli`), reachable as ``repro lint`` /
  ``megh-repro lint`` or ``python -m repro.analysis``.

The runtime counterpart — contracts that audit the live LSPI state —
lives in :mod:`repro.core.contracts`.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    update_baseline,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import (
    UNUSED_SUPPRESSION_RULE,
    LintConfig,
    LintResult,
    ParsedModule,
    lint_file,
    lint_paths,
    lint_source,
    parse_module,
)
from repro.analysis.flow import FLOW_RULES, run_flow
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, Rule, all_rule_ids

__all__ = [
    "Diagnostic",
    "Severity",
    "LintConfig",
    "LintResult",
    "ParsedModule",
    "parse_module",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "RULE_REGISTRY",
    "FLOW_RULES",
    "run_flow",
    "Rule",
    "all_rule_ids",
    "UNUSED_SUPPRESSION_RULE",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "apply_baseline",
    "load_baseline",
    "update_baseline",
]
