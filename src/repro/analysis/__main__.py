"""``python -m repro.analysis`` — run meghlint directly."""

from repro.analysis.cli import run

if __name__ == "__main__":
    raise SystemExit(run())
