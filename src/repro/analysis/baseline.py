"""Findings baseline: accepted findings, each with a written reason.

A baseline lets the flow rules gate CI on *no new findings* while the
accepted ones stay visible and justified.  The committed file
(``analysis/baseline.json``) is a list of entries::

    {
      "path": "src/repro/core/sparse.py",
      "rule": "MEGH011",
      "message": "...exact diagnostic message...",
      "count": 2,
      "reason": "why these findings are accepted"
    }

Matching is by (repo-relative posix path, rule id, message) with a
count — line numbers are deliberately excluded so unrelated edits do
not churn the file.  ``apply_baseline`` removes up to ``count``
matching diagnostics from a :class:`~repro.analysis.engine.LintResult`
(tallied in ``result.baselined``); an entry that matches fewer
findings than its count is *stale* and lands in
``result.stale_baseline`` — under ``--strict-suppressions`` stale
entries fail the run, which keeps the baseline shrinking as findings
get fixed.

``repro lint --update-baseline`` rewrites the file from the current
findings, preserving reasons for entries that survive; new entries get
a placeholder reason that a human must replace before committing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "BaselineEntry",
    "Baseline",
    "BaselineError",
    "load_baseline",
    "apply_baseline",
    "update_baseline",
    "normalize_path",
    "PLACEHOLDER_REASON",
]

PLACEHOLDER_REASON = "TODO: justify this accepted finding"


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or malformed."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding signature."""

    path: str
    rule: str
    message: str
    count: int
    reason: str

    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.message)


@dataclass(frozen=True)
class Baseline:
    """An ordered set of accepted-finding entries."""

    entries: Tuple[BaselineEntry, ...] = ()

    def by_key(self) -> Dict[Tuple[str, str, str], BaselineEntry]:
        return {entry.key(): entry for entry in self.entries}

    def save(self, path: Union[str, Path]) -> None:
        document = {
            "tool": "meghlint",
            "version": 1,
            "entries": [
                {
                    "path": entry.path,
                    "rule": entry.rule,
                    "message": entry.message,
                    "count": entry.count,
                    "reason": entry.reason,
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Parse a baseline file, validating shape and reasons."""
    file_path = Path(path)
    try:
        document = json.loads(file_path.read_text(encoding="utf-8"))
    except FileNotFoundError as error:
        raise BaselineError(f"no such baseline file: {file_path}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(
            f"baseline {file_path} is not valid JSON: {error}"
        ) from error
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(
            f"baseline {file_path} must be an object with an 'entries' list"
        )
    entries: List[BaselineEntry] = []
    for position, raw in enumerate(document["entries"]):
        if not isinstance(raw, dict):
            raise BaselineError(
                f"baseline {file_path}: entry {position} is not an object"
            )
        try:
            entry = BaselineEntry(
                path=str(raw["path"]),
                rule=str(raw["rule"]),
                message=str(raw["message"]),
                count=int(raw.get("count", 1)),
                reason=str(raw["reason"]),
            )
        except KeyError as error:
            raise BaselineError(
                f"baseline {file_path}: entry {position} is missing "
                f"required field {error}"
            ) from error
        if entry.count < 1:
            raise BaselineError(
                f"baseline {file_path}: entry {position} has count < 1"
            )
        if not entry.reason.strip():
            raise BaselineError(
                f"baseline {file_path}: entry {position} "
                f"({entry.rule} in {entry.path}) has an empty reason — "
                "every accepted finding needs a written justification"
            )
        entries.append(entry)
    return Baseline(entries=tuple(entries))


def normalize_path(path: str, root: Optional[Path] = None) -> str:
    """Repo-relative posix form of a diagnostic path, for matching."""
    candidate = Path(path)
    base = root if root is not None else Path.cwd()
    try:
        candidate = candidate.resolve().relative_to(base.resolve())
    except (ValueError, OSError):
        pass
    return candidate.as_posix()


def diagnostic_key(
    diagnostic: Diagnostic, root: Optional[Path] = None
) -> Tuple[str, str, str]:
    return (
        normalize_path(diagnostic.path, root),
        diagnostic.rule_id,
        diagnostic.message,
    )


def apply_baseline(
    result: "LintResultLike",
    baseline: Baseline,
    root: Optional[Path] = None,
) -> None:
    """Remove baselined findings from ``result`` in place.

    Updates ``result.baselined`` with the number of findings absorbed
    and ``result.stale_baseline`` with a line per entry whose count no
    longer matches reality (over-counted or vanished).
    """
    budgets: Dict[Tuple[str, str, str], int] = {
        entry.key(): entry.count for entry in baseline.entries
    }
    remaining: List[Diagnostic] = []
    for diagnostic in result.diagnostics:
        key = diagnostic_key(diagnostic, root)
        if budgets.get(key, 0) > 0:
            budgets[key] -= 1
            result.baselined += 1
        else:
            remaining.append(diagnostic)
    result.diagnostics[:] = remaining
    base = root if root is not None else Path.cwd()
    for entry in baseline.entries:
        unmatched = budgets.get(entry.key(), 0)
        if unmatched <= 0:
            continue
        if not (base / entry.path).exists():
            # A deleted or renamed file can never match again; without
            # this note the entry silently retains a findings budget
            # that new code at the old signature would spend.
            result.stale_baseline.append(
                f"{entry.path}: {entry.rule} baseline entry points at a "
                "file that no longer exists — purge it "
                "(repro lint --update-baseline)"
            )
        else:
            result.stale_baseline.append(
                f"{entry.path}: {entry.rule} baseline entry expects "
                f"{entry.count} finding(s), {entry.count - unmatched} "
                "remain — shrink or remove the entry "
                "(repro lint --update-baseline)"
            )


def update_baseline(
    result: "LintResultLike",
    previous: Optional[Baseline] = None,
    root: Optional[Path] = None,
) -> Baseline:
    """Build a fresh baseline from the current findings.

    Reasons carry over from ``previous`` for signatures that persist;
    brand-new signatures get :data:`PLACEHOLDER_REASON`, which a human
    must replace before committing (the loader accepts it, reviewers
    should not).
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    for diagnostic in result.diagnostics:
        key = diagnostic_key(diagnostic, root)
        counts[key] = counts.get(key, 0) + 1
    carried = previous.by_key() if previous is not None else {}
    entries = []
    for key in sorted(counts):
        path, rule, message = key
        kept = carried.get(key)
        reason = kept.reason if kept is not None else PLACEHOLDER_REASON
        entries.append(
            BaselineEntry(
                path=path,
                rule=rule,
                message=message,
                count=counts[key],
                reason=reason,
            )
        )
    return Baseline(entries=tuple(entries))


class LintResultLike:
    """Structural interface ``apply_baseline`` needs (satisfied by
    :class:`repro.analysis.engine.LintResult`); kept tiny to avoid an
    import cycle between the engine and this module."""

    diagnostics: List[Diagnostic]
    baselined: int
    stale_baseline: List[str]
