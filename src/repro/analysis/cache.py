"""Content-hash result cache for ``repro lint``.

Warm lint runs in CI re-analyze a tree that is almost entirely
unchanged.  The cache keys *results* — never parses — on content:

* **per-file**: the file's SHA-256 plus the config fingerprint keys the
  per-file pass's findings, suppressed count, and which suppression
  lines fired (so MEGH013 stays exact on replay);
* **whole-program**: one entry keyed over the sorted (path, SHA-256)
  set of every parsed module, because a flow/par finding in file A can
  be caused by an edit in file B — any change anywhere invalidates it.

Every file is still *parsed* on every run: the whole-program pass needs
all ASTs regardless, and the parse-once discipline (one ``ast.parse``
per file per invocation) is the invariant the engine's tests pin.  What
a hit skips is rule execution.

The config fingerprint folds in ``select``/``ignore``/``flow``/``par``/
``shape`` *and* a toolchain hash over every source file of
``repro.analysis`` itself — the per-file rules, meghflow, meghpar, and
meghshape alike — so editing any analyzer module invalidates the whole
cache: a stale result can never outlive the code that produced it.

Storage is one JSON document, ``meghlint-cache.json``, under the
directory given to ``repro lint --cache-dir``.  A missing, unreadable,
or version-mismatched document is treated as empty, never as an error:
the cache is an accelerator, not a dependency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import Diagnostic

__all__ = ["CACHE_FILE_NAME", "CACHE_VERSION", "FileRecord", "LintCache"]

CACHE_FILE_NAME = "meghlint-cache.json"
CACHE_VERSION = 1

#: Key under which the whole-program (flow + par) record is stored.
_WHOLE_PROGRAM_KEY = "__whole_program__"


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _toolchain_sources(package_root: Optional[Path] = None) -> List[Path]:
    """Every analyzer source file folded into the toolchain hash.

    Exposed (and parameterized) so the cache-invalidation regression
    tests can assert that each analysis subpackage — including newly
    added ones like ``repro.analysis.shape`` — is covered, and that
    mutating any of these files busts the cache.
    """
    root = (
        package_root
        if package_root is not None
        else Path(__file__).resolve().parent
    )
    return sorted(root.rglob("*.py"))


def _toolchain_hash(package_root: Optional[Path] = None) -> str:
    """Hash of every ``repro.analysis`` source file (rule changes
    invalidate cached results)."""
    root = (
        package_root
        if package_root is not None
        else Path(__file__).resolve().parent
    )
    digest = hashlib.sha256()
    for source in _toolchain_sources(root):
        digest.update(source.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class FileRecord:
    """Cached outcome of one pass over one (or all) file(s)."""

    #: Content key: file SHA-256, or the project fingerprint for the
    #: whole-program record.
    sha: str
    diagnostics: List[Dict[str, Union[str, int]]] = field(
        default_factory=list
    )
    suppressed: int = 0
    #: ``path -> {line -> times fired}`` suppression usage to replay
    #: (per-file records use a single-path map for uniformity).
    marks: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "sha": self.sha,
            "diagnostics": self.diagnostics,
            "suppressed": self.suppressed,
            "marks": self.marks,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "FileRecord":
        return cls(
            sha=str(raw["sha"]),
            diagnostics=list(raw.get("diagnostics", [])),
            suppressed=int(raw.get("suppressed", 0)),
            marks={
                str(path): {
                    str(line): int(count)
                    for line, count in lines.items()
                }
                for path, lines in dict(raw.get("marks", {})).items()
            },
        )

    def replay_diagnostics(self) -> List[Diagnostic]:
        return [Diagnostic.from_dict(raw) for raw in self.diagnostics]


class LintCache:
    """Content-addressed store of per-file and whole-program results."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / CACHE_FILE_NAME
        self.hits = 0
        self.misses = 0
        self._records: Dict[str, FileRecord] = {}
        self._seen: Dict[str, FileRecord] = {}
        self._toolchain = _toolchain_hash()
        self._load()

    # -- fingerprints ---------------------------------------------------

    def config_fingerprint(
        self,
        select: Optional[Sequence[str]],
        ignore: Optional[Sequence[str]],
        flow: bool,
        par: bool,
        shape: bool,
    ) -> str:
        """Fold the rule selection and the analyzer sources into one key."""
        document = {
            "select": sorted(select) if select is not None else None,
            "ignore": sorted(ignore) if ignore is not None else None,
            "flow": flow,
            "par": par,
            "shape": shape,
            "toolchain": self._toolchain,
        }
        return _sha256_text(json.dumps(document, sort_keys=True))

    @staticmethod
    def source_sha(source: str) -> str:
        return _sha256_text(source)

    @staticmethod
    def project_fingerprint(path_shas: Sequence[Tuple[str, str]]) -> str:
        """One key over every (path, sha) a whole-program pass saw."""
        digest = hashlib.sha256()
        for path, sha in sorted(path_shas):
            digest.update(path.encode("utf-8"))
            digest.update(b"\0")
            digest.update(sha.encode("utf-8"))
            digest.update(b"\0")
        return digest.hexdigest()

    # -- lookup / store -------------------------------------------------

    def lookup(self, key: str, sha: str, fingerprint: str) -> Optional[
        FileRecord
    ]:
        """Replayable record for ``key``, counting the hit or miss."""
        record = self._records.get(self._entry_key(key, fingerprint))
        if record is not None and record.sha == sha:
            self.hits += 1
            self._seen[self._entry_key(key, fingerprint)] = record
            return record
        self.misses += 1
        return None

    def store(
        self, key: str, fingerprint: str, record: FileRecord
    ) -> None:
        self._records[self._entry_key(key, fingerprint)] = record
        self._seen[self._entry_key(key, fingerprint)] = record

    def lookup_whole_program(
        self, fingerprint: str, project_sha: str
    ) -> Optional[FileRecord]:
        """Whole-program record lookup (not counted as a file hit)."""
        record = self._records.get(
            self._entry_key(_WHOLE_PROGRAM_KEY, fingerprint)
        )
        if record is not None and record.sha == project_sha:
            self._seen[
                self._entry_key(_WHOLE_PROGRAM_KEY, fingerprint)
            ] = record
            return record
        return None

    def store_whole_program(
        self, fingerprint: str, record: FileRecord
    ) -> None:
        self.store(_WHOLE_PROGRAM_KEY, fingerprint, record)

    # -- persistence ----------------------------------------------------

    def save(self) -> None:
        """Write back only the records this run looked at or produced.

        Entries for files that vanished from the tree (or for stale
        config fingerprints) are pruned by construction.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {
            "tool": "meghlint",
            "version": CACHE_VERSION,
            "entries": {
                key: record.to_json()
                for key, record in sorted(self._seen.items())
            },
        }
        self.path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, ValueError):
            return
        if not isinstance(document, dict):
            return
        if document.get("version") != CACHE_VERSION:
            return
        entries = document.get("entries")
        if not isinstance(entries, dict):
            return
        for key, raw in entries.items():
            try:
                self._records[str(key)] = FileRecord.from_json(raw)
            except (KeyError, TypeError, ValueError):
                continue

    @staticmethod
    def _entry_key(key: str, fingerprint: str) -> str:
        return f"{fingerprint}:{key}"
