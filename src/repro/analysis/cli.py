"""``repro lint`` — the meghlint command-line front end.

Exit codes: 0 when clean, 1 when any finding survives suppression,
2 on usage errors (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.engine import LintConfig, lint_paths
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, all_rule_ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "meghlint: static analysis for determinism, numerical "
            "safety, and simulator invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_rule_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def run(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro lint``; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in all_rule_ids():
            rule_class = RULE_REGISTRY[rule_id]
            print(
                f"{rule_id} [{rule_class.severity}] {rule_class.summary}"
            )
        return 0
    try:
        config = LintConfig(
            select=_split_rule_ids(args.select),
            ignore=_split_rule_ids(args.ignore),
        )
        config.rules()  # validate rule ids before touching the filesystem
        result = lint_paths(args.paths, config)
    except (ValueError, FileNotFoundError) as error:
        print(f"repro lint: error: {error}")
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(run())
