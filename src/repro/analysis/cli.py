"""``repro lint`` — the meghlint command-line front end.

Exit codes: 0 when clean, 1 when any finding survives suppression and
baseline (or, under ``--strict-suppressions``, when stale suppressions
or stale baseline entries exist), 2 on usage errors (unknown rule id,
missing path, malformed baseline) **and** on analyzer crashes — CI
treats 1 as "fix your findings" and 2 as "fix the linter".
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    apply_baseline,
    load_baseline,
    update_baseline,
)
from repro.analysis.cache import LintCache
from repro.analysis.engine import (
    UNUSED_SUPPRESSION_RULE,
    LintConfig,
    lint_paths,
)
from repro.analysis.flow import FLOW_RULES
from repro.analysis.par import PAR_RULES
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rules import RULE_REGISTRY, all_rule_ids
from repro.analysis.shape import SHAPE_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "meghlint: static analysis for determinism, numerical "
            "safety, and simulator invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "report format (default: text); sarif emits a SARIF 2.1.0 "
            "document for code-scanning upload"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the whole-program flow pass (MEGH010-MEGH012)",
    )
    parser.add_argument(
        "--no-par",
        action="store_true",
        help=(
            "skip the meghpar determinism/process-safety pass "
            "(MEGH014-MEGH018)"
        ),
    )
    parser.add_argument(
        "--no-shape",
        action="store_true",
        help=(
            "skip the meghshape symbolic-shape/ABI pass "
            "(MEGH019-MEGH023)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for the content-hash result cache; warm runs "
            "skip re-analysis of unchanged files"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "accepted-findings file; matching findings are absorbed "
            "so only new ones fail the run"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the --baseline file from the current findings "
            "(reasons carry over for surviving entries) and exit 0"
        ),
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help=(
            "fail (exit 1) on suppression comments that never fire "
            "and on stale baseline entries"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_rule_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def _print_rules() -> None:
    for rule_id in all_rule_ids():
        rule_class = RULE_REGISTRY[rule_id]
        print(f"{rule_id} [{rule_class.severity}] {rule_class.summary}")
    for rule_id in sorted(FLOW_RULES):
        severity, summary = FLOW_RULES[rule_id]
        print(f"{rule_id} [{severity}] {summary} (flow)")
    for rule_id in sorted(PAR_RULES):
        severity, summary = PAR_RULES[rule_id]
        print(f"{rule_id} [{severity}] {summary} (par)")
    for rule_id in sorted(SHAPE_RULES):
        severity, summary = SHAPE_RULES[rule_id]
        print(f"{rule_id} [{severity}] {summary} (shape)")
    print(
        f"{UNUSED_SUPPRESSION_RULE} [warning] suppression directive that "
        "never fires (engine; failing under --strict-suppressions)"
    )


def run(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro lint``; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if args.update_baseline and args.baseline is None:
        print("repro lint: error: --update-baseline requires --baseline")
        return 2
    try:
        config = LintConfig(
            select=_split_rule_ids(args.select),
            ignore=_split_rule_ids(args.ignore),
            flow=not args.no_flow,
            par=not args.no_par,
            shape=not args.no_shape,
        )
        config.validate()  # fail on unknown ids before touching the fs
        previous: Optional[Baseline] = None
        if args.baseline is not None and not args.update_baseline:
            previous = load_baseline(args.baseline)
        elif args.update_baseline and Path(args.baseline).exists():
            previous = load_baseline(args.baseline)
    except (ValueError, FileNotFoundError, BaselineError) as error:
        print(f"repro lint: error: {error}")
        return 2
    try:
        cache = (
            LintCache(args.cache_dir) if args.cache_dir is not None else None
        )
        result = lint_paths(args.paths, config, cache=cache)
        if args.update_baseline:
            fresh = update_baseline(result, previous)
            fresh.save(args.baseline)
            if previous is not None:
                surviving = {entry.key() for entry in fresh.entries}
                for entry in previous.entries:
                    if entry.key() not in surviving:
                        print(
                            f"repro lint: purged baseline entry "
                            f"{entry.rule} for {entry.path} (no matching "
                            "finding remains)"
                        )
            print(
                f"repro lint: baseline {args.baseline} updated with "
                f"{len(fresh.entries)} entr"
                + ("y" if len(fresh.entries) == 1 else "ies")
            )
            return 0
        if previous is not None:
            apply_baseline(result, previous)
    except (ValueError, FileNotFoundError) as error:
        print(f"repro lint: error: {error}")
        return 2
    except Exception as error:  # noqa: BLE001 — crash, not finding
        print(f"repro lint: internal error: {type(error).__name__}: {error}")
        return 2
    strict_failures = args.strict_suppressions and (
        bool(result.unused_suppressions) or bool(result.stale_baseline)
    )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, strict=args.strict_suppressions))
    if not result.clean:
        return 1
    return 1 if strict_failures else 0


if __name__ == "__main__":
    raise SystemExit(run())
