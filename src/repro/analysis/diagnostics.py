"""Diagnostic records produced by the meghlint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Union


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the lint gate."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why it matters."""

    path: str
    line: int
    column: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        """``path:line:col: RULE severity: message`` (clickable in IDEs)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Union[str, int]]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the lint result cache)."""
        return cls(
            path=str(raw["path"]),
            line=int(raw["line"]),
            column=int(raw["column"]),
            rule_id=str(raw["rule"]),
            severity=Severity(str(raw["severity"])),
            message=str(raw["message"]),
        )


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Stable presentation order: by file, then position, then rule."""
    return (
        diagnostic.path,
        diagnostic.line,
        diagnostic.column,
        diagnostic.rule_id,
    )
