"""meghlint engine: file walking, parsing, suppression filtering.

Suppression syntax (checked on the diagnostic's own line)::

    x = 1.0
    if x == 1.0:  # meghlint: ignore[MEGH003] -- exact sentinel, set above
        ...

``ignore`` with no bracket suppresses every rule on that line;
``ignore[MEGH003,MEGH006]`` suppresses the listed rules.  A module whose
first lines contain ``# meghlint: skip-file`` is not linted at all
(used for test fixtures that intentionally violate rules).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.diagnostics import Diagnostic, Severity, sort_key
from repro.analysis.rules import Rule, RuleContext, build_rules

_SUPPRESSION_PATTERN = re.compile(
    r"#\s*meghlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_PATTERN = re.compile(r"#\s*meghlint:\s*skip-file")

#: How many leading lines may carry a skip-file marker.
_SKIP_FILE_WINDOW = 5


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and over which files."""

    select: Optional[Sequence[str]] = None
    ignore: Optional[Sequence[str]] = None
    #: Directory names never descended into.
    excluded_dirs: Sequence[str] = (
        ".git",
        "__pycache__",
        ".mypy_cache",
        ".ruff_cache",
        "build",
        "dist",
    )

    def rules(self) -> List[Rule]:
        return build_rules(select=self.select, ignore=self.ignore)


@dataclass
class LintResult:
    """Diagnostics plus bookkeeping for the reporters."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> int:
        return sum(
            1
            for d in self.diagnostics
            if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> int:
        return sum(
            1
            for d in self.diagnostics
            if d.severity is Severity.WARNING
        )

    @property
    def clean(self) -> bool:
        return not self.diagnostics


def _line_suppressions(source_lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule ids (None = all)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for number, line in enumerate(source_lines, start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if not match:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressions[number] = None
        else:
            rule_ids = {
                part.strip().upper()
                for part in listed.split(",")
                if part.strip()
            }
            suppressions[number] = rule_ids or None
    return suppressions


def _is_suppressed(
    diagnostic: Diagnostic,
    suppressions: Dict[int, Optional[Set[str]]],
) -> bool:
    if diagnostic.line not in suppressions:
        return False
    rule_ids = suppressions[diagnostic.line]
    return rule_ids is None or diagnostic.rule_id in rule_ids


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Lint one module's source text."""
    config = config or LintConfig()
    result = result if result is not None else LintResult()
    source_lines = source.splitlines()
    result.files_checked += 1
    for line in source_lines[:_SKIP_FILE_WINDOW]:
        if _SKIP_FILE_PATTERN.search(line):
            return result
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result.diagnostics.append(
            Diagnostic(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) or 1,
                rule_id="MEGH000",
                severity=Severity.ERROR,
                message=f"file does not parse: {error.msg}",
            )
        )
        return result
    context = RuleContext(
        path=path, tree=tree, source_lines=tuple(source_lines)
    )
    suppressions = _line_suppressions(source_lines)
    for rule in config.rules():
        for diagnostic in rule.check(context):
            if _is_suppressed(diagnostic, suppressions):
                result.suppressed += 1
            else:
                result.diagnostics.append(diagnostic)
    return result


def lint_file(
    path: Union[str, Path],
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(
        source, path=str(file_path), config=config, result=result
    )


def iter_python_files(
    paths: Iterable[Union[str, Path]],
    config: Optional[LintConfig] = None,
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    config = config or LintConfig()
    excluded = set(config.excluded_dirs)
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if excluded.intersection(candidate.parts):
                    continue
                found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return found


def lint_paths(
    paths: Iterable[Union[str, Path]],
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Lint every ``.py`` file under the given files/directories."""
    config = config or LintConfig()
    result = LintResult()
    for file_path in iter_python_files(paths, config):
        lint_file(file_path, config=config, result=result)
    result.diagnostics.sort(key=sort_key)
    return result
