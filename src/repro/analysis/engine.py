"""meghlint engine: file walking, parsing, suppression filtering.

Suppression syntax (checked on the diagnostic's own line)::

    x = 1.0
    if x == 1.0:  # meghlint: ignore[MEGH003] -- exact sentinel, set above
        ...

``ignore`` with no bracket suppresses every rule on that line;
``ignore[MEGH003,MEGH006]`` suppresses the listed rules.  A module whose
first lines contain ``# meghlint: skip-file`` is not linted at all
(used for test fixtures that intentionally violate rules).

Each module is parsed **once**: the same :class:`ParsedModule` (AST +
suppression table) feeds both the per-file rules (MEGH001–MEGH009) and
the whole-program flow pass (MEGH010–MEGH012, see
:mod:`repro.analysis.flow`), which :func:`lint_paths` runs over all
parsed modules together.  Suppression comments are found with
:mod:`tokenize` so suppression-like text inside docstrings and string
literals is never mistaken for a directive — and every real directive
tracks whether it actually fired, so stale ones can be reported
(``MEGH013``, enforced by ``repro lint --strict-suppressions``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.cache import FileRecord, LintCache
from repro.analysis.diagnostics import Diagnostic, Severity, sort_key
from repro.analysis.flow import (
    FLOW_RULES,
    build_call_graph,
    build_project,
    run_flow,
)
from repro.analysis.par import PAR_RULES, run_par
from repro.analysis.rules import Rule, RuleContext, build_rules
from repro.analysis.shape import SHAPE_RULES, run_shape

_SUPPRESSION_PATTERN = re.compile(
    r"#\s*meghlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_PATTERN = re.compile(r"#\s*meghlint:\s*skip-file")

#: How many leading lines may carry a skip-file marker.
_SKIP_FILE_WINDOW = 5

#: Engine-level check id for a suppression directive that never fired.
UNUSED_SUPPRESSION_RULE = "MEGH013"

#: Rule ids handled by the engine rather than the per-file registry.
_ENGINE_RULE_IDS = (
    frozenset(FLOW_RULES)
    | frozenset(PAR_RULES)
    | frozenset(SHAPE_RULES)
    | {UNUSED_SUPPRESSION_RULE}
)


@dataclass
class Suppression:
    """One ``# meghlint: ignore`` directive and whether it fired."""

    line: int
    #: Suppressed rule ids; ``None`` means every rule on the line.
    rules: Optional[Set[str]]
    used: int = 0


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every pass."""

    path: str
    source_lines: Tuple[str, ...]
    tree: Optional[ast.Module]
    skipped: bool
    suppressions: Dict[int, Suppression]
    parse_error: Optional[SyntaxError] = None


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and over which files."""

    select: Optional[Sequence[str]] = None
    ignore: Optional[Sequence[str]] = None
    #: Run the whole-program flow pass (MEGH010–MEGH012) in
    #: :func:`lint_paths`.  Per-file entry points never run it: flow
    #: facts only make sense over a whole project.
    flow: bool = True
    #: Run the meghpar determinism/process-safety pass (MEGH014–MEGH018)
    #: in :func:`lint_paths`.  Shares the flow pass's project model and
    #: call graph — both passes see the same instances.
    par: bool = True
    #: Run the meghshape symbolic-shape/ABI pass (MEGH019–MEGH023) in
    #: :func:`lint_paths`.  Consumes the same project model as the flow
    #: and par passes (parse-once, resolve-once).
    shape: bool = True
    #: Directory names never descended into.
    excluded_dirs: Sequence[str] = (
        ".git",
        "__pycache__",
        ".mypy_cache",
        ".ruff_cache",
        "build",
        "dist",
    )

    def validate(self) -> None:
        """Raise ``ValueError`` on rule ids no pass recognizes."""
        known = set(self._registry_ids()) | _ENGINE_RULE_IDS
        requested = set(self.select or ()) | set(self.ignore or ())
        unknown = requested - known
        if unknown:
            raise ValueError(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )

    def rules(self) -> List[Rule]:
        """Per-file rule instances (engine-level ids filtered out)."""
        self.validate()
        return build_rules(
            select=self._registry_only(self.select),
            ignore=self._registry_only(self.ignore),
        )

    def flow_rule_sets(
        self,
    ) -> Tuple[Optional[Set[str]], Optional[Set[str]]]:
        select = set(self.select) if self.select is not None else None
        ignore = set(self.ignore) if self.ignore is not None else None
        return select, ignore

    def unused_suppression_check_enabled(self) -> bool:
        if self.ignore is not None and UNUSED_SUPPRESSION_RULE in self.ignore:
            return False
        if self.select is not None:
            return UNUSED_SUPPRESSION_RULE in self.select
        return True

    @staticmethod
    def _registry_ids() -> Set[str]:
        from repro.analysis.rules import RULE_REGISTRY

        return set(RULE_REGISTRY)

    def _registry_only(
        self, ids: Optional[Sequence[str]]
    ) -> Optional[List[str]]:
        if ids is None:
            return None
        return [i for i in ids if i not in _ENGINE_RULE_IDS]


@dataclass
class LintResult:
    """Diagnostics plus bookkeeping for the reporters."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Findings absorbed by an accepted-findings baseline.
    baselined: int = 0
    #: Human-readable notes for baseline entries that over-count.
    stale_baseline: List[str] = field(default_factory=list)
    #: ``MEGH013`` diagnostics for directives that never fired.  Kept
    #: out of ``diagnostics`` so they inform without failing the run;
    #: ``--strict-suppressions`` promotes them.
    unused_suppressions: List[Diagnostic] = field(default_factory=list)
    #: Result-cache accounting (``None`` when no ``--cache-dir`` given).
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None

    @property
    def errors(self) -> int:
        return sum(
            1
            for d in self.diagnostics
            if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> int:
        return sum(
            1
            for d in self.diagnostics
            if d.severity is Severity.WARNING
        )

    @property
    def clean(self) -> bool:
        return not self.diagnostics


def _scan_suppressions(source: str) -> Dict[int, Suppression]:
    """Suppression table from real comment tokens only.

    Docstrings in this package quote the directive syntax verbatim, so
    a plain regex over source lines would both mis-suppress and later
    report phantom "unused" directives.  When tokenization fails (the
    file will separately get MEGH000), fall back to a line regex.
    """
    comments: List[Tuple[int, str]]
    try:
        comments = [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (number, line)
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    table: Dict[int, Suppression] = {}
    for line_number, text in comments:
        match = _SUPPRESSION_PATTERN.search(text)
        if not match:
            continue
        listed = match.group("rules")
        if listed is None:
            table[line_number] = Suppression(line=line_number, rules=None)
        else:
            rule_ids = {
                part.strip().upper()
                for part in listed.split(",")
                if part.strip()
            }
            table[line_number] = Suppression(
                line=line_number, rules=rule_ids or None
            )
    return table


def parse_module(source: str, path: str = "<string>") -> ParsedModule:
    """Read one module into the shared parse-once representation."""
    source_lines = tuple(source.splitlines())
    for line in source_lines[:_SKIP_FILE_WINDOW]:
        if _SKIP_FILE_PATTERN.search(line):
            return ParsedModule(
                path=path,
                source_lines=source_lines,
                tree=None,
                skipped=True,
                suppressions={},
            )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return ParsedModule(
            path=path,
            source_lines=source_lines,
            tree=None,
            skipped=False,
            suppressions={},
            parse_error=error,
        )
    return ParsedModule(
        path=path,
        source_lines=source_lines,
        tree=tree,
        skipped=False,
        suppressions=_scan_suppressions(source),
    )


def _consume_suppression(
    module: ParsedModule, diagnostic: Diagnostic
) -> bool:
    """True (and count the use) when the module suppresses this line."""
    suppression = module.suppressions.get(diagnostic.line)
    if suppression is None:
        return False
    if suppression.rules is not None and (
        diagnostic.rule_id not in suppression.rules
    ):
        return False
    suppression.used += 1
    return True


def _apply_file_rules(
    module: ParsedModule, config: LintConfig, result: LintResult
) -> None:
    """Run the per-file rules over one already-parsed module."""
    result.files_checked += 1
    if module.skipped:
        return
    if module.parse_error is not None:
        error = module.parse_error
        result.diagnostics.append(
            Diagnostic(
                path=module.path,
                line=error.lineno or 1,
                column=(error.offset or 0) or 1,
                rule_id="MEGH000",
                severity=Severity.ERROR,
                message=f"file does not parse: {error.msg}",
            )
        )
        return
    assert module.tree is not None
    context = RuleContext(
        path=module.path, tree=module.tree, source_lines=module.source_lines
    )
    for rule in config.rules():
        for diagnostic in rule.check(context):
            if _consume_suppression(module, diagnostic):
                result.suppressed += 1
            else:
                result.diagnostics.append(diagnostic)


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Lint one module's source text (per-file rules only)."""
    config = config or LintConfig()
    result = result if result is not None else LintResult()
    _apply_file_rules(parse_module(source, path), config, result)
    return result


def lint_file(
    path: Union[str, Path],
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Lint one file on disk (per-file rules only)."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(
        source, path=str(file_path), config=config, result=result
    )


def iter_python_files(
    paths: Iterable[Union[str, Path]],
    config: Optional[LintConfig] = None,
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    config = config or LintConfig()
    excluded = set(config.excluded_dirs)
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if excluded.intersection(candidate.parts):
                    continue
                found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return found


def _collect_unused_suppressions(
    modules: Sequence[ParsedModule], result: LintResult
) -> None:
    for module in modules:
        if module.skipped or module.parse_error is not None:
            continue
        for suppression in module.suppressions.values():
            if suppression.used:
                continue
            scope = (
                "all rules"
                if suppression.rules is None
                else ", ".join(sorted(suppression.rules))
            )
            result.unused_suppressions.append(
                Diagnostic(
                    path=module.path,
                    line=suppression.line,
                    column=1,
                    rule_id=UNUSED_SUPPRESSION_RULE,
                    severity=Severity.WARNING,
                    message=(
                        f"suppression for {scope} never fired; delete it "
                        "or fix the rule id (stale suppressions hide "
                        "future regressions)"
                    ),
                )
            )


def _suppression_marks(
    module: ParsedModule, before: Dict[int, int]
) -> Dict[str, int]:
    """``line -> times fired`` since the ``before`` snapshot."""
    marks: Dict[str, int] = {}
    for line, suppression in module.suppressions.items():
        delta = suppression.used - before.get(line, 0)
        if delta > 0:
            marks[str(line)] = delta
    return marks


def _replay_marks(module: ParsedModule, marks: Dict[str, int]) -> None:
    """Re-apply cached suppression usage so MEGH013 stays exact."""
    for line, count in marks.items():
        suppression = module.suppressions.get(int(line))
        if suppression is not None:
            suppression.used += count


def lint_paths(
    paths: Iterable[Union[str, Path]],
    config: Optional[LintConfig] = None,
    cache: Optional[LintCache] = None,
) -> LintResult:
    """Lint every ``.py`` file under the given files/directories.

    This is the whole-program entry point: after the per-file rules it
    runs the flow pass (unless ``config.flow`` is off), the meghpar
    pass (unless ``config.par`` is off), and the meghshape pass
    (unless ``config.shape`` is off) over the same ASTs — sharing one
    project model and call graph between them — applies line
    suppressions to their findings too, and finally reports directives
    that never fired.
    """
    config = config or LintConfig()
    config.validate()
    result = LintResult()
    fingerprint = (
        cache.config_fingerprint(
            config.select,
            config.ignore,
            config.flow,
            config.par,
            config.shape,
        )
        if cache is not None
        else ""
    )
    modules: List[ParsedModule] = []
    shas: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths, config):
        source = file_path.read_text(encoding="utf-8")
        # Always parse: the whole-program pass needs every AST, and the
        # parse-once discipline is load-bearing.  A cache hit skips the
        # per-file *rule execution*, nothing else.
        module = parse_module(source, path=str(file_path))
        modules.append(module)
        if cache is None:
            _apply_file_rules(module, config, result)
            continue
        sha = LintCache.source_sha(source)
        shas.append((module.path, sha))
        record = cache.lookup(module.path, sha, fingerprint)
        if record is not None:
            result.files_checked += 1
            result.diagnostics.extend(record.replay_diagnostics())
            result.suppressed += record.suppressed
            _replay_marks(module, record.marks.get(module.path, {}))
        else:
            diagnostics_before = len(result.diagnostics)
            suppressed_before = result.suppressed
            used_before = {
                line: suppression.used
                for line, suppression in module.suppressions.items()
            }
            _apply_file_rules(module, config, result)
            cache.store(
                module.path,
                fingerprint,
                FileRecord(
                    sha=sha,
                    diagnostics=[
                        diagnostic.to_dict()
                        for diagnostic in result.diagnostics[
                            diagnostics_before:
                        ]
                    ],
                    suppressed=result.suppressed - suppressed_before,
                    marks={
                        module.path: _suppression_marks(module, used_before)
                    },
                ),
            )
    if config.flow or config.par or config.shape:
        by_path = {module.path: module for module in modules}
        whole_record: Optional[FileRecord] = None
        project_sha = ""
        if cache is not None:
            project_sha = LintCache.project_fingerprint(shas)
            whole_record = cache.lookup_whole_program(
                fingerprint, project_sha
            )
        if whole_record is not None:
            result.diagnostics.extend(whole_record.replay_diagnostics())
            result.suppressed += whole_record.suppressed
            for path, marks in whole_record.marks.items():
                module_for = by_path.get(path)
                if module_for is not None:
                    _replay_marks(module_for, marks)
        else:
            flow_input = [
                (module.path, module.tree)
                for module in modules
                if module.tree is not None and not module.skipped
            ]
            select, ignore = config.flow_rule_sets()
            enabled: Set[str] = set()
            if config.flow:
                enabled |= set(FLOW_RULES)
            if config.par:
                enabled |= set(PAR_RULES)
            if config.shape:
                enabled |= set(SHAPE_RULES)
            if select is not None:
                enabled &= select
            if ignore is not None:
                enabled -= ignore
            # Build the project model and call graph once; meghflow and
            # meghpar both consume the same instances (parse-once
            # extends to resolve-once).
            project = build_project(flow_input) if enabled else None
            graph = (
                build_call_graph(project) if project is not None else None
            )
            whole_program: List[Diagnostic] = []
            if config.flow:
                whole_program.extend(
                    run_flow(
                        flow_input,
                        select,
                        ignore,
                        project=project,
                        graph=graph,
                    )
                )
            if config.par:
                whole_program.extend(
                    run_par(
                        flow_input,
                        select,
                        ignore,
                        project=project,
                        graph=graph,
                    )
                )
            if config.shape:
                whole_program.extend(
                    run_shape(
                        flow_input,
                        select,
                        ignore,
                        project=project,
                        graph=graph,
                    )
                )
            used_before_all = {
                module.path: {
                    line: suppression.used
                    for line, suppression in module.suppressions.items()
                }
                for module in modules
            }
            kept: List[Diagnostic] = []
            suppressed_delta = 0
            for diagnostic in whole_program:
                module_for = by_path.get(str(diagnostic.path))
                if module_for is not None and _consume_suppression(
                    module_for, diagnostic
                ):
                    result.suppressed += 1
                    suppressed_delta += 1
                else:
                    result.diagnostics.append(diagnostic)
                    kept.append(diagnostic)
            if cache is not None:
                all_marks: Dict[str, Dict[str, int]] = {}
                for module in modules:
                    delta = _suppression_marks(
                        module, used_before_all[module.path]
                    )
                    if delta:
                        all_marks[module.path] = delta
                cache.store_whole_program(
                    fingerprint,
                    FileRecord(
                        sha=project_sha,
                        diagnostics=[d.to_dict() for d in kept],
                        suppressed=suppressed_delta,
                        marks=all_marks,
                    ),
                )
    if config.unused_suppression_check_enabled():
        _collect_unused_suppressions(modules, result)
    if cache is not None:
        cache.save()
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
    result.diagnostics.sort(key=sort_key)
    result.unused_suppressions.sort(key=sort_key)
    return result
