"""meghflow — whole-program dataflow analysis for the Megh reproduction.

Where the per-file meghlint rules (MEGH001–MEGH009) pattern-match one
AST at a time, the flow pass builds a project model — symbol table,
call graph, light local types — across *all* files handed to one lint
invocation, and checks three properties that only hold (or break)
whole-program:

``MEGH010``
    RNG provenance: an unseeded ``numpy.random.Generator`` /
    ``random.Random`` created anywhere must not flow — through calls,
    returns, dataclass fields, or attribute stores — into
    ``repro.cloudsim`` / ``repro.core`` / ``repro.workloads``.
``MEGH011``
    Dirty-flag invalidation: every mutation of a declared
    lazily-aggregated field (``DatacenterArrays`` vectors,
    ``SparseMatrix`` backing store, ``RewardVector`` storage) must set
    its paired flag / bump its counter on every path to function exit.
``MEGH012``
    dtype/axis discipline in ``repro.core`` / ``repro.cloudsim``:
    canonical dtypes only, no N-vs-M broadcasts, no silent int/float
    mixing, no Python-scalar reductions over ndarrays.

The entry point is :func:`run_flow`, invoked by the lint engine with
the modules it already parsed (parse-once: the same ASTs feed the
per-file rules and this pass).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.callgraph import (
    CallGraph,
    CallSite,
    LocalTypes,
    build_call_graph,
)
from repro.analysis.flow.dirty import check_dirty_flags
from repro.analysis.flow.dtypes import check_dtype_discipline
from repro.analysis.flow.invariants import (
    FIELD_TYPES,
    METHOD_TYPES,
    MUTATION_INVARIANTS,
    ArrayType,
    MutationInvariant,
)
from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    build_project,
)
from repro.analysis.flow.rng import check_rng_provenance

__all__ = [
    "FLOW_RULES",
    "run_flow",
    "Project",
    "ModuleInfo",
    "FunctionInfo",
    "ClassInfo",
    "CallGraph",
    "CallSite",
    "LocalTypes",
    "build_project",
    "build_call_graph",
    "MutationInvariant",
    "MUTATION_INVARIANTS",
    "ArrayType",
    "FIELD_TYPES",
    "METHOD_TYPES",
    "check_rng_provenance",
    "check_dirty_flags",
    "check_dtype_discipline",
]

#: rule id -> (default severity, one-line summary). The registry the
#: engine/CLI consult for ``--select``/``--ignore`` validation and
#: ``--list-rules`` output.
FLOW_RULES: Dict[str, Tuple[Severity, str]] = {
    "MEGH010": (
        Severity.ERROR,
        "unseeded RNG flows into repro.cloudsim/core/workloads "
        "(whole-program taint)",
    ),
    "MEGH011": (
        Severity.ERROR,
        "lazily-aggregated field mutated without setting its paired "
        "dirty flag / counter on every path",
    ),
    "MEGH012": (
        Severity.ERROR,
        "dtype/axis discipline in hot paths: non-canonical dtypes, "
        "N-vs-M broadcasts, int/float mixing, Python reductions",
    ),
}


def run_flow(
    parsed: Sequence[Tuple[Union[str, Path], ast.Module]],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    project: Optional[Project] = None,
    graph: Optional[CallGraph] = None,
) -> List[Diagnostic]:
    """Run the enabled flow rules over already-parsed modules.

    ``parsed`` pairs each path with the AST the engine produced for the
    per-file rules — the flow pass never re-parses.  ``select`` /
    ``ignore`` carry the same semantics as the per-file engine: when
    ``select`` is given only those rule ids run; ``ignore`` always
    subtracts.  ``project``/``graph`` let the engine share one project
    model and call graph across this pass and meghpar (build-once);
    when omitted they are built here from ``parsed``.
    """
    enabled = set(FLOW_RULES)
    if select is not None:
        enabled &= select
    if ignore is not None:
        enabled -= ignore
    if not enabled:
        return []
    if project is None:
        project = build_project(parsed)
    diagnostics: List[Diagnostic] = []
    if "MEGH010" in enabled:
        if graph is None:
            graph = build_call_graph(project)
        diagnostics.extend(check_rng_provenance(project, graph))
    if "MEGH011" in enabled:
        diagnostics.extend(check_dirty_flags(project))
    if "MEGH012" in enabled:
        diagnostics.extend(check_dtype_discipline(project))
    return diagnostics
