"""Call graph and light local type inference for meghflow.

For every analyzable body the graph records each call expression with
the fully qualified callee it resolves to (or ``None``): module-local
functions, imported symbols, ``self.method()`` dispatch through the
class (and project-local bases), constructor calls, and method calls on
locals whose class is known from a constructor assignment or an
annotation.  On top of the edges it offers memoized *package
reachability* — "can anything this function calls, transitively, land
inside ``repro.cloudsim``?" — which MEGH010 uses to decide whether a
tainted value handed to an intermediate helper ultimately reaches the
simulator.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
)

__all__ = ["CallSite", "CallGraph", "LocalTypes", "build_call_graph"]


@dataclass
class CallSite:
    """One call expression with its resolution, if any."""

    node: ast.Call
    #: Fully qualified callee (project symbol or external dotted name).
    callee: Optional[str]
    #: True when ``callee`` names a symbol defined in this project.
    internal: bool


class LocalTypes:
    """Class types of local names, from constructors and annotations.

    Tracks only what the flow rules need: ``x = SomeClass(...)``,
    ``x: SomeClass``, parameter annotations, and ``self`` (typed as the
    enclosing class).  Everything else is unknown.
    """

    def __init__(
        self, project: Project, function: FunctionInfo
    ) -> None:
        self._project = project
        self._module = function.module
        self._types: Dict[str, str] = {}
        owner = project.class_of_method(function)
        if owner is not None:
            self._types["self"] = owner.qualname
            self._types["cls"] = owner.qualname
        if not isinstance(function.node, ast.Module):
            for argument in (
                list(function.node.args.posonlyargs)
                + list(function.node.args.args)
                + list(function.node.args.kwonlyargs)
            ):
                annotated = self._annotation_class(argument.annotation)
                if annotated is not None:
                    self._types[argument.arg] = annotated
        for statement in ast.walk(function.node):
            if isinstance(statement, ast.Assign):
                class_name = self.class_of_expression(statement.value)
                if class_name is None:
                    continue
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        self._types[target.id] = class_name
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                annotated = self._annotation_class(statement.annotation)
                if annotated is not None:
                    self._types[statement.target.id] = annotated

    def _annotation_class(
        self, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        if annotation is None:
            return None
        name = dotted_name(annotation)
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value
        if name is None:
            return None
        resolved = self._project.resolve(self._module, name)
        if resolved is not None and resolved in self._project.classes:
            return resolved
        return None

    def class_of_expression(self, expression: ast.expr) -> Optional[str]:
        """Project class constructed/held by an expression, if known."""
        if isinstance(expression, ast.Name):
            return self._types.get(expression.id)
        if isinstance(expression, ast.Call):
            callee = dotted_name(expression.func)
            if callee is None:
                return None
            resolved = self._project.resolve(self._module, callee)
            if resolved is None:
                return None
            canonical = self._project.canonical(resolved)
            if canonical in self._project.classes:
                return canonical
            return None
        if isinstance(expression, ast.Attribute):
            owner = self.class_of_expression(expression.value)
            if owner is not None:
                info = self._project.classes.get(owner)
                if info is not None:
                    return info.attr_types.get(expression.attr)
            return None
        return None


def resolve_call(
    project: Project,
    function: FunctionInfo,
    call: ast.Call,
    local_types: Optional[LocalTypes] = None,
) -> Optional[str]:
    """Fully qualified callee of ``call`` as seen from ``function``."""
    callee = dotted_name(call.func)
    module = function.module
    if callee is not None:
        resolved = project.resolve(module, callee)
        if resolved is not None:
            return project.canonical(resolved)
        if "." not in callee:
            return None  # local variable or builtin
        # Leading segment may be an unresolvable local; fall through to
        # typed-receiver dispatch below.
    if not isinstance(call.func, ast.Attribute):
        return None
    if local_types is None:
        local_types = LocalTypes(project, function)
    receiver_class = local_types.class_of_expression(call.func.value)
    if receiver_class is None:
        if callee is not None and "." in callee:
            return callee  # external dotted call, e.g. rng.integers
        return None
    info = project.classes.get(receiver_class)
    if info is None:
        return None
    method = project.method_of(info, call.func.attr)
    if method is not None:
        return method.qualname
    return f"{receiver_class}.{call.func.attr}"


@dataclass
class CallGraph:
    """Resolved call sites per function plus package reachability."""

    project: Project
    sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    _caches: Dict[Tuple[str, ...], Dict[str, Optional[str]]] = field(
        default_factory=dict, repr=False
    )

    def callsites(self, qualname: str) -> List[CallSite]:
        return self.sites.get(qualname, [])

    def reaches_package(
        self,
        qualname: str,
        prefixes: Sequence[str],
        _cache: Optional[Dict[str, Optional[str]]] = None,
        _stack: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """A witness qualname inside ``prefixes`` reachable from here.

        Returns the first (deterministically ordered) reachable project
        symbol whose qualname starts with one of the prefixes, or
        ``None``.  Recursion through cycles terminates via the visiting
        stack; results are memoized per graph instance.
        """
        cache = _cache if _cache is not None else self._reach_cache(prefixes)
        if qualname in cache:
            return cache[qualname]
        stack = _stack if _stack is not None else set()
        if qualname in stack:
            return None
        stack.add(qualname)
        witness: Optional[str] = None
        for callee in sorted(self.edges.get(qualname, ())):
            if _matches_prefix(callee, prefixes):
                witness = callee
                break
            found = self.reaches_package(callee, prefixes, cache, stack)
            if found is not None:
                witness = found
                break
        stack.discard(qualname)
        cache[qualname] = witness
        return witness

    def _reach_cache(
        self, prefixes: Sequence[str]
    ) -> Dict[str, Optional[str]]:
        return self._caches.setdefault(tuple(prefixes), {})


def _matches_prefix(qualname: str, prefixes: Sequence[str]) -> bool:
    return any(
        qualname == prefix or qualname.startswith(prefix + ".")
        for prefix in prefixes
    )


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every call site in every analyzable body, once."""
    graph = CallGraph(project=project)
    for function in project.iter_functions():
        local_types = LocalTypes(project, function)
        sites: List[CallSite] = []
        edges: Set[str] = set()
        for statement in function.body():
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolve_call(project, function, node, local_types)
                internal = callee is not None and (
                    callee in project.functions
                    or callee in project.classes
                )
                sites.append(
                    CallSite(node=node, callee=callee, internal=internal)
                )
                if internal and callee is not None:
                    # Constructor edges point at __init__ when present.
                    if callee in project.classes:
                        init = project.method_of(
                            project.classes[callee], "__init__"
                        )
                        edges.add(
                            init.qualname if init is not None else callee
                        )
                    else:
                        edges.add(callee)
        graph.sites[function.qualname] = sites
        graph.edges[function.qualname] = edges
    return graph
