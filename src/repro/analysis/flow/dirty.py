"""MEGH011 — dirty-flag / mutation-counter invalidation discipline.

The bit-equality keystones of the vectorized rewrites are *invalidation
invariants*: every write to a ``DatacenterArrays`` hot-state vector must
set the paired dirty flag before the next aggregate query, every write
to ``SparseMatrix``'s backing store must bump ``mutations``, and every
external ``RewardVector`` write must report the touched index.  A
missed invalidation does not crash — it serves a *stale aggregate*,
which silently changes scheduling decisions and breaks the golden
traces.

This pass checks the declared field→flag table
(:mod:`repro.analysis.flow.invariants`) with a path-sensitive walk over
each function body: a mutation creates an *obligation* (the flags still
owed for that receiver), mark calls / direct flag writes / counter
bumps discharge it, and any path reaching function exit (including
early ``return``/``raise``) with an undischarged obligation is a
finding.  Branches are merged conservatively — a flag is only
considered set after an ``if`` when **both** arms set it — which is
precisely how "mutates on one branch, marks on the other" bugs surface.

Marks are recognized by declaration (the table) plus a closure over the
declaring class's own methods: a helper method whose body transitively
calls ``mark_demand_dirty`` counts as marking ``_demand_dirty``.
Counter bumps close the same way, but stricter: ``self.helper()`` only
discharges a counter obligation when the helper *provably always*
bumps — its top-level statements reach a direct ``self.<counter> += 1``
(or a call to another such helper) with no ``return``/``raise``
anywhere before it (``PendingUpdates.flush_all`` retires the staged
window through ``_reset``, which owns the bump; ``flush_all`` itself
has an early return and so never joins the closure).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.invariants import (
    MUTATION_INVARIANTS,
    MutationInvariant,
)
from repro.analysis.flow.project import (
    FunctionInfo,
    Project,
    dotted_name,
)

__all__ = ["check_dirty_flags"]

#: Container-method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "fill",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "remove",
        "discard",
        "append",
        "extend",
        "insert",
        "sort",
        "resize",
    }
)

#: Constructor-like methods exempt for every invariant: they initialize
#: state before any query can observe it (flags start dirty by design).
_EXEMPT_EVERYWHERE = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class _Obligation:
    """Flags still owed for one mutation event on one receiver."""

    node: ast.AST
    invariant: MutationInvariant
    field_name: str
    receiver: str
    remaining: FrozenSet[str]

    def key(self) -> Tuple[int, str]:
        return (id(self.node), self.field_name)


@dataclass
class _PathState:
    """What this execution path has mutated and already marked."""

    pending: Dict[Tuple[int, str], _Obligation] = field(default_factory=dict)
    #: (class_name, receiver) -> flags already set on this path.
    marked: Dict[Tuple[str, str], FrozenSet[str]] = field(default_factory=dict)
    #: (class_name, receiver) pairs whose counter was already bumped.
    counters: Set[Tuple[str, str]] = field(default_factory=set)
    terminated: bool = False

    def clone(self) -> "_PathState":
        return _PathState(
            pending={key: replace(value) for key, value in self.pending.items()},
            marked=dict(self.marked),
            counters=set(self.counters),
            terminated=self.terminated,
        )


def _merge(states: Sequence[_PathState]) -> _PathState:
    """Join after branching: obligations union, marks intersect."""
    live = [state for state in states if not state.terminated]
    if not live:
        merged = _PathState()
        merged.terminated = True
        return merged
    merged = live[0].clone()
    for state in live[1:]:
        for key, obligation in state.pending.items():
            if key in merged.pending:
                merged.pending[key].remaining = frozenset(
                    merged.pending[key].remaining | obligation.remaining
                )
            else:
                merged.pending[key] = replace(obligation)
        merged.marked = {
            receiver: flags & state.marked.get(receiver, frozenset())
            for receiver, flags in merged.marked.items()
            if receiver in state.marked
        }
        merged.counters &= state.counters
    return merged


def _mark_closure(
    project: Project, invariant: MutationInvariant
) -> Dict[str, FrozenSet[str]]:
    """Method name -> flags it (transitively) sets on ``self``.

    Starts from the declared mark table and grows through the declaring
    class's own methods, so helpers that delegate to a declared mark
    count too.  When the class is not part of the analyzed project
    (e.g. a lone file linted in isolation) the declared table stands.
    """
    closure: Dict[str, FrozenSet[str]] = dict(invariant.marks)
    info = None
    for class_info in project.classes.values():
        if class_info.name == invariant.class_name:
            info = class_info
            break
    if info is None:
        return closure
    for _ in range(len(info.methods) + 1):
        changed = False
        for name, method in info.methods.items():
            flags: Set[str] = set(closure.get(name, frozenset()))
            before = len(flags)
            for node in ast.walk(method.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in closure
                ):
                    flags |= closure[node.func.attr]
                elif (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is True
                ):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr in invariant.flag_attrs
                        ):
                            flags.add(target.attr)
            if len(flags) != before:
                closure[name] = frozenset(flags)
                changed = True
        if not changed:
            break
    return closure


def _is_counter_bump(statement: ast.stmt, counter: str) -> bool:
    """``self.<counter> += ...`` as a standalone statement."""
    if not isinstance(statement, ast.AugAssign):
        return False
    target = statement.target
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and target.attr == counter
    )


def _is_self_call_into(statement: ast.stmt, names: Set[str]) -> bool:
    """``self.<helper>()`` where ``helper`` is already in ``names``."""
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Call)
        and isinstance(statement.value.func, ast.Attribute)
        and isinstance(statement.value.func.value, ast.Name)
        and statement.value.func.value.id == "self"
        and statement.value.func.attr in names
    )


def _counter_closure(
    project: Project, invariant: MutationInvariant
) -> FrozenSet[str]:
    """Methods of the declaring class that *unconditionally* bump the
    counter, so calling one discharges a counter obligation.

    Membership is deliberately stricter than the mark closure: the
    method's top-level statement walk must reach a direct bump (or a
    call to an already-admitted helper) before any statement that can
    leave the function — a compound statement containing ``return`` or
    ``raise`` disqualifies, because the bump after it is conditional
    from the caller's point of view.  Top-level ``if``/``for`` blocks
    without an escape fall through and are skipped, which admits the
    common "branch to build arguments, then bump" shape.
    """
    if invariant.counter is None:
        return frozenset()
    info = None
    for class_info in project.classes.values():
        if class_info.name == invariant.class_name:
            info = class_info
            break
    if info is None:
        return frozenset()

    def qualifies(body: Sequence[ast.stmt], admitted: Set[str]) -> bool:
        for statement in body:
            if _is_counter_bump(statement, invariant.counter or ""):
                return True
            if _is_self_call_into(statement, admitted):
                return True
            if any(
                isinstance(node, (ast.Return, ast.Raise))
                for node in ast.walk(statement)
            ):
                return False
        return False

    admitted: Set[str] = set()
    for _ in range(len(info.methods) + 1):
        changed = False
        for name, method in info.methods.items():
            if name in admitted or name in _EXEMPT_EVERYWHERE:
                continue
            if qualifies(method.body(), admitted):
                admitted.add(name)
                changed = True
        if not changed:
            break
    return frozenset(admitted)


class _FunctionChecker:
    """Path-sensitive obligation walk over one function body."""

    def __init__(
        self,
        project: Project,
        function: FunctionInfo,
        invariants: Sequence[MutationInvariant],
        closures: Dict[str, Dict[str, FrozenSet[str]]],
        counter_closures: Dict[str, FrozenSet[str]],
    ) -> None:
        self.project = project
        self.function = function
        self.closures = closures
        self.counter_closures = counter_closures
        self.findings: List[Diagnostic] = []
        self._reported: Set[Tuple[int, str]] = set()
        self.invariants = [
            invariant
            for invariant in invariants
            if self._applies(invariant)
        ]

    def _applies(self, invariant: MutationInvariant) -> bool:
        name = self.function.name
        if name in _EXEMPT_EVERYWHERE:
            return False
        if self.function.class_name == invariant.class_name and (
            name in invariant.exempt_methods
        ):
            return False
        if invariant.scope == "class":
            return self.function.class_name == invariant.class_name
        return True

    # -- event extraction ------------------------------------------------
    def _receiver_of(self, expression: ast.expr) -> Optional[str]:
        return dotted_name(expression)

    def _field_target(
        self, expression: ast.expr
    ) -> Optional[Tuple[MutationInvariant, str, str]]:
        """(invariant, field, receiver) when ``expression`` is a store
        into a declared field (``recv.field`` or ``recv.field[...]``)."""
        if isinstance(expression, ast.Subscript):
            expression = expression.value
        if not isinstance(expression, ast.Attribute):
            return None
        for invariant in self.invariants:
            if expression.attr in invariant.fields:
                receiver = self._receiver_of(expression.value)
                if receiver is not None:
                    return invariant, expression.attr, receiver
        return None

    def _statement_events(
        self, statement: ast.stmt
    ) -> Tuple[
        List[Tuple[ast.AST, MutationInvariant, str, str]],
        List[Tuple[MutationInvariant, str, FrozenSet[str]]],
        List[Tuple[MutationInvariant, str]],
    ]:
        """(mutations, marks, counter_bumps) found in one statement."""
        mutations: List[Tuple[ast.AST, MutationInvariant, str, str]] = []
        marks: List[Tuple[MutationInvariant, str, FrozenSet[str]]] = []
        counters: List[Tuple[MutationInvariant, str]] = []
        for node in _walk_shallow(statement):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._collect_store(
                        node, target, node.value, mutations, marks, counters
                    )
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                self._collect_store(
                    node, node.target, node.value, mutations, marks, counters
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    found = self._field_target(target)
                    if found is not None:
                        mutations.append((node, *found))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attribute = node.func
                # recv.mark_x() / recv.helper() / recv._on_external_write(k)
                receiver = self._receiver_of(attribute.value)
                if receiver is not None:
                    for invariant in self.invariants:
                        closure = self.closures.get(
                            invariant.class_name, invariant.marks
                        )
                        flags = closure.get(attribute.attr)
                        if flags:
                            marks.append((invariant, receiver, flags))
                        if attribute.attr in self.counter_closures.get(
                            invariant.class_name, frozenset()
                        ):
                            counters.append((invariant, receiver))
                # recv.field.fill(...) — mutating container method.
                if attribute.attr in _MUTATING_METHODS:
                    found = self._field_target(attribute.value)
                    if found is not None:
                        mutations.append((node, *found))
        return mutations, marks, counters

    def _collect_store(
        self,
        statement: ast.AST,
        target: ast.expr,
        value: Optional[ast.expr],
        mutations: List[Tuple[ast.AST, MutationInvariant, str, str]],
        marks: List[Tuple[MutationInvariant, str, FrozenSet[str]]],
        counters: List[Tuple[MutationInvariant, str]],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._collect_store(
                    statement, element, value, mutations, marks, counters
                )
            return
        if isinstance(target, ast.Attribute):
            receiver = self._receiver_of(target.value)
            if receiver is not None:
                for invariant in self.invariants:
                    if (
                        invariant.counter is not None
                        and target.attr == invariant.counter
                    ):
                        counters.append((invariant, receiver))
                        return
                    if target.attr in invariant.flag_attrs and (
                        isinstance(value, ast.Constant)
                        and value.value is True
                    ):
                        marks.append(
                            (invariant, receiver, frozenset({target.attr}))
                        )
                        return
        found = self._field_target(target)
        if found is not None:
            mutations.append((statement, *found))

    # -- path walk -------------------------------------------------------
    def check(self) -> List[Diagnostic]:
        if not self.invariants:
            return []
        final = self._walk(self.function.body(), _PathState())
        self._finalize(final)
        return self.findings

    def _walk(
        self, statements: Sequence[ast.stmt], state: _PathState
    ) -> _PathState:
        for statement in statements:
            if state.terminated:
                break
            state = self._step(statement, state)
        return state

    def _apply_events(
        self, statement: ast.stmt, state: _PathState
    ) -> None:
        mutations, marks, counters = self._statement_events(statement)
        for node, invariant, field_name, receiver in mutations:
            required = invariant.fields[field_name]
            key = (invariant.class_name, receiver)
            already = state.marked.get(key, frozenset())
            remaining = frozenset(required - already)
            counter_done = (
                invariant.counter is not None and key in state.counters
            )
            if not remaining or counter_done:
                continue
            obligation = _Obligation(
                node=node,
                invariant=invariant,
                field_name=field_name,
                receiver=receiver,
                remaining=remaining,
            )
            existing = state.pending.get(obligation.key())
            if existing is None:
                state.pending[obligation.key()] = obligation
        for invariant, receiver, flags in marks:
            key = (invariant.class_name, receiver)
            state.marked[key] = state.marked.get(key, frozenset()) | flags
            for obligation in list(state.pending.values()):
                if (
                    obligation.invariant.class_name == invariant.class_name
                    and obligation.receiver == receiver
                ):
                    obligation.remaining = frozenset(
                        obligation.remaining - flags
                    )
                    if not obligation.remaining:
                        del state.pending[obligation.key()]
        for invariant, receiver in counters:
            key = (invariant.class_name, receiver)
            state.counters.add(key)
            for obligation in list(state.pending.values()):
                if (
                    obligation.invariant.class_name == invariant.class_name
                    and obligation.receiver == receiver
                    and obligation.invariant.counter is not None
                ):
                    del state.pending[obligation.key()]

    def _step(self, statement: ast.stmt, state: _PathState) -> _PathState:
        if isinstance(statement, ast.If):
            self._apply_events_expression(statement.test, state)
            then_state = self._walk(statement.body, state.clone())
            else_state = self._walk(statement.orelse, state.clone())
            return _merge([then_state, else_state])
        if isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
            if isinstance(statement, ast.While):
                self._apply_events_expression(statement.test, state)
            else:
                self._apply_events_expression(statement.iter, state)
            body_state = self._walk(statement.body, state.clone())
            merged = _merge([body_state, state])
            return self._walk(statement.orelse, merged)
        if isinstance(statement, ast.Try):
            body_state = self._walk(statement.body, state.clone())
            else_state = self._walk(
                statement.orelse,
                body_state.clone() if not body_state.terminated else body_state,
            )
            handler_entry = _merge([state, body_state])
            ends = [else_state]
            for handler in statement.handlers:
                ends.append(self._walk(handler.body, handler_entry.clone()))
            merged = _merge(ends)
            return self._walk(statement.finalbody, merged)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._apply_events_expression(item.context_expr, state)
            return self._walk(statement.body, state)
        if isinstance(statement, ast.Return):
            self._apply_events(statement, state)
            self._finalize(state)
            state.terminated = True
            return state
        if isinstance(statement, ast.Raise):
            self._apply_events(statement, state)
            self._finalize(state)
            state.terminated = True
            return state
        if isinstance(statement, (ast.Break, ast.Continue)):
            # Conservative: treat like a join point; obligations stay
            # pending and are checked at function exit.
            return state
        self._apply_events(statement, state)
        return state

    def _apply_events_expression(
        self, expression: Optional[ast.expr], state: _PathState
    ) -> None:
        if expression is None:
            return
        holder = ast.Expr(value=expression)
        ast.copy_location(holder, expression)
        self._apply_events(holder, state)

    def _finalize(self, state: _PathState) -> None:
        for obligation in state.pending.values():
            if not obligation.remaining:
                continue
            key = obligation.key()
            if key in self._reported:
                continue
            self._reported.add(key)
            invariant = obligation.invariant
            if invariant.counter is not None:
                repair = f"bump {obligation.receiver}.{invariant.counter}"
            elif invariant.marks:
                candidates = sorted(
                    mark
                    for mark, flags in invariant.marks.items()
                    if obligation.remaining & flags
                )
                repair = (
                    f"call {obligation.receiver}."
                    + (candidates[0] if candidates else "<mark>")
                    + "()"
                )
            else:
                repair = "set the paired flag"
            flags_text = ", ".join(sorted(obligation.remaining))
            self.findings.append(
                Diagnostic(
                    path=self.function.module.path,
                    line=getattr(obligation.node, "lineno", 1),
                    column=getattr(obligation.node, "col_offset", 0) + 1,
                    rule_id="MEGH011",
                    severity=Severity.ERROR,
                    message=(
                        f"{invariant.class_name}.{obligation.field_name} "
                        "mutated without invalidating "
                        f"[{flags_text}] on every path to exit; {repair} "
                        "(declared field-to-flag table: "
                        "repro/analysis/flow/invariants.py)"
                    ),
                )
            )


def _walk_shallow(node: ast.AST) -> List[ast.AST]:
    """Walk one statement without descending into nested defs/lambdas
    or compound-statement bodies (those are walked path-sensitively)."""
    found: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    compound = (
        ast.If,
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.Try,
        ast.With,
        ast.AsyncWith,
    )
    while stack:
        current = stack.pop()
        found.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                ),
            ):
                continue
            if isinstance(current, compound) and isinstance(child, ast.stmt):
                continue
            stack.append(child)
    return found


def check_dirty_flags(project: Project) -> List[Diagnostic]:
    """Run MEGH011 over every analyzable body in the project."""
    closures = {
        invariant.class_name: _mark_closure(project, invariant)
        for invariant in MUTATION_INVARIANTS
    }
    counter_closures = {
        invariant.class_name: _counter_closure(project, invariant)
        for invariant in MUTATION_INVARIANTS
    }
    diagnostics: List[Diagnostic] = []
    for function in project.iter_functions():
        checker = _FunctionChecker(
            project, function, MUTATION_INVARIANTS, closures,
            counter_closures,
        )
        diagnostics.extend(checker.check())
    return diagnostics
