"""MEGH012 — dtype and broadcast discipline in the vectorized hot paths.

The vectorized simulator and LSTD cores are bit-equal to the reference
implementations only while every array keeps its canonical dtype
(float64 state, int64 ids/counts, bool masks) and every elementwise
combination pairs same-axis vectors (N per-VM with N, M per-PM with M).
The classic regressions are silent: an ``np.zeros(n, dtype=int)``
accumulator truncates, an ``int32`` index array overflows on large
fleets, a Python-scalar ``sum()`` over an ndarray reassociates the
reduction, and an N-vs-M broadcast either raises at runtime on unlucky
sizes or — worse — broadcasts "successfully" with wrong semantics when
N == M in a small test.

This pass runs a small abstract interpretation over each function body
in the declared hot packages, propagating :class:`ArrayType`
(dtype, axis) facts from the declared field/method tables
(:mod:`repro.analysis.flow.invariants`) through names, attributes,
``np.*`` constructors, and arithmetic.  Checks:

``A`` non-canonical dtype creation (``dtype=np.float32`` / ``int`` /
      ``np.int32`` in a hot module) — error.
``B`` elementwise arithmetic/comparison between a known N-axis and a
      known M-axis operand — error.
``C`` arithmetic mixing an int64 array with a float64 array (implicit
      upcast: legal but a bit-identity hazard in accumulation) —
      warning.
``D`` in-place (``+=`` etc. or ``out=``) float result into an int64
      target — error (silent truncation).
``E`` Python-level reduction (built-in ``sum``/``min``/``max``) over a
      known ndarray — warning (scalar loop: slow and reassociates).
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.invariants import (
    AXIS_SIZE_NAMES,
    ArrayType,
    FIELD_TYPES,
    METHOD_TYPES,
)
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name

__all__ = ["check_dtype_discipline", "HOT_PREFIXES"]

#: Packages whose arithmetic is bit-identity-critical.
HOT_PREFIXES = ("repro.core", "repro.cloudsim")

#: dtype spellings that are canonical in the hot paths.
_CANONICAL_DTYPES = frozenset(
    {"float64", "int64", "bool", "bool_", "numpy.float64", "numpy.int64"}
)

#: dtype spellings that are never acceptable in hot-path array creation.
_BAD_DTYPES = {
    "float32": "float32",
    "float16": "float16",
    "int32": "int32",
    "int16": "int16",
    "int8": "int8",
    "uint8": "uint8",
    "uint32": "uint32",
    "int": "platform int",
    "float": "python float (use float64 explicitly)",
}

#: numpy constructors whose first positional argument is a shape/size.
_ARRAY_FACTORIES = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "zeros_like", "ones_like",
     "empty_like", "full_like"}
)

_FLOAT_FACTORIES = frozenset({"zeros", "ones", "empty", "full"})

#: Python builtins that reduce an iterable with a scalar loop.
_PY_REDUCTIONS = frozenset({"sum", "min", "max"})

#: Elementwise binary ops tracked for axis/dtype mixing.
_ELEMENTWISE = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


class _FunctionDtypes:
    """Abstract dtype/axis interpretation over one function body."""

    def __init__(self, function: FunctionInfo) -> None:
        self.function = function
        self.findings: List[Diagnostic] = []
        self._reported: Set[Tuple[int, int, str]] = set()
        #: Local name -> inferred ArrayType.
        self.env: Dict[str, ArrayType] = {}

    # -- reporting -------------------------------------------------------
    def _report(
        self, node: ast.AST, message: str, severity: Severity
    ) -> None:
        # ``run`` walks every node, so an inner expression can be
        # re-evaluated as part of its parent; report each site once.
        key = (
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Diagnostic(
                path=self.function.module.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                rule_id="MEGH012",
                severity=severity,
                message=message,
            )
        )

    # -- abstract evaluation ---------------------------------------------
    def type_of(self, expression: ast.expr) -> Optional[ArrayType]:
        """Inferred (dtype, axis) of an expression, or None if unknown."""
        if isinstance(expression, ast.Name):
            return self.env.get(expression.id)
        if isinstance(expression, ast.Attribute):
            declared = FIELD_TYPES.get(expression.attr)
            if declared is not None:
                return declared
            return None
        if isinstance(expression, ast.Subscript):
            base = self.type_of(expression.value)
            if base is None:
                return None
            # Boolean/fancy indexing keeps dtype; axis becomes unknown
            # (a mask selects a subset), scalar index drops the array.
            index = expression.slice
            if isinstance(index, ast.Constant) or (
                isinstance(index, ast.UnaryOp)
                and isinstance(index.operand, ast.Constant)
            ):
                return None
            return ArrayType(base.dtype, "?")
        if isinstance(expression, ast.Call):
            return self._type_of_call(expression)
        if isinstance(expression, ast.BinOp) and isinstance(
            expression.op, _ELEMENTWISE
        ):
            left = self.type_of(expression.left)
            right = self.type_of(expression.right)
            self._check_binop(expression, left, right)
            return _combine(left, right, expression.op)
        if isinstance(expression, ast.UnaryOp):
            return self.type_of(expression.operand)
        if isinstance(expression, ast.Compare):
            operand_types = [self.type_of(expression.left)] + [
                self.type_of(comparator)
                for comparator in expression.comparators
            ]
            known = [operand for operand in operand_types if operand]
            axes = {operand.axis for operand in known if operand.axis != "?"}
            if len(axes) > 1:
                self._report(
                    expression,
                    "comparison between a per-VM (N) and a per-PM (M) "
                    "vector; align axes explicitly (index by host_of or "
                    "aggregate first)",
                    Severity.ERROR,
                )
            if known:
                axis = known[0].axis if len(axes) <= 1 and axes else "?"
                return ArrayType("bool", axis)
            return None
        if isinstance(expression, ast.IfExp):
            then_type = self.type_of(expression.body)
            return then_type if then_type is not None else self.type_of(
                expression.orelse
            )
        return None

    def _type_of_call(self, call: ast.Call) -> Optional[ArrayType]:
        name = dotted_name(call.func)
        method = (
            call.func.attr if isinstance(call.func, ast.Attribute) else None
        )
        if method in METHOD_TYPES:
            return METHOD_TYPES[method]
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if tail in _ARRAY_FACTORIES and _is_numpy_call(name):
            dtype = self._declared_dtype(call)
            self._check_creation_dtype(call, dtype)
            axis = self._axis_from_size(call)
            if dtype is None:
                dtype = "float64" if tail in _FLOAT_FACTORIES else "?"
            return ArrayType(_normalize_dtype(dtype), axis)
        if tail in {"asarray", "array", "ascontiguousarray"} and _is_numpy_call(
            name
        ):
            dtype = self._declared_dtype(call)
            self._check_creation_dtype(call, dtype)
            if dtype is not None:
                return ArrayType(_normalize_dtype(dtype), "?")
            if call.args:
                return self.type_of(call.args[0])
            return None
        if tail == "astype" and isinstance(call.func, ast.Attribute):
            base = self.type_of(call.func.value)
            dtype = (
                _dtype_text(call.args[0])
                if call.args
                else self._declared_dtype(call)
            )
            self._check_creation_dtype(call, dtype)
            if dtype is None:
                return None
            axis = base.axis if base is not None else "?"
            return ArrayType(_normalize_dtype(dtype), axis)
        if tail == "bincount" and _is_numpy_call(name):
            # Ascending-id bincount: result indexed by PM id in this
            # codebase; dtype follows the weights argument.
            for keyword in call.keywords:
                if keyword.arg == "weights":
                    weights = self.type_of(keyword.value)
                    dtype = weights.dtype if weights else "float64"
                    return ArrayType(dtype, "M")
            return ArrayType("int64", "M")
        if tail in {"where", "maximum", "minimum", "clip"} and _is_numpy_call(
            name
        ):
            operand_types = [self.type_of(argument) for argument in call.args]
            known = [operand for operand in operand_types if operand]
            axes = {operand.axis for operand in known if operand.axis != "?"}
            if len(axes) > 1:
                self._report(
                    call,
                    f"numpy.{tail} mixes a per-VM (N) and a per-PM (M) "
                    "operand; align axes explicitly",
                    Severity.ERROR,
                )
            if known:
                return known[-1]
            return None
        return None

    def _declared_dtype(self, call: ast.Call) -> Optional[str]:
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                return _dtype_text(keyword.value)
        return None

    def _axis_from_size(self, call: ast.Call) -> str:
        if not call.args:
            return "?"
        size = call.args[0]
        if isinstance(size, ast.Attribute):
            return AXIS_SIZE_NAMES.get(size.attr, "?")
        if isinstance(size, ast.Name):
            return AXIS_SIZE_NAMES.get(size.id, "?")
        if isinstance(size, ast.Call) and isinstance(size.func, ast.Name):
            if size.func.id == "len" and size.args:
                inner = self.type_of(size.args[0])
                if inner is not None:
                    return inner.axis
        return "?"

    # -- checks ----------------------------------------------------------
    def _check_creation_dtype(
        self, call: ast.Call, dtype: Optional[str]
    ) -> None:
        """Check A: non-canonical dtype in hot-path array creation."""
        if dtype is None:
            return
        normalized = dtype.rsplit(".", 1)[-1]
        if normalized in _BAD_DTYPES:
            self._report(
                call,
                f"array created with non-canonical dtype {dtype!r} "
                f"({_BAD_DTYPES[normalized]}) in a bit-identity-critical "
                "module; use float64/int64/bool",
                Severity.ERROR,
            )

    def _check_binop(
        self,
        node: ast.BinOp,
        left: Optional[ArrayType],
        right: Optional[ArrayType],
    ) -> None:
        if left is None or right is None:
            return
        # Check B: N-vs-M broadcast.
        if (
            left.axis != right.axis
            and left.axis in ("N", "M")
            and right.axis in ("N", "M")
        ):
            self._report(
                node,
                "elementwise op between a per-VM (N) and a per-PM (M) "
                "vector broadcasts incompatibly (or silently 'works' when "
                "N == M); gather via host_of or aggregate first",
                Severity.ERROR,
            )
            return
        # Check C: int64 array mixed with float64 array (implicit upcast).
        dtypes = {left.dtype, right.dtype}
        if dtypes == {"int64", "float64"} and not isinstance(
            node.op, (ast.Div, ast.Pow)
        ):
            self._report(
                node,
                "arithmetic mixes an int64 array with a float64 array; "
                "the implicit upcast is a bit-identity hazard — convert "
                "explicitly with .astype(np.float64)",
                Severity.WARNING,
            )

    def _check_store(
        self, node: ast.AST, target: ast.expr, value_type: Optional[ArrayType]
    ) -> None:
        """Check D: float result stored in-place into an int64 array."""
        if value_type is None or value_type.dtype != "float64":
            return
        target_type: Optional[ArrayType] = None
        if isinstance(target, ast.Subscript):
            target_type = self.type_of(target.value)
        elif isinstance(target, (ast.Name, ast.Attribute)):
            target_type = self.type_of(target)
            if isinstance(target, ast.Name) and not isinstance(
                node, ast.AugAssign
            ):
                return  # rebinding a name is fine; only += truncates
        if target_type is not None and target_type.dtype == "int64":
            self._report(
                node,
                "float64 value written in place into an int64 array "
                "silently truncates; cast explicitly or keep the store "
                "integral",
                Severity.ERROR,
            )

    def _check_reduction(self, call: ast.Call) -> None:
        """Check E: Python built-in reduction over a known ndarray."""
        if not isinstance(call.func, ast.Name):
            return
        if call.func.id not in _PY_REDUCTIONS or not call.args:
            return
        argument = call.args[0]
        if isinstance(argument, (ast.GeneratorExp, ast.ListComp)):
            # Reductions over comprehensions are scalar by intent.
            return
        operand = self.type_of(argument)
        if operand is not None:
            self._report(
                call,
                f"built-in {call.func.id}() over an ndarray runs a Python "
                "scalar loop and reassociates the reduction; use "
                f"numpy.{call.func.id} / ndarray.{call.func.id}()",
                Severity.WARNING,
            )

    # -- driver ----------------------------------------------------------
    def run(self) -> List[Diagnostic]:
        for statement in self.function.body():
            for node in ast.walk(statement):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs get their own FunctionInfo
                if isinstance(node, ast.Assign):
                    value_type = self.type_of(node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if value_type is not None:
                                self.env[target.id] = value_type
                            else:
                                self.env.pop(target.id, None)
                        else:
                            self._check_store(node, target, value_type)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value_type = self.type_of(node.value)
                    if isinstance(node.target, ast.Name):
                        if value_type is not None:
                            self.env[node.target.id] = value_type
                    else:
                        self._check_store(node, node.target, value_type)
                elif isinstance(node, ast.AugAssign):
                    value_type = self.type_of(node.value)
                    self._check_store(node, node.target, value_type)
                    left = self.type_of(_load_copy(node.target))
                    if left is not None and value_type is not None:
                        probe = ast.BinOp(
                            left=_load_copy(node.target),
                            op=node.op,
                            right=node.value,
                        )
                        ast.copy_location(probe, node)
                        if isinstance(node.op, _ELEMENTWISE):
                            self._check_binop(probe, left, value_type)
                elif isinstance(node, ast.Call):
                    self._check_reduction(node)
                    self.type_of(node)  # triggers creation/axis checks
                elif isinstance(node, (ast.BinOp, ast.Compare)):
                    self.type_of(node)
        return self.findings


def _load_copy(target: ast.expr) -> ast.expr:
    """A Load-context copy of a store target, for re-evaluation.

    Built by node copy, not ``ast.parse`` — the engine's parse-once
    contract (one ``ast.parse`` per file, asserted by the test suite)
    covers the flow pass too.
    """
    copied = copy.deepcopy(target)
    for node in ast.walk(copied):
        if isinstance(
            node,
            (
                ast.Name,
                ast.Attribute,
                ast.Subscript,
                ast.Starred,
                ast.Tuple,
                ast.List,
            ),
        ):
            node.ctx = ast.Load()
    return copied


def _combine(
    left: Optional[ArrayType],
    right: Optional[ArrayType],
    op: ast.operator,
) -> Optional[ArrayType]:
    if left is None and right is None:
        return None
    if left is None:
        return right
    if right is None:
        return left
    if isinstance(op, ast.Div):
        dtype = "float64"
    elif left.dtype == right.dtype:
        dtype = left.dtype
    elif {left.dtype, right.dtype} == {"int64", "float64"}:
        dtype = "float64"
    elif "bool" in (left.dtype, right.dtype):
        dtype = left.dtype if right.dtype == "bool" else right.dtype
    else:
        dtype = "?"
    if left.axis == right.axis:
        axis = left.axis
    elif left.axis == "?":
        axis = right.axis
    elif right.axis == "?":
        axis = left.axis
    else:
        axis = "?"
    return ArrayType(dtype, axis)


def _normalize_dtype(dtype: str) -> str:
    tail = dtype.rsplit(".", 1)[-1]
    if tail in ("bool_", "bool8"):
        return "bool"
    return tail


def _dtype_text(expression: ast.expr) -> Optional[str]:
    name = dotted_name(expression)
    if name is not None:
        return name
    if isinstance(expression, ast.Constant) and isinstance(
        expression.value, str
    ):
        return expression.value
    return None


def _is_numpy_call(dotted: str) -> bool:
    head = dotted.split(".", 1)[0]
    return head in ("np", "numpy")


def _in_hot_package(function: FunctionInfo, prefixes: Sequence[str]) -> bool:
    module = function.module.name
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def check_dtype_discipline(
    project: Project, prefixes: Sequence[str] = HOT_PREFIXES
) -> List[Diagnostic]:
    """Run MEGH012 over every function in the hot packages."""
    diagnostics: List[Diagnostic] = []
    for function in project.iter_functions():
        if not _in_hot_package(function, prefixes):
            continue
        diagnostics.extend(_FunctionDtypes(function).run())
    return diagnostics
