"""Declared invariant tables consumed by the flow rules.

These tables are the *specification* the analyzers check code against —
the contract prose of ``repro/cloudsim/soa.py`` ("mutations only flip a
dirty flag"), ``repro/core/sparse.py`` ("``mutations`` counts every
state change"), and ``repro/core/lstd.py`` ("every external write
reports the touched index") written down as data.  MEGH011 derives its
obligations from :data:`MUTATION_INVARIANTS`; MEGH012 reads the declared
dtypes/axes from :data:`FIELD_TYPES` and :data:`METHOD_TYPES`.

Keeping the tables here, rather than inferring them from the source,
is deliberate: if a refactor renames a field or adds an aggregate, the
table must be updated in the same PR, and the self-analysis test
(``tests/analysis/test_self_lint.py``) fails loudly until the
declaration and the code agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = [
    "MutationInvariant",
    "MUTATION_INVARIANTS",
    "ArrayType",
    "FIELD_TYPES",
    "METHOD_TYPES",
    "AXIS_SIZE_NAMES",
]


@dataclass(frozen=True)
class MutationInvariant:
    """Field→flag contract for one lazily-invalidated class.

    Attributes:
        class_name: The owning class (matched by name in fixtures too).
        fields: Array/container field -> set of invalidation *flags*
            that must be set on every path after a mutation.
        marks: Mark-method name -> the flags that calling it sets.
        flag_attrs: Flags that may also be satisfied by a direct
            ``receiver.<flag> = True`` assignment.
        counter: A monotone counter attribute; bumping it satisfies
            *every* field's obligation (SparseMatrix.mutations style).
        scope: ``"global"`` — the field names are distinctive enough to
            match on any receiver anywhere in the project (the
            DatacenterArrays vectors); ``"class"`` — only match inside
            methods of the declaring class (SparseMatrix internals use
            generic names like ``_data``).
        exempt_methods: Methods of the declaring class never analyzed
            (constructors initialize; flags start dirty by design).
    """

    class_name: str
    fields: Mapping[str, FrozenSet[str]]
    marks: Mapping[str, FrozenSet[str]]
    flag_attrs: FrozenSet[str] = frozenset()
    counter: Optional[str] = None
    scope: str = "global"
    exempt_methods: FrozenSet[str] = frozenset({"__init__"})


_ALL_PM_AGGREGATES = frozenset(
    {"_ram_dirty", "_demand_dirty", "_bw_dirty", "_delivered_dirty"}
)

#: ``DatacenterArrays``: every hot-state vector that feeds a lazily
#: rebuilt per-PM aggregate, paired with the dirty flag(s) guarding it.
#: ``pm_vm_count`` (exact integer, maintained incrementally),
#: ``pm_asleep``, and the per-PM capacity vectors (read fresh on every
#: derived-utilization call, never cached) carry no flag on purpose.
_DATACENTER_ARRAYS = MutationInvariant(
    class_name="DatacenterArrays",
    fields={
        "host_of": _ALL_PM_AGGREGATES,
        "vm_demand": frozenset({"_demand_dirty"}),
        "vm_delivered": frozenset({"_delivered_dirty"}),
        "vm_bw_demand": frozenset({"_bw_dirty"}),
        "vm_active": frozenset(
            {"_demand_dirty", "_bw_dirty", "_delivered_dirty"}
        ),
        "vm_mips": frozenset({"_demand_dirty", "_delivered_dirty"}),
        "vm_ram_mb": frozenset({"_ram_dirty"}),
        "vm_bandwidth_mbps": frozenset({"_bw_dirty"}),
    },
    marks={
        "mark_placement_dirty": _ALL_PM_AGGREGATES,
        "mark_demand_dirty": frozenset({"_demand_dirty"}),
        "mark_bw_dirty": frozenset({"_bw_dirty"}),
        "mark_delivered_dirty": frozenset({"_delivered_dirty"}),
        "mark_activity_dirty": frozenset(
            {"_demand_dirty", "_bw_dirty", "_delivered_dirty"}
        ),
    },
    flag_attrs=_ALL_PM_AGGREGATES,
    counter=None,
    scope="global",
)

#: ``SparseMatrix``: any write to the backing store must bump the
#: ``mutations`` counter so the dirty-row theta cache can detect
#: out-of-band writes.  Scope is "class": the field names are generic
#: and all mutation happens inside the class by design.
_SPARSE_MATRIX = MutationInvariant(
    class_name="SparseMatrix",
    fields={
        "_diag": frozenset({"mutations"}),
        "_rows": frozenset({"mutations"}),
        "_cols": frozenset({"mutations"}),
        "_nnz": frozenset({"mutations"}),
    },
    marks={},
    flag_attrs=frozenset(),
    counter="mutations",
    scope="class",
)

#: ``RewardVector``: every external write must report the touched index
#: through ``_on_external_write`` so dependent theta rows invalidate.
_REWARD_VECTOR = MutationInvariant(
    class_name="RewardVector",
    fields={
        "_data": frozenset({"_on_external_write"}),
        "_dense": frozenset({"_on_external_write"}),
    },
    marks={"_on_external_write": frozenset({"_on_external_write"})},
    flag_attrs=frozenset(),
    counter=None,
    scope="class",
)

#: ``PendingUpdates``: the deferred-kernel staging engine
#: (``repro/core/kern.py``).  Every change to the staged-update log or
#: the dirty-row tracking — enqueue, per-row flush, window retirement —
#: must bump its ``mutations`` counter so anything derived from a
#: staging snapshot can detect out-of-band changes, mirroring the
#: ``SparseMatrix.mutations`` discipline the replay writes through to.
#: The reusable marshaling buffers (``_one_row``,
#: ``_two_rows``, ...) and the profiling counters carry no obligation:
#: they are scratch, not staging state.  ``flush_all`` discharges
#: through ``_reset``/``_replay_batch`` — the rule's counter closure
#: admits helpers that unconditionally bump.
_PENDING_UPDATES = MutationInvariant(
    class_name="PendingUpdates",
    fields={
        "_n": frozenset({"mutations"}),
        "_pivots": frozenset({"mutations"}),
        "_scales": frozenset({"mutations"}),
        "_upd_offsets": frozenset({"mutations"}),
        "_cols_flat": frozenset({"mutations"}),
        "_vals_flat": frozenset({"mutations"}),
        "_pend_rows": frozenset({"mutations"}),
        "_pend_rows_n": frozenset({"mutations"}),
        "_dirty": frozenset({"mutations"}),
        "_dirty_count": frozenset({"mutations"}),
        "_row_start": frozenset({"mutations"}),
    },
    marks={},
    flag_attrs=frozenset(),
    counter="mutations",
    scope="class",
)

MUTATION_INVARIANTS: Tuple[MutationInvariant, ...] = (
    _DATACENTER_ARRAYS,
    _SPARSE_MATRIX,
    _REWARD_VECTOR,
    _PENDING_UPDATES,
)


# ----------------------------------------------------------------------
# Declared dtype/axis types for MEGH012
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayType:
    """Abstract ndarray type: element dtype plus fleet axis.

    ``axis`` is ``"N"`` (per-VM vector), ``"M"`` (per-PM vector), or
    ``"?"`` (unknown/neither).  MEGH012 only reports a broadcast
    mismatch when *both* operands carry a known, different axis.
    """

    dtype: str
    axis: str


#: Attribute name -> declared type, for the struct-of-arrays fields.
FIELD_TYPES: Dict[str, ArrayType] = {
    # DatacenterArrays per-VM state (axis N).
    "vm_mips": ArrayType("float64", "N"),
    "vm_ram_mb": ArrayType("float64", "N"),
    "vm_bandwidth_mbps": ArrayType("float64", "N"),
    "vm_demand": ArrayType("float64", "N"),
    "vm_delivered": ArrayType("float64", "N"),
    "vm_bw_demand": ArrayType("float64", "N"),
    "vm_active": ArrayType("bool", "N"),
    "host_of": ArrayType("int64", "N"),
    # DatacenterArrays per-PM state (axis M).
    "pm_mips": ArrayType("float64", "M"),
    "pm_ram_mb": ArrayType("float64", "M"),
    "pm_bandwidth_mbps": ArrayType("float64", "M"),
    "pm_asleep": ArrayType("bool", "M"),
    "pm_vm_count": ArrayType("int64", "M"),
    "_pm_ram_used": ArrayType("float64", "M"),
    "_pm_demand_mips": ArrayType("float64", "M"),
    "_pm_bw_mbps": ArrayType("float64", "M"),
    "_pm_delivered_mips": ArrayType("float64", "M"),
    "_pm_ram_free": ArrayType("float64", "M"),
    # CandidateIndex static per-PM budget vectors (repro/core/candidates.py).
    "_mips_budget": ArrayType("float64", "M"),
    "_mips_budget_full": ArrayType("float64", "M"),
    "_bw_budget": ArrayType("float64", "M"),
    "_bw_budget_full": ArrayType("float64", "M"),
}

#: Method name -> declared return type (DatacenterArrays queries).
METHOD_TYPES: Dict[str, ArrayType] = {
    "pm_ram_used_mb": ArrayType("float64", "M"),
    "pm_ram_free_mb": ArrayType("float64", "M"),
    "pm_demand_mips": ArrayType("float64", "M"),
    "pm_bw_demand_mbps": ArrayType("float64", "M"),
    "pm_delivered_mips": ArrayType("float64", "M"),
    "pm_demand_utilization": ArrayType("float64", "M"),
    "pm_delivered_utilization": ArrayType("float64", "M"),
    "pm_bw_demand_utilization": ArrayType("float64", "M"),
    "active_pm_mask": ArrayType("bool", "M"),
    "overloaded_pm_mask": ArrayType("bool", "M"),
    # Backfilled while writing the meghshape dimension table: these
    # return arrays but were undeclared (the pm_ram_free_mb pattern).
    "_sum_by_host": ArrayType("float64", "M"),
    "column_support": ArrayType("int64", "?"),
    "theta": ArrayType("float64", "?"),
}

#: Size-argument attribute names that reveal a new array's axis:
#: ``np.zeros(arrays.num_pms)`` is an M-vector, ``num_vms`` an N-vector.
AXIS_SIZE_NAMES: Dict[str, str] = {"num_vms": "N", "num_pms": "M"}
