"""Project model for meghflow: modules, symbols, and name resolution.

meghlint's per-file rules (MEGH001–009) see one ``ast.Module`` at a
time; the flow rules (MEGH010–012) are properties of *call graphs and
def-use chains* that span modules.  This module builds the shared
substrate: a :class:`Project` holding every parsed module exactly once
(the engine hands over the ASTs it already parsed — nothing is re-read
or re-parsed), a per-module import table, and a symbol table of
top-level functions, classes, and methods addressable by fully
qualified dotted name.

Resolution is deliberately conservative: a name that cannot be traced
to a project symbol or a recognized external (``numpy.random.*``,
``random.Random``) resolves to ``None`` and the flow rules stay silent
about it.  False silence is acceptable; false noise is not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Project",
    "module_name_for",
]

#: Module-body pseudo-function suffix (top-level statements).
MODULE_BODY = "<module>"


def module_name_for(path: Union[str, Path]) -> Optional[str]:
    """Dotted module name derived from the package layout on disk.

    Walks parent directories while they contain an ``__init__.py``, so
    ``src/repro/cloudsim/soa.py`` resolves to ``repro.cloudsim.soa``
    regardless of the current working directory, and a fixture package
    under ``tests/analysis/flow/fixtures/<case>/repro/...`` resolves to
    a ``repro.*`` name rooted at the fixture directory.
    """
    file_path = Path(path)
    if file_path.suffix != ".py":
        return None
    parts: List[str] = [] if file_path.stem == "__init__" else [file_path.stem]
    current = file_path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:
        return None
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One analyzable body: a function, method, or module top level."""

    qualname: str
    module: "ModuleInfo"
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def parameters(self) -> List[str]:
        """Positional + keyword parameter names, in declaration order."""
        if isinstance(self.node, ast.Module):
            return []
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names.extend(a.arg for a in args.args)
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    def body(self) -> List[ast.stmt]:
        if isinstance(self.node, ast.Module):
            # Module pseudo-function: top-level statements except defs,
            # which are analyzed as their own FunctionInfo bodies.
            return [
                statement
                for statement in self.node.body
                if not isinstance(
                    statement,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
        return list(self.node.body)


@dataclass
class ClassInfo:
    """A top-level class: its methods, bases, and ``__init__`` attrs."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class names exactly as written (resolved lazily).
    base_names: Tuple[str, ...] = ()
    #: ``self.<attr> = SomeClass(...)`` types seen in ``__init__``
    #: (attribute name -> fully qualified class name).
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module plus its local symbol and import tables."""

    name: str
    path: str
    tree: ast.Module
    #: Local alias -> fully qualified external/project name.
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_body: Optional[FunctionInfo] = None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_table(module_name: str, tree: ast.Module) -> Dict[str, str]:
    """Map every locally bound import alias to its qualified target."""
    table: Dict[str, str] = {}
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; dotted access resolves
                    # through the root package name.
                    root = alias.name.split(".", 1)[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the containing package.
                anchor_parts = module_name.split(".")
                # level=1 is "the containing package" for a plain module.
                anchor = anchor_parts[: len(anchor_parts) - node.level]
                if base:
                    anchor.append(base)
                base = ".".join(anchor)
            elif not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    del package
    return table


class Project:
    """Whole-program symbol table over a set of already-parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        #: Fully qualified name -> FunctionInfo (functions *and* methods).
        self.functions: Dict[str, FunctionInfo] = {}
        #: Fully qualified name -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        self._anonymous = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_module(
        self, path: Union[str, Path], tree: ast.Module
    ) -> ModuleInfo:
        path = str(path)
        name = module_name_for(path)
        if name is None or name in self.modules:
            if name in self.modules:
                # Two files mapping to one dotted name (e.g. fixtures
                # linted together); keep both analyzable under unique keys.
                name = f"{name}#{self._anonymous}"
            else:
                name = f"<anonymous:{self._anonymous}>"
            self._anonymous += 1
        module = ModuleInfo(name=name, path=path, tree=tree)
        module.imports = _import_table(name, tree)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{name}.{node.name}", module=module, node=node
                )
                module.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)
        module.module_body = FunctionInfo(
            qualname=f"{name}.{MODULE_BODY}", module=module, node=tree
        )
        self.functions[module.module_body.qualname] = module.module_body
        self.modules[name] = module
        self.by_path[path] = module
        return module

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = tuple(
            base_name
            for base_name in (dotted_name(base) for base in node.bases)
            if base_name is not None
        )
        info = ClassInfo(
            qualname=qualname, module=module, node=node, base_names=bases
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{qualname}.{item.name}",
                    module=module,
                    node=item,
                    class_name=node.name,
                )
                info.methods[item.name] = method
                self.functions[method.qualname] = method
        info.attr_types = self._init_attr_types(module, info)
        module.classes[node.name] = info
        self.classes[qualname] = info

    def _init_attr_types(
        self, module: ModuleInfo, info: ClassInfo
    ) -> Dict[str, str]:
        """``self.x = SomeClass(...)`` bindings visible in ``__init__``."""
        init = info.methods.get("__init__")
        types: Dict[str, str] = {}
        if init is None or isinstance(init.node, ast.Module):
            return types
        for statement in ast.walk(init.node):
            if not isinstance(statement, ast.Assign):
                continue
            value = statement.value
            if not isinstance(value, ast.Call):
                continue
            callee = dotted_name(value.func)
            if callee is None:
                continue
            resolved = self.resolve(module, callee)
            if resolved is None or resolved not in self.classes:
                continue
            for target in statement.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    types[target.attr] = resolved
        return types

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Fully qualified name for ``dotted`` as seen from ``module``.

        Follows local definitions first, then the import table, then
        project-absolute names; re-exports (``from .simulation import
        Simulation`` in a package ``__init__``) are chased through
        :meth:`lookup`.  Unresolvable names yield ``None``.
        """
        head, _, rest = dotted.partition(".")
        if head in module.classes:
            base = module.classes[head].qualname
        elif head in module.functions:
            base = module.functions[head].qualname
        elif head in module.imports:
            base = module.imports[head]
        elif head in self.modules:
            base = head
        else:
            return None
        return f"{base}.{rest}" if rest else base

    def lookup(
        self, qualified: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """Project symbol for a fully qualified name, chasing re-exports."""
        seen = _seen if _seen is not None else set()
        if qualified in seen:
            return None
        seen.add(qualified)
        if qualified in self.functions:
            return self.functions[qualified]
        if qualified in self.classes:
            return self.classes[qualified]
        if qualified in self.modules:
            return self.modules[qualified]
        # Method of a known class: Class.qualname + "." + method.
        owner, _, attr = qualified.rpartition(".")
        if not owner:
            return None
        owner_symbol = self.lookup(owner, seen)
        if isinstance(owner_symbol, ClassInfo):
            method = self.method_of(owner_symbol, attr)
            if method is not None:
                return method
            return None
        if isinstance(owner_symbol, ModuleInfo):
            if attr in owner_symbol.classes:
                return owner_symbol.classes[attr]
            if attr in owner_symbol.functions:
                return owner_symbol.functions[attr]
            if attr in owner_symbol.imports:
                return self.lookup(owner_symbol.imports[attr], seen)
        return None

    def canonical(self, qualified: str) -> str:
        """Canonical qualname after chasing re-exports (for prefix tests)."""
        symbol = self.lookup(qualified)
        if isinstance(symbol, (FunctionInfo, ClassInfo)):
            return symbol.qualname
        if isinstance(symbol, ModuleInfo):
            return symbol.name
        return qualified

    def method_of(self, info: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Method lookup with a depth-first walk of project-local bases."""
        if name in info.methods:
            return info.methods[name]
        for base_name in info.base_names:
            resolved = self.resolve(info.module, base_name)
            if resolved is None:
                continue
            base = self.lookup(resolved)
            if isinstance(base, ClassInfo) and base is not info:
                found = self.method_of(base, name)
                if found is not None:
                    return found
        return None

    def class_of_method(self, function: FunctionInfo) -> Optional[ClassInfo]:
        if function.class_name is None:
            return None
        return function.module.classes.get(function.class_name)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every analyzable body, in deterministic qualname order."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


def build_project(
    parsed: Sequence[Tuple[Union[str, Path], ast.Module]]
) -> Project:
    """Assemble a :class:`Project` from ``(path, tree)`` pairs."""
    project = Project()
    for path, tree in parsed:
        project.add_module(path, tree)
    return project
