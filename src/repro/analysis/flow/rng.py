"""MEGH010 — interprocedural RNG seed provenance.

MEGH001 flags the *call* ``np.random.default_rng()`` with no seed;
this pass flags the *value*: an RNG constructed without a seed anywhere
in the project that flows — through assignments, returns, call
arguments, attribute stores, or dataclass/constructor fields — into the
simulation packages (``repro.cloudsim``, ``repro.core``,
``repro.workloads`` by default).  An unseeded generator handed to
``Simulation.run`` through three helper functions is exactly as fatal
to reproducibility as one constructed inline, and no per-file rule can
see it.

The analysis is a forward taint propagation with function summaries:

1. every function is evaluated intraprocedurally, tracking which local
   names hold *unseeded-RNG-tainted* values ("unseeded" colors) and
   which hold values derived from the function's own parameters
   ("param" colors);
2. summaries (``returns_unseeded``, ``flowing_params``) are iterated to
   a fixed point over the whole project, so taint crosses call
   boundaries in both directions;
3. a finding is anchored at the *creation site* of the unseeded RNG,
   with the witness sink (the call or attribute store that enters a
   target package) named in the message — suppressions therefore
   annotate the construction, which is where the fix (plumbing a seed)
   belongs.

Objects constructed with a tainted argument become tainted themselves
(``Config(rng=unseeded)`` taints ``Config``), which is how dataclass
fields carry taint without field-sensitive tracking.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.callgraph import CallGraph, LocalTypes, resolve_call
from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    Project,
    dotted_name,
)

__all__ = ["check_rng_provenance", "TARGET_PREFIXES", "UNSEEDED_FACTORIES"]

#: Packages an unseeded RNG must never reach.
TARGET_PREFIXES: Tuple[str, ...] = (
    "repro.cloudsim",
    "repro.core",
    "repro.workloads",
)

#: RNG constructors that draw OS entropy when called with no arguments.
UNSEEDED_FACTORIES: Tuple[str, ...] = (
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
    "random.Random",
)

_MAX_FIXPOINT_ROUNDS = 12


@dataclass(eq=False)  # identity semantics: colors live in sets
class _Color:
    """One taint color: either an unseeded creation or a parameter."""

    kind: str  # "unseeded" | "param"
    origin: Optional[ast.Call] = None
    origin_path: str = ""
    param: str = ""
    reported: bool = False


@dataclass
class _Summary:
    returns_unseeded: bool = False
    #: Parameter name -> witness qualname inside a target package.
    flowing_params: Dict[str, str] = field(default_factory=dict)

    def key(self) -> Tuple[bool, Tuple[Tuple[str, str], ...]]:
        return (
            self.returns_unseeded,
            tuple(sorted(self.flowing_params.items())),
        )


def _in_targets(qualname: Optional[str], prefixes: Sequence[str]) -> bool:
    if qualname is None:
        return False
    return any(
        qualname == prefix or qualname.startswith(prefix + ".")
        for prefix in prefixes
    )


def _callee_parameters(
    project: Project, callee: str
) -> Optional[List[str]]:
    """Parameter names of a project callee, ``self``/``cls`` stripped."""
    symbol = project.lookup(callee)
    if isinstance(symbol, ClassInfo):
        init = project.method_of(symbol, "__init__")
        if init is None:
            return None
        return init.parameters()[1:]
    if isinstance(symbol, FunctionInfo):
        names = symbol.parameters()
        if symbol.class_name is not None and names[:1] in (["self"], ["cls"]):
            return names[1:]
        return names
    return None


class _FunctionTaint:
    """Single-function forward taint walk against current summaries."""

    def __init__(
        self,
        project: Project,
        graph: CallGraph,
        function: FunctionInfo,
        summaries: Dict[str, _Summary],
        prefixes: Sequence[str],
        colors: Dict[Tuple[str, int, int], _Color],
        emit: Optional[List[Diagnostic]],
    ) -> None:
        self.project = project
        self.graph = graph
        self.function = function
        self.summaries = summaries
        self.prefixes = prefixes
        self.colors = colors
        self.emit = emit
        self.local_types = LocalTypes(project, function)
        self.summary = summaries.setdefault(function.qualname, _Summary())
        self.tainted: Dict[str, Set[_Color]] = {}
        for name in function.parameters():
            if name in ("self", "cls"):
                continue
            self.tainted[name] = {_Color(kind="param", param=name)}
        self.in_target_module = _in_targets(
            function.module.name, prefixes
        )

    # -- expression taint ------------------------------------------------
    def _creation_color(self, call: ast.Call) -> Optional[_Color]:
        callee = resolve_call(
            self.project, self.function, call, self.local_types
        )
        if callee in UNSEEDED_FACTORIES and not call.args and not call.keywords:
            key = (
                self.function.module.path,
                call.lineno,
                call.col_offset,
            )
            color = self.colors.get(key)
            if color is None:
                color = _Color(
                    kind="unseeded",
                    origin=call,
                    origin_path=self.function.module.path,
                )
                self.colors[key] = color
            return color
        return None

    def eval(self, expression: Optional[ast.expr]) -> Set[_Color]:
        if expression is None:
            return set()
        if isinstance(expression, ast.Name):
            return set(self.tainted.get(expression.id, ()))
        if isinstance(expression, ast.Attribute):
            return self.eval(expression.value)
        if isinstance(expression, ast.Call):
            return self._eval_call(expression)
        if isinstance(expression, (ast.Tuple, ast.List, ast.Set)):
            colors: Set[_Color] = set()
            for element in expression.elts:
                colors |= self.eval(element)
            return colors
        if isinstance(expression, ast.IfExp):
            return self.eval(expression.body) | self.eval(expression.orelse)
        if isinstance(expression, ast.NamedExpr):
            colors = self.eval(expression.value)
            self.tainted[expression.target.id] = set(colors)
            return colors
        if isinstance(expression, ast.Starred):
            return self.eval(expression.value)
        return set()

    def _eval_call(self, call: ast.Call) -> Set[_Color]:
        created = self._creation_color(call)
        if created is not None:
            if self.in_target_module:
                self._report_creation_in_target(created)
            return {created}
        callee = resolve_call(
            self.project, self.function, call, self.local_types
        )
        result: Set[_Color] = set()
        if callee is not None:
            summary = self.summaries.get(callee)
            if summary is None and callee in self.project.classes:
                init = self.project.method_of(
                    self.project.classes[callee], "__init__"
                )
                if init is not None:
                    summary = self.summaries.get(init.qualname)
            if summary is not None and summary.returns_unseeded:
                key = (
                    self.function.module.path,
                    call.lineno,
                    call.col_offset,
                )
                color = self.colors.get(key)
                if color is None:
                    color = _Color(
                        kind="unseeded",
                        origin=call,
                        origin_path=self.function.module.path,
                    )
                    self.colors[key] = color
                result.add(color)
        # Constructed objects carry their tainted arguments (dataclass
        # fields, config objects); plain external calls do not.
        if callee is not None and callee in self.project.classes:
            for argument in list(call.args) + [
                keyword.value for keyword in call.keywords
            ]:
                result |= self.eval(argument)
        return result

    # -- sinks -----------------------------------------------------------
    def _report(self, color: _Color, witness: str, via: str) -> None:
        if color.kind == "param":
            self.summary.flowing_params.setdefault(color.param, witness)
            return
        if self.emit is None or color.reported or color.origin is None:
            return
        color.reported = True
        self.emit.append(
            Diagnostic(
                path=color.origin_path,
                line=color.origin.lineno,
                column=color.origin.col_offset + 1,
                rule_id="MEGH010",
                severity=Severity.ERROR,
                message=(
                    "RNG constructed without a seed here flows into "
                    f"{witness} ({via}); plumb a seed/rng parameter "
                    "through so the harness controls the stream"
                ),
            )
        )

    def _report_creation_in_target(self, color: _Color) -> None:
        self._report(
            color,
            self.function.qualname,
            "constructed directly inside a simulation package",
        )

    def _check_call_sinks(self, call: ast.Call) -> None:
        callee = resolve_call(
            self.project, self.function, call, self.local_types
        )
        if callee is None:
            return
        arguments: List[Tuple[Optional[str], ast.expr]] = [
            (None, argument) for argument in call.args
        ]
        arguments.extend(
            (keyword.arg, keyword.value) for keyword in call.keywords
        )
        tainted_args = [
            (position, name, self.eval(value))
            for position, (name, value) in enumerate(arguments)
        ]
        if not any(colors for _, _, colors in tainted_args):
            return
        if _in_targets(callee, self.prefixes):
            for _, _, colors in tainted_args:
                for color in colors:
                    self._report(color, callee, "passed as an argument")
            return
        parameters = _callee_parameters(self.project, callee)
        if parameters is None:
            return
        summary = self._summary_for(callee)
        if summary is None:
            return
        for position, name, colors in tainted_args:
            if not colors:
                continue
            parameter = name
            if parameter is None and position < len(parameters):
                parameter = parameters[position]
            if parameter is None:
                continue
            witness = summary.flowing_params.get(parameter)
            if witness is not None:
                for color in colors:
                    self._report(
                        color,
                        witness,
                        f"via {callee}({parameter}=...)",
                    )

    def _summary_for(self, callee: str) -> Optional[_Summary]:
        symbol = self.project.lookup(callee)
        if isinstance(symbol, ClassInfo):
            init = self.project.method_of(symbol, "__init__")
            if init is None:
                return None
            return self.summaries.get(init.qualname)
        if isinstance(symbol, FunctionInfo):
            return self.summaries.get(symbol.qualname)
        return None

    # -- statement walk --------------------------------------------------
    def run(self) -> None:
        body = self.function.body()
        # Two passes so taint assigned late in a loop body reaches uses
        # earlier in the next iteration.
        for _ in range(2):
            for statement in body:
                self._walk_statement(statement)

    def _walk_statement(self, statement: ast.stmt) -> None:
        for node in _walk_shallow(statement):
            if isinstance(node, ast.Call):
                self._check_call_sinks(node)
        if isinstance(statement, ast.Assign):
            colors = self.eval(statement.value)
            for target in statement.targets:
                self._assign(target, colors)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self._assign(statement.target, self.eval(statement.value))
        elif isinstance(statement, ast.AugAssign):
            colors = self.eval(statement.value)
            if colors and isinstance(statement.target, ast.Name):
                existing = self.tainted.setdefault(statement.target.id, set())
                existing |= colors
        elif isinstance(statement, ast.Return):
            for color in self.eval(statement.value):
                if color.kind == "unseeded":
                    self.summary.returns_unseeded = True
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self.eval(statement.iter)
            for child in statement.body + statement.orelse:
                self._walk_statement(child)
        elif isinstance(statement, ast.While):
            for child in statement.body + statement.orelse:
                self._walk_statement(child)
        elif isinstance(statement, ast.If):
            for child in statement.body + statement.orelse:
                self._walk_statement(child)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for child in statement.body:
                self._walk_statement(child)
        elif isinstance(statement, ast.Try):
            for child in (
                statement.body
                + [s for h in statement.handlers for s in h.body]
                + statement.orelse
                + statement.finalbody
            ):
                self._walk_statement(child)
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value)

    def _assign(self, target: ast.expr, colors: Set[_Color]) -> None:
        if isinstance(target, ast.Name):
            self.tainted[target.id] = set(colors)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, colors)
            return
        if isinstance(target, ast.Attribute) and colors:
            # Storing taint on an attribute of an object whose class
            # lives in a target package is itself a sink.
            receiver_class = self.local_types.class_of_expression(
                target.value
            )
            stored_in_target = (
                receiver_class is not None
                and _in_targets(receiver_class, self.prefixes)
            ) or (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.in_target_module
            )
            if stored_in_target:
                owner = receiver_class or self.function.qualname
                for color in colors:
                    self._report(
                        color,
                        owner,
                        f"stored on attribute {target.attr!r}",
                    )


def _walk_shallow(node: ast.AST) -> List[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/lambdas."""
    found: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        found.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)
    return found


def check_rng_provenance(
    project: Project,
    graph: CallGraph,
    prefixes: Sequence[str] = TARGET_PREFIXES,
) -> List[Diagnostic]:
    """Run the MEGH010 taint analysis over a whole project."""
    summaries: Dict[str, _Summary] = {}
    colors: Dict[Tuple[str, int, int], _Color] = {}
    # Fixed point on summaries, findings suppressed.
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        before = {
            qualname: summary.key()
            for qualname, summary in summaries.items()
        }
        for function in project.iter_functions():
            _FunctionTaint(
                project, graph, function, summaries, prefixes, colors, None
            ).run()
        after = {
            qualname: summary.key()
            for qualname, summary in summaries.items()
        }
        if before == after:
            break
    # Final reporting pass with stable summaries.
    diagnostics: List[Diagnostic] = []
    for color in colors.values():
        color.reported = False
    for function in project.iter_functions():
        _FunctionTaint(
            project,
            graph,
            function,
            summaries,
            prefixes,
            colors,
            diagnostics,
        ).run()
    return diagnostics
