"""meghpar — interprocedural determinism & process-safety analysis.

The execution engine (``repro.engine``) promises that ``jobs=4`` and
``jobs=1`` produce bit-identical results.  That promise is only as
strong as the code workers execute: a global write, an unordered
iteration, an unpicklable spec argument, an order-sensitive float
reduction, or a wall-clock read anywhere in the worker-reachable call
graph breaks it in ways the runtime differential tests catch late or
not at all.  meghpar proves the hazards absent statically, reusing
meghflow's project model and call graph (parse-once: the same ASTs and
the same graph instances feed MEGH010–012 and MEGH014–018).

``MEGH014``
    shared-state mutation: writes to module-level globals or class
    attributes from worker-executed code (per-process divergence).
``MEGH015``
    unordered-iteration determinism: set/``os.listdir``/``glob``/
    ``Path.iterdir`` order leaking into accumulations, merges, or
    serialized output without ``sorted(...)``.
``MEGH016``
    pickle-boundary safety: lambdas, locally defined functions/classes,
    open handles, live RNG/lock objects flowing into ``JobSpec`` params
    or across the pool pipe.
``MEGH017``
    float-reduction-order discipline: ``sum``/``np.sum`` over unordered
    iterables and ``+=`` accumulation over unordered sources in
    ``repro.core``/``repro.cloudsim`` (complements MEGH011/012).
``MEGH018``
    worker resource hygiene: wall-clock, ``os.urandom``, environment
    reads in worker-reachable code (MEGH002/010 across the process
    boundary).

The entry point is :func:`run_par`, invoked by the lint engine with the
modules it already parsed and — when the flow pass also ran — the very
project/graph instances meghflow used.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.project import Project, build_project
from repro.analysis.par.float_reduction import check_float_reduction
from repro.analysis.par.hygiene import check_hygiene
from repro.analysis.par.pickle_boundary import check_pickle_boundary
from repro.analysis.par.shared_state import check_shared_state
from repro.analysis.par.unordered import check_unordered
from repro.analysis.par.workers import (
    ENTRY_FUNCTIONS,
    REGISTRATION_FUNCTIONS,
    WorkerContext,
    build_worker_context,
)

__all__ = [
    "PAR_RULES",
    "run_par",
    "WorkerContext",
    "build_worker_context",
    "ENTRY_FUNCTIONS",
    "REGISTRATION_FUNCTIONS",
    "check_shared_state",
    "check_unordered",
    "check_pickle_boundary",
    "check_float_reduction",
    "check_hygiene",
]

#: rule id -> (default severity, one-line summary). Consulted by the
#: engine/CLI for ``--select``/``--ignore`` validation and
#: ``--list-rules`` output, exactly like ``FLOW_RULES``.
PAR_RULES: Dict[str, Tuple[Severity, str]] = {
    "MEGH014": (
        Severity.ERROR,
        "shared-state mutation (globals, module/class attributes) in "
        "worker-executed code — cross-process divergence",
    ),
    "MEGH015": (
        Severity.ERROR,
        "unordered iteration (set/listdir/glob/iterdir) flowing into "
        "accumulations, merges, or serialized output without sorted()",
    ),
    "MEGH016": (
        Severity.ERROR,
        "unpicklable or stateful value (lambda, local def, open handle, "
        "live RNG/lock) into JobSpec params or across the pool pipe",
    ),
    "MEGH017": (
        Severity.ERROR,
        "order-sensitive float reduction (sum over unordered iterable, "
        "+= over unordered source) in repro.core/repro.cloudsim",
    ),
    "MEGH018": (
        Severity.WARNING,
        "ambient resource read (wall-clock, os.urandom, environment) "
        "inside worker-reachable code",
    ),
}


def run_par(
    parsed: Sequence[Tuple[Union[str, Path], ast.Module]],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    project: Optional[Project] = None,
    graph: Optional[CallGraph] = None,
) -> List[Diagnostic]:
    """Run the enabled meghpar rules over already-parsed modules.

    Mirrors :func:`repro.analysis.flow.run_flow`: ``parsed`` pairs each
    path with the AST the engine produced for the per-file rules,
    ``select``/``ignore`` carry the engine's semantics, and
    ``project``/``graph`` let the engine hand over the instances
    meghflow already built so nothing is parsed or resolved twice.
    """
    enabled = set(PAR_RULES)
    if select is not None:
        enabled &= select
    if ignore is not None:
        enabled -= ignore
    if not enabled:
        return []
    if project is None:
        project = build_project(parsed)
    if graph is None:
        graph = build_call_graph(project)
    context = build_worker_context(project, graph)
    diagnostics: List[Diagnostic] = []
    if "MEGH014" in enabled:
        diagnostics.extend(check_shared_state(project, context))
    if "MEGH015" in enabled:
        diagnostics.extend(check_unordered(project, context))
    if "MEGH016" in enabled:
        diagnostics.extend(check_pickle_boundary(project))
    if "MEGH017" in enabled:
        diagnostics.extend(check_float_reduction(project))
    if "MEGH018" in enabled:
        diagnostics.extend(check_hygiene(project, context))
    return diagnostics
