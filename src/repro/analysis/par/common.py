"""Shared expression classifiers for the meghpar rules.

Three questions recur across MEGH015/017/018:

* does this expression produce an *unordered* iterable (a set, an
  ``os.listdir`` result, a ``Path.iterdir`` generator)?
* does this loop body *accumulate* (append/extend/``+=``/dict store/
  yield), i.e. does iteration order leak into a result?
* is this value consumed by an *order-neutral* reduction (``sorted``,
  ``set``, ``min``/``max``, ``len``) that launders the hazard away?

The classifiers are deliberately conservative, mirroring the project
model's contract: a value whose provenance cannot be traced stays
unclassified and the rules stay silent about it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name

__all__ = [
    "ORDER_NEUTRAL_CONSUMERS",
    "UNORDERED_CALLS",
    "UNORDERED_METHOD_ATTRS",
    "ACCUMULATOR_METHODS",
    "UnorderedSources",
    "parent_map",
    "loop_body_accumulates",
    "resolved_or_raw",
    "walk_shallow",
    "make_diagnostic",
]


def walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope: never descend into nested function/class bodies.

    The project model registers module bodies as ``<module>``
    pseudo-functions whose node is the whole ``ast.Module`` — a plain
    ``ast.walk`` over one of those revisits every function body and
    duplicates findings.  Nested def/class nodes are still *yielded*
    (rules may care about the binding) but their bodies belong to their
    own scope.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                yield child
                continue
            stack.append(child)

#: Builtins/calls whose result does not depend on argument order.
ORDER_NEUTRAL_CONSUMERS: Tuple[str, ...] = (
    "sorted",
    "set",
    "frozenset",
    "min",
    "max",
    "len",
    "any",
    "all",
)

#: Calls producing unordered (or OS-order) iterables, by resolved name.
UNORDERED_CALLS: Dict[str, str] = {
    "set": "set(...)",
    "frozenset": "frozenset(...)",
    "os.listdir": "os.listdir(...) (filesystem order)",
    "os.scandir": "os.scandir(...) (filesystem order)",
    "glob.glob": "glob.glob(...) (filesystem order)",
    "glob.iglob": "glob.iglob(...) (filesystem order)",
}

#: Method names whose call yields filesystem-ordered entries regardless
#: of the (usually untyped) receiver: ``Path.iterdir`` and friends.
UNORDERED_METHOD_ATTRS: Dict[str, str] = {
    "iterdir": ".iterdir() (filesystem order)",
    "rglob": ".rglob(...) (filesystem order)",
}

#: Mutating container methods that make a loop body an accumulation.
ACCUMULATOR_METHODS: Tuple[str, ...] = (
    "append",
    "appendleft",
    "add",
    "extend",
    "extendleft",
    "insert",
    "update",
    "setdefault",
)


def resolved_or_raw(
    project: Project, function: FunctionInfo, node: ast.expr
) -> Optional[str]:
    """Resolve a dotted callee through imports, else the raw spelling."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    resolved = project.resolve(function.module, dotted)
    return resolved if resolved is not None else dotted


class UnorderedSources:
    """Per-function tracker of names bound to unordered iterables."""

    def __init__(self, project: Project, function: FunctionInfo) -> None:
        self.project = project
        self.function = function
        #: Local name -> description of the unordered source it holds.
        self.names: Dict[str, str] = {}
        for node in walk_shallow(function.node):
            if isinstance(node, ast.Assign):
                description = self.classify(node.value, _names_ok=False)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if description is not None:
                            self.names[target.id] = description
                        else:
                            # A later ordered rebinding (x = sorted(x))
                            # clears the mark; without statement-order
                            # tracking, clearing on any ordered rebind
                            # is the conservative choice.
                            self.names.pop(target.id, None)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.value is not None:
                    description = self.classify(node.value, _names_ok=False)
                    if description is not None:
                        self.names[node.target.id] = description
                    else:
                        self.names.pop(node.target.id, None)

    def classify(
        self, expression: Optional[ast.expr], _names_ok: bool = True
    ) -> Optional[str]:
        """Description of the unordered source, or ``None`` if ordered."""
        if expression is None:
            return None
        if isinstance(expression, ast.Set):
            return "a set literal"
        if isinstance(expression, ast.SetComp):
            return "a set comprehension"
        if isinstance(expression, ast.Name) and _names_ok:
            return self.names.get(expression.id)
        if isinstance(expression, ast.Call):
            callee = resolved_or_raw(
                self.project, self.function, expression.func
            )
            if callee is not None and callee in UNORDERED_CALLS:
                return UNORDERED_CALLS[callee]
            if isinstance(expression.func, ast.Attribute):
                attr = expression.func.attr
                if attr in UNORDERED_METHOD_ATTRS:
                    return UNORDERED_METHOD_ATTRS[attr]
                # ``p.glob(...)`` is Path.glob unless the receiver is the
                # glob module itself (already handled by the dotted form).
                if attr == "glob":
                    return ".glob(...) (filesystem order)"
        return None


def parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    """``id(child) -> parent`` for every node under ``root``."""
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def is_order_neutral_consumer(
    project: Project,
    function: FunctionInfo,
    parents: Dict[int, ast.AST],
    node: ast.AST,
) -> bool:
    """True when ``node`` is a direct argument of ``sorted``/``set``/…"""
    parent = parents.get(id(node))
    if not isinstance(parent, ast.Call) or node not in parent.args:
        return False
    callee = resolved_or_raw(project, function, parent.func)
    return callee in ORDER_NEUTRAL_CONSUMERS


def loop_body_accumulates(body: List[ast.stmt]) -> Optional[ast.AST]:
    """First accumulation site in a loop body, or ``None``.

    Counter bumps by an integer literal (``count += 1``) are exempt:
    integer addition is order-insensitive, and flagging counters would
    bury the real findings in noise.
    """
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.AugAssign):
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, int
                ):
                    continue
                return node
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ACCUMULATOR_METHODS:
                    return node
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        return node
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
    return None


def make_diagnostic(
    function: FunctionInfo,
    node: ast.AST,
    rule_id: str,
    severity: Severity,
    message: str,
) -> Diagnostic:
    return Diagnostic(
        path=function.module.path,
        line=getattr(node, "lineno", 1),
        column=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        severity=severity,
        message=message,
    )
