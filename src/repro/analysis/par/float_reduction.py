"""MEGH017 — float reductions whose result depends on summation order.

IEEE-754 addition is not associative: ``sum`` over an unordered
iterable can produce different last-bit results across runs, machines,
and hash seeds.  The SoA simulator rebuild (PR 4) established the
"never incremental float ``+=``" invariant precisely because the
reference/vectorized differential tests kept tripping on it; this rule
makes the invariant static for the numeric core.

Scoped to ``repro.core`` and ``repro.cloudsim`` (minus the reference
implementation, which is the sanctioned scalar oracle — mirroring the
MEGH009 exemption), two shapes are reported:

* ``sum(...)``/``np.sum(...)``/``math.fsum(...)``-free reductions over
  an *unordered* iterable (set literals/comprehensions, ``os.listdir``,
  ``Path.iterdir``, names bound to them) — ``math.fsum`` itself is
  exempt, its compensated result is order-independent;
* ``+=`` accumulation inside a ``for`` loop over an unordered source
  (integer-literal counter bumps stay exempt; loops over lists,
  ranges, or arrays are deterministic in order and stay silent).

The fixes, in preference order: batch the reduction over an array
(``float(np.sum(array))``), use ``math.fsum``, or pin the order with
``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.par.common import (
    UnorderedSources,
    make_diagnostic,
    resolved_or_raw,
    walk_shallow,
)

__all__ = ["check_float_reduction"]

RULE_ID = "MEGH017"

#: Module-name prefixes holding the numeric core.
_SCOPE_PREFIXES: Tuple[str, ...] = ("repro.core", "repro.cloudsim")

#: Reductions whose float result depends on argument order.
_ORDER_SENSITIVE_REDUCTIONS: Tuple[str, ...] = (
    "sum",
    "np.sum",
    "numpy.sum",
)


def _in_scope(function: FunctionInfo) -> bool:
    if not function.module.name.startswith(_SCOPE_PREFIXES):
        return False
    # The scalar reference implementation is the oracle the vectorized
    # path is diffed against; it is exempt by design (MEGH009 precedent).
    return not str(function.module.path).endswith("repro/cloudsim/reference.py")


def _check_function(
    project: Project,
    function: FunctionInfo,
    diagnostics: List[Diagnostic],
) -> None:
    sources = UnorderedSources(project, function)
    for node in walk_shallow(function.node):
        if isinstance(node, ast.Call):
            callee = resolved_or_raw(project, function, node.func)
            if callee not in _ORDER_SENSITIVE_REDUCTIONS or not node.args:
                continue
            argument = node.args[0]
            description = sources.classify(argument)
            if description is None and isinstance(
                argument, ast.GeneratorExp
            ):
                for generator in argument.generators:
                    description = sources.classify(generator.iter)
                    if description is not None:
                        break
            if description is None:
                continue
            diagnostics.append(
                make_diagnostic(
                    function,
                    node,
                    RULE_ID,
                    Severity.ERROR,
                    f"{callee}(...) over {description} — float addition "
                    "is not associative, so the result depends on an "
                    "arbitrary iteration order; reduce over an array "
                    "(float(np.sum(...))), use math.fsum, or sort the "
                    "iterable first",
                )
            )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            description = sources.classify(node.iter)
            if description is None:
                continue
            for statement in node.body:
                for inner in ast.walk(statement):
                    if not isinstance(inner, ast.AugAssign):
                        continue
                    if not isinstance(inner.op, ast.Add):
                        continue
                    if isinstance(inner.value, ast.Constant) and isinstance(
                        inner.value.value, int
                    ):
                        continue
                    diagnostics.append(
                        make_diagnostic(
                            function,
                            inner,
                            RULE_ID,
                            Severity.ERROR,
                            f"incremental += accumulation over "
                            f"{description} — float addition order is "
                            "unpinned, so results can differ across "
                            "runs and machines; batch the reduction or "
                            "iterate a sorted sequence",
                        )
                    )


def check_float_reduction(project: Project) -> List[Diagnostic]:
    """Run MEGH017 over the numeric core (``repro.core``/``cloudsim``)."""
    diagnostics: List[Diagnostic] = []
    for function in project.iter_functions():
        if _in_scope(function):
            _check_function(project, function, diagnostics)
    return diagnostics
