"""MEGH018 — ambient-resource reads inside worker-executed code.

A worker that reads the wall clock, the OS entropy pool, or the
environment injects per-process, per-run state into a job whose cache
key claims the computation is fully described by its spec.  MEGH002
(wall-clock) and MEGH010 (RNG provenance) already police single-process
code; this rule extends the discipline across the process boundary,
where the damage is worse: under spawn each worker re-imports modules
and re-reads the environment independently, so even "constant" ambient
reads can disagree between workers.

Reported, for worker-reachable functions only (WARNING — ambient reads
are sometimes legitimate, e.g. an audit toggle, and the baseline with a
written reason is the sanctioned escape hatch):

* wall-clock calls — ``time.time``/``time_ns``/``localtime``/
  ``strftime``, ``datetime.now``/``utcnow``/``today``
  (``time.perf_counter``/``monotonic`` stay exempt: durations are
  sanctioned for *measuring*, they never feed simulated state);
* entropy — ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets.*``;
* environment — ``os.getenv``, ``os.environ.get``,
  ``os.environ[...]`` reads;
* reads of module-level names that were *initialized from* one of the
  above at import time (the resource leaks in via a constant).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name
from repro.analysis.par.common import make_diagnostic, resolved_or_raw
from repro.analysis.par.workers import WorkerContext, function_local_names

__all__ = ["check_hygiene"]

RULE_ID = "MEGH018"

#: Resolved (or raw-spelled) callees that read ambient state.
_HAZARD_CALLS: Dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.localtime": "wall-clock read",
    "time.gmtime": "wall-clock read",
    "time.ctime": "wall-clock read",
    "time.strftime": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "os.urandom": "OS entropy read",
    "uuid.uuid1": "OS entropy read",
    "uuid.uuid4": "OS entropy read",
    "os.getenv": "environment read",
    "os.environ.get": "environment read",
}

_SECRETS_PREFIX = "secrets."


def _call_hazard(
    project: Project, function: FunctionInfo, call: ast.Call
) -> Optional[Tuple[str, str]]:
    """(spelled callee, hazard kind) when the call reads ambient state."""
    callee = resolved_or_raw(project, function, call.func)
    if callee is None:
        return None
    kind = _HAZARD_CALLS.get(callee)
    if kind is not None:
        return callee, kind
    if callee.startswith(_SECRETS_PREFIX) or callee == "secrets":
        return callee, "OS entropy read"
    return None


def _module_ambient_constants(function: FunctionInfo) -> Dict[str, str]:
    """Module-level names initialized from an ambient read."""
    ambient: Dict[str, str] = {}
    for statement in function.module.tree.body:
        targets: List[ast.expr]
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
            value: Optional[ast.expr] = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        dotted = dotted_name(value.func)
        if dotted is None:
            continue
        kind = _HAZARD_CALLS.get(dotted)
        if kind is None and dotted.startswith(_SECRETS_PREFIX):
            kind = "OS entropy read"
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                ambient[target.id] = f"{kind} via {dotted}(...)"
    return ambient


def _is_environ_subscript(node: ast.Subscript) -> bool:
    dotted = dotted_name(node.value)
    return dotted == "os.environ"


def _check_function(
    project: Project,
    context: WorkerContext,
    function: FunctionInfo,
    diagnostics: List[Diagnostic],
) -> None:
    witness = context.witness(function.qualname)
    ambient_constants = _module_ambient_constants(function)
    locals_: Set[str] = (
        function_local_names(function) if ambient_constants else set()
    )
    for node in ast.walk(function.node):
        if isinstance(node, ast.Call):
            hazard = _call_hazard(project, function, node)
            if hazard is not None:
                callee, kind = hazard
                diagnostics.append(
                    make_diagnostic(
                        function,
                        node,
                        RULE_ID,
                        Severity.WARNING,
                        f"{kind} ({callee}(...)) in worker-executed code "
                        f"({witness}) — ambient state differs per process "
                        "and per run, while the job's cache key claims "
                        "the spec describes the computation; derive the "
                        "value from the spec or read it in the parent "
                        "and pass it through",
                    )
                )
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load) and _is_environ_subscript(node):
                diagnostics.append(
                    make_diagnostic(
                        function,
                        node,
                        RULE_ID,
                        Severity.WARNING,
                        f"environment read (os.environ[...]) in "
                        f"worker-executed code ({witness}) — worker "
                        "environments are inherited at spawn time and "
                        "invisible to the job's cache key; pass the "
                        "value through the spec instead",
                    )
                )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in ambient_constants and node.id not in locals_:
                diagnostics.append(
                    make_diagnostic(
                        function,
                        node,
                        RULE_ID,
                        Severity.WARNING,
                        f"read of module-level {node.id!r}, initialized "
                        f"at import time from a "
                        f"{ambient_constants[node.id]}, in "
                        f"worker-executed code ({witness}) — each spawn "
                        "worker re-imports and re-reads, so the value "
                        "can differ across processes",
                    )
                )


def check_hygiene(
    project: Project, context: WorkerContext
) -> List[Diagnostic]:
    """Run MEGH018 over every worker-reachable function."""
    diagnostics: List[Diagnostic] = []
    for function in context.iter_reachable_functions():
        _check_function(project, context, function, diagnostics)
    return diagnostics
