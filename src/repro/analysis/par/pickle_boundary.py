"""MEGH016 — unpicklable or stateful values at the process boundary.

Everything that crosses the pool pipe — a ``JobSpec``, its frozen
params, a result payload — is pickled by the spawn machinery.  Two
failure classes hide there:

* **hard failures**: lambdas, functions/classes defined inside a
  function body, and open file handles do not pickle at all, and the
  error surfaces in the worker, far from the submission site;
* **soft failures**: a live RNG or lock object *does* pickle (or
  appears to), but shipping one smuggles submission-time state into a
  job, breaking the engine's contract that a job rebuilds its entire
  world from its seed — the cache key would no longer describe the
  computation.

The rule is sink-based and runs over the whole project: any call whose
resolved callee is a spec constructor (``JobSpec``, ``freeze_params``,
``BuilderSpec.create``, ``SchedulerSpec.create``) or a ``.send(...)``
inside ``repro.engine`` is a boundary; every argument (recursing
through dict/list/tuple literals) is classified against the hazard
table.  Plain data — strings, numbers, tuples of them — passes
untouched.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.par.common import (
    make_diagnostic,
    resolved_or_raw,
    walk_shallow,
)

__all__ = ["check_pickle_boundary"]

RULE_ID = "MEGH016"

#: Resolved callees that place their arguments on the process boundary.
_SINK_CALLEES: Tuple[str, ...] = (
    "repro.engine.jobs.JobSpec",
    "repro.engine.jobs.freeze_params",
    "repro.engine.registry.BuilderSpec.create",
    "repro.engine.registry.SchedulerSpec.create",
)

#: Callee tails that build live RNG state.
_RNG_FACTORIES: Set[str] = {
    "default_rng",
    "Random",
    "RandomState",
    "Generator",
    "PCG64",
    "Philox",
}

#: Callee tails that build synchronization primitives.
_LOCK_FACTORIES: Set[str] = {
    "Lock",
    "RLock",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
    "Event",
    "Barrier",
}


def _local_definitions(function: FunctionInfo) -> Set[str]:
    """Names of functions/classes defined inside ``function``'s body.

    Module bodies get an empty set: a module-level function pickles by
    reference, so passing one across the boundary is fine.
    """
    names: Set[str] = set()
    if isinstance(function.node, ast.Module):
        return names
    for node in ast.walk(function.node):
        if node is function.node:
            continue
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
    return names


def _call_hazard(
    project: Project, function: FunctionInfo, call: ast.Call
) -> Optional[str]:
    callee = resolved_or_raw(project, function, call.func)
    if callee is None:
        return None
    if callee == "open":
        return "an open file handle"
    if project.canonical(callee) in project.classes:
        # A project class that merely shares a tail name (``Event``,
        # ``Generator``) is ordinary picklable data, not a primitive.
        return None
    tail = callee.rsplit(".", 1)[-1]
    if tail in _RNG_FACTORIES:
        return f"a live RNG object ({callee}(...))"
    if tail in _LOCK_FACTORIES:
        return f"a live synchronization primitive ({callee}(...))"
    return None


class _HazardClassifier:
    """Classify expressions that must not cross the process boundary."""

    def __init__(self, project: Project, function: FunctionInfo) -> None:
        self.project = project
        self.function = function
        self.local_defs = _local_definitions(function)
        #: Local name -> hazard description it was bound to.
        self.bound: Dict[str, str] = {}
        for node in walk_shallow(function.node):
            if not isinstance(node, ast.Assign):
                continue
            description = self.classify(node.value, _names_ok=False)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if description is not None:
                        self.bound[target.id] = description
                    else:
                        self.bound.pop(target.id, None)

    def classify(
        self, expression: ast.expr, _names_ok: bool = True
    ) -> Optional[str]:
        if isinstance(expression, ast.Lambda):
            return "a lambda"
        if isinstance(expression, ast.Name):
            if expression.id in self.local_defs:
                return (
                    f"locally defined {expression.id!r} "
                    "(defined inside a function body)"
                )
            if _names_ok:
                return self.bound.get(expression.id)
            return None
        if isinstance(expression, ast.Call):
            return _call_hazard(self.project, self.function, expression)
        if isinstance(expression, (ast.List, ast.Tuple, ast.Set)):
            for element in expression.elts:
                description = self.classify(element, _names_ok)
                if description is not None:
                    return description
            return None
        if isinstance(expression, ast.Dict):
            for value in list(expression.keys) + list(expression.values):
                if value is None:
                    continue
                description = self.classify(value, _names_ok)
                if description is not None:
                    return description
            return None
        return None


def _sink_label(
    project: Project, function: FunctionInfo, call: ast.Call
) -> Optional[str]:
    callee = resolved_or_raw(project, function, call.func)
    if callee is not None:
        canonical = project.canonical(callee)
        if canonical in _SINK_CALLEES:
            return canonical
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "send"
        and function.module.name.startswith("repro.engine")
    ):
        return "Connection.send"
    return None


def _check_function(
    project: Project,
    function: FunctionInfo,
    diagnostics: List[Diagnostic],
) -> None:
    classifier = _HazardClassifier(project, function)
    for node in walk_shallow(function.node):
        if not isinstance(node, ast.Call):
            continue
        sink = _sink_label(project, function, node)
        if sink is None:
            continue
        arguments = list(node.args) + [
            keyword.value for keyword in node.keywords
        ]
        for argument in arguments:
            description = classifier.classify(argument)
            if description is None:
                continue
            diagnostics.append(
                make_diagnostic(
                    function,
                    argument,
                    RULE_ID,
                    Severity.ERROR,
                    f"{description} flows into {sink}(...) — values "
                    "crossing the pool pipe are pickled by spawn, and "
                    "the job contract requires rebuilding all state "
                    "from the seed; pass plain data (names, seeds, "
                    "paths) instead",
                )
            )


def check_pickle_boundary(project: Project) -> List[Diagnostic]:
    """Run MEGH016 over every project function (sink-based)."""
    diagnostics: List[Diagnostic] = []
    for function in project.iter_functions():
        _check_function(project, function, diagnostics)
    return diagnostics
