"""MEGH014 — shared-state mutation in worker-reachable code.

A module-level global or a class attribute written by worker-executed
code is a cross-process divergence hazard twice over: each spawn worker
mutates its *own* copy (so the write silently fails to share), and any
code that later reads the "shared" value gets a per-process answer that
depends on which jobs that worker happened to run.  The engine's
contract — a job rebuilds its whole world from its seed — forbids the
pattern outright.

Three write shapes are reported, all scoped to the worker-reachable
set computed by :mod:`repro.analysis.par.workers`:

* ``global name`` declared and assigned inside a reachable function;
* an attribute store on a resolved project *module* or *class*
  (``registry.CACHE = ...``, ``SomeClass.counter = ...``, including
  ``cls.attr = ...`` inside methods) — instance attribute writes
  (``self.attr``) stay exempt, per-process object state is fine;
* a mutation of a module-level binding: subscript stores
  (``_CACHE[key] = value``) and mutating container-method calls
  (``_SEEN.add(...)``) on names bound at module top level and not
  shadowed locally.

Import-time initialization (module bodies) is exempt by construction:
spawn workers re-import every module, so module-body writes happen
identically in every process before any job runs.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name
from repro.analysis.par.common import ACCUMULATOR_METHODS, make_diagnostic
from repro.analysis.par.workers import (
    WorkerContext,
    function_local_names,
    module_level_bindings,
)

__all__ = ["check_shared_state"]

RULE_ID = "MEGH014"

#: Container methods that mutate their receiver in place.
_MUTATORS: Set[str] = set(ACCUMULATOR_METHODS) | {
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
}


def _owner_symbol(
    project: Project, function: FunctionInfo, target: ast.Attribute
) -> Optional[str]:
    """Project module/class a stored-into attribute owner resolves to."""
    owner = dotted_name(target.value)
    if owner is None or owner in ("self",):
        return None
    if owner == "cls" and function.class_name is not None:
        info = project.class_of_method(function)
        return info.qualname if info is not None else None
    resolved = project.resolve(function.module, owner)
    if resolved is None:
        return None
    canonical = project.canonical(resolved)
    if canonical in project.modules or canonical in project.classes:
        return canonical
    return None


def _check_function(
    project: Project,
    context: WorkerContext,
    function: FunctionInfo,
    diagnostics: List[Diagnostic],
) -> None:
    locals_ = function_local_names(function)
    module_names = module_level_bindings(function)
    global_names: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Global):
            global_names.update(node.names)
    witness = context.witness(function.qualname)
    reported_globals: Set[str] = set()

    def _module_binding(name_node: ast.expr) -> Optional[str]:
        if not isinstance(name_node, ast.Name):
            return None
        name = name_node.id
        if name in locals_ or name not in module_names:
            return None
        return name

    for node in ast.walk(function.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in global_names
                    and target.id not in reported_globals
                ):
                    reported_globals.add(target.id)
                    diagnostics.append(
                        make_diagnostic(
                            function,
                            node,
                            RULE_ID,
                            Severity.ERROR,
                            f"assignment to global {target.id!r} in "
                            f"worker-executed code ({witness}) — each spawn "
                            "worker mutates its own copy, so runs diverge by "
                            "job placement; pass the value through the job "
                            "spec or return it in the result instead",
                        )
                    )
                elif isinstance(target, ast.Attribute):
                    owner = _owner_symbol(project, function, target)
                    if owner is not None:
                        diagnostics.append(
                            make_diagnostic(
                                function,
                                node,
                                RULE_ID,
                                Severity.ERROR,
                                f"write to {owner}.{target.attr} in "
                                f"worker-executed code ({witness}) — "
                                "module/class attributes are per-process "
                                "under spawn, so the write is invisible to "
                                "the parent and to sibling workers; keep "
                                "state on the job's own objects",
                            )
                        )
                elif isinstance(target, ast.Subscript):
                    name = _module_binding(target.value)
                    if name is not None:
                        diagnostics.append(
                            make_diagnostic(
                                function,
                                node,
                                RULE_ID,
                                Severity.ERROR,
                                f"store into module-level {name!r} in "
                                f"worker-executed code ({witness}) — "
                                "per-process caches diverge by job "
                                "placement; use the engine's ResultCache "
                                "or rebuild from the seed",
                            )
                        )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr not in _MUTATORS:
                continue
            name = _module_binding(node.func.value)
            if name is not None:
                diagnostics.append(
                    make_diagnostic(
                        function,
                        node,
                        RULE_ID,
                        Severity.ERROR,
                        f"mutating call {name}.{node.func.attr}(...) on a "
                        f"module-level binding in worker-executed code "
                        f"({witness}) — shared-looking state is per-process "
                        "under spawn; keep mutation on job-local objects",
                    )
                )


def check_shared_state(
    project: Project, context: WorkerContext
) -> List[Diagnostic]:
    """Run MEGH014 over every worker-reachable function."""
    diagnostics: List[Diagnostic] = []
    for function in context.iter_reachable_functions():
        _check_function(project, context, function, diagnostics)
    return diagnostics
