"""MEGH015 — unordered iteration flowing into ordered results.

Iterating a set, ``os.listdir``, ``glob``, or ``Path.iterdir`` is fine
when the consumer is order-neutral (``sorted``, ``set``, ``min``,
``len``).  It stops being fine the moment iteration order leaks into an
accumulation, a merge, or serialized output: set order varies with hash
randomization and insertion history, and filesystem order varies by
machine — either one silently breaks jobs=1 vs jobs=N bit-identity.

Reported shapes, scoped to worker-reachable functions plus everything
under ``repro.engine`` (the parent-side merge path must be just as
deterministic as the workers feeding it):

* ``for x in <unordered>`` whose body accumulates (append/extend/
  ``+=``/dict store/yield);
* a list/dict/generator comprehension over an unordered iterable,
  unless it is consumed directly by an order-neutral reduction;
* an unordered iterable passed directly to an order-preserving
  constructor or serializer (``list``, ``tuple``, ``"".join``,
  ``json.dump``/``dumps``).

The fix is always the same and always cheap: wrap the source in
``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.par.common import (
    UnorderedSources,
    is_order_neutral_consumer,
    loop_body_accumulates,
    make_diagnostic,
    parent_map,
    resolved_or_raw,
    walk_shallow,
)
from repro.analysis.par.workers import WorkerContext

__all__ = ["check_unordered"]

RULE_ID = "MEGH015"

#: Callees that freeze their argument's iteration order into a result.
_ORDER_SENSITIVE_CALLS: Tuple[str, ...] = (
    "list",
    "tuple",
    "json.dump",
    "json.dumps",
)


def _scope(project: Project, context: WorkerContext) -> List[FunctionInfo]:
    """Worker-reachable functions plus all of ``repro.engine``."""
    chosen: Dict[str, FunctionInfo] = {}
    for function in context.iter_reachable_functions():
        chosen[function.qualname] = function
    for function in project.iter_functions():
        if function.module.name.startswith("repro.engine"):
            chosen[function.qualname] = function
    return [chosen[qualname] for qualname in sorted(chosen)]


def _check_function(
    project: Project,
    context: WorkerContext,
    function: FunctionInfo,
    diagnostics: List[Diagnostic],
) -> None:
    sources = UnorderedSources(project, function)
    parents = parent_map(function.node)
    where = (
        f" ({context.witness(function.qualname)})"
        if context.is_reachable(function.qualname)
        else ""
    )

    def _report(node: ast.AST, description: str, consequence: str) -> None:
        diagnostics.append(
            make_diagnostic(
                function,
                node,
                RULE_ID,
                Severity.ERROR,
                f"iteration over {description} {consequence}{where} — "
                "wrap the source in sorted(...) to pin the order",
            )
        )

    for node in walk_shallow(function.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            description = sources.classify(node.iter)
            if description is None:
                continue
            accumulation = loop_body_accumulates(node.body)
            if accumulation is not None:
                _report(
                    node,
                    description,
                    "accumulates into an ordered result",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            description = _comprehension_source(sources, node)
            if description is None:
                continue
            if is_order_neutral_consumer(project, function, parents, node):
                continue
            _report(
                node,
                description,
                "builds an order-dependent comprehension",
            )
        elif isinstance(node, ast.Call):
            callee = resolved_or_raw(project, function, node.func)
            is_join = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            )
            if callee not in _ORDER_SENSITIVE_CALLS and not is_join:
                continue
            for argument in node.args:
                description = sources.classify(argument)
                if description is None:
                    continue
                label = (
                    ".join(...)"
                    if is_join
                    else f"{callee}(...)"
                )
                _report(
                    argument,
                    description,
                    f"feeds {label}, freezing an arbitrary order",
                )


def _comprehension_source(
    sources: UnorderedSources,
    node: ast.AST,
) -> Optional[str]:
    generators = getattr(node, "generators", [])
    for generator in generators:
        description = sources.classify(generator.iter)
        if description is not None:
            return description
    return None


def check_unordered(
    project: Project, context: WorkerContext
) -> List[Diagnostic]:
    """Run MEGH015 over worker-reachable and engine-side functions."""
    diagnostics: List[Diagnostic] = []
    for function in _scope(project, context):
        _check_function(project, context, function, diagnostics)
    return diagnostics
