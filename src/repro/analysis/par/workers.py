"""Worker entry points and the worker-reachable call graph for meghpar.

The execution engine's process boundary (``repro.engine.pool``) is the
line across which nondeterminism stops being a local bug and becomes a
cross-process divergence: two workers disagreeing about a global, an
iteration order, or a wall-clock read produce results the deterministic
submission-order merge cannot reconcile.  Everything the MEGH014–018
rules certify is therefore scoped to the code a *worker* can execute.

That set is computed here, structurally, from the project call graph:

* **entry points** — the worker loop (``repro.engine.pool._worker_main``)
  and the single shared execution path (``repro.engine.registry
  .execute_spec``), plus the spec-carrying callables
  (``BuilderSpec.__call__`` / ``SchedulerSpec.__call__``) that workers
  invoke after unpickling;
* **registered callables** — every project function handed to
  ``register_builder`` / ``register_scheduler`` anywhere in the project.
  Registry dispatch (``resolve_builder(name)(...)``) is a dynamic call
  the static graph cannot follow, so registration *is* the edge: a
  registered builder runs in whatever process executes the job.

From those roots a deterministic breadth-first walk over the call graph
yields, for every reachable function, the shortest witness chain back to
a root — the rules embed the root in their messages so a finding reads
as "this runs in workers because ...", not just "this line is bad".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name

__all__ = [
    "ENTRY_FUNCTIONS",
    "REGISTRATION_FUNCTIONS",
    "WorkerContext",
    "build_worker_context",
]

#: Qualified names that are worker entry points wherever they exist.
ENTRY_FUNCTIONS: Tuple[str, ...] = (
    "repro.engine.pool._worker_main",
    "repro.engine.registry.execute_spec",
    "repro.engine.registry.BuilderSpec.__call__",
    "repro.engine.registry.SchedulerSpec.__call__",
)

#: Calls whose function-valued argument becomes worker-executable.
REGISTRATION_FUNCTIONS: Tuple[str, ...] = (
    "repro.engine.registry.register_builder",
    "repro.engine.registry.register_scheduler",
)


@dataclass
class WorkerContext:
    """Worker-reachable functions plus their witness chains."""

    project: Project
    graph: CallGraph
    #: Root qualname -> why it is a root (entry point / registration).
    roots: Dict[str, str] = field(default_factory=dict)
    #: Reachable qualname -> root qualname it was first reached from.
    reachable: Dict[str, str] = field(default_factory=dict)
    #: Reachable qualname -> direct caller on the shortest witness chain
    #: (roots map to themselves).
    called_from: Dict[str, str] = field(default_factory=dict)

    def is_reachable(self, qualname: str) -> bool:
        return qualname in self.reachable

    def root_of(self, qualname: str) -> Optional[str]:
        return self.reachable.get(qualname)

    def iter_reachable_functions(self) -> List[FunctionInfo]:
        """Reachable project functions in deterministic qualname order."""
        return [
            self.project.functions[qualname]
            for qualname in sorted(self.reachable)
            if qualname in self.project.functions
        ]

    def witness(self, qualname: str) -> str:
        """Human-readable provenance: ``reachable from <root>``."""
        root = self.reachable.get(qualname)
        if root is None:
            return "not worker-reachable"
        if root == qualname:
            return f"worker entry point {self.roots.get(root, root)}"
        return f"reachable from worker entry {root}"


def _registration_roots(project: Project, graph: CallGraph) -> Dict[str, str]:
    """Functions registered as builders/schedulers, with provenance."""
    roots: Dict[str, str] = {}
    for qualname in sorted(graph.sites):
        caller = project.functions.get(qualname)
        if caller is None:
            continue
        for site in graph.sites[qualname]:
            if site.callee not in REGISTRATION_FUNCTIONS:
                continue
            # register_builder(name, fn) — the callable is the second
            # positional argument (or the ``fn`` keyword).
            candidates = list(site.node.args[1:2]) + [
                keyword.value
                for keyword in site.node.keywords
                if keyword.arg == "fn"
            ]
            for argument in candidates:
                dotted = dotted_name(argument)
                if dotted is None:
                    continue
                resolved = project.resolve(caller.module, dotted)
                if resolved is None:
                    continue
                canonical = project.canonical(resolved)
                if canonical in project.functions:
                    roots[canonical] = (
                        f"registered via {site.callee} in {qualname}"
                    )
    return roots


def build_worker_context(project: Project, graph: CallGraph) -> WorkerContext:
    """Compute the worker-reachable set once per lint invocation."""
    context = WorkerContext(project=project, graph=graph)
    for qualname in ENTRY_FUNCTIONS:
        if qualname in project.functions:
            context.roots[qualname] = f"worker entry point {qualname}"
    context.roots.update(_registration_roots(project, graph))
    # Deterministic BFS: roots in sorted order, neighbours in sorted
    # order, first (shortest) chain wins.
    frontier: List[str] = []
    for root in sorted(context.roots):
        context.reachable[root] = root
        context.called_from[root] = root
        frontier.append(root)
    while frontier:
        next_frontier: List[str] = []
        for qualname in frontier:
            for callee in sorted(graph.edges.get(qualname, ())):
                if callee in context.reachable:
                    continue
                if callee not in project.functions:
                    continue
                context.reachable[callee] = context.reachable[qualname]
                context.called_from[callee] = qualname
                next_frontier.append(callee)
        frontier = next_frontier
    return context


def function_local_names(function: FunctionInfo) -> Set[str]:
    """Every name bound inside ``function`` (params, targets, imports).

    Used to tell a module-level binding from a local shadow; names
    declared ``global`` are *excluded* — assigning them writes shared
    module state, which is exactly what MEGH014 reports.
    """
    bound: Set[str] = set(function.parameters())
    global_names: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Global):
            global_names.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                bound.update(_target_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.comprehension):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".", 1)[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not function.node:
                bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            bound.add(node.target.id)
    return bound - global_names


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def module_level_bindings(function: FunctionInfo) -> Set[str]:
    """Names bound by the module body of ``function``'s module."""
    bound: Set[str] = set()
    for statement in function.module.tree.body:
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (
                statement.targets
                if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            for target in targets:
                bound.update(_target_names(target))
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            bound.update(_target_names(statement.target))
    return bound
