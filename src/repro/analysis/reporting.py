"""Reporters: human-readable text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Any, Dict, List

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import UNUSED_SUPPRESSION_RULE, LintResult


def render_text(result: LintResult, strict: bool = False) -> str:
    """One line per finding plus a summary, ruff/flake8 style.

    Unused-suppression and stale-baseline notes print after the
    findings; with ``strict`` they are labelled as failures (the CLI
    turns them into exit code 1).
    """
    lines = [diagnostic.format() for diagnostic in result.diagnostics]
    for diagnostic in result.unused_suppressions:
        lines.append(diagnostic.format())
    for note in result.stale_baseline:
        lines.append(f"stale baseline entry: {note}")
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        summary = f"meghlint: ok — {result.files_checked} {noun} checked"
    else:
        summary = (
            f"meghlint: {len(result.diagnostics)} finding(s) "
            f"({result.errors} error(s), {result.warnings} warning(s)) "
            f"in {result.files_checked} {noun}"
        )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.baselined:
        summary += f", {result.baselined} baselined"
    if result.cache_hits is not None:
        summary += (
            f", cache: {result.cache_hits} hit(s), "
            f"{result.cache_misses} miss(es)"
        )
    hygiene = len(result.unused_suppressions) + len(result.stale_baseline)
    if hygiene:
        summary += (
            f", {hygiene} stale suppression/baseline entr"
            + ("y" if hygiene == 1 else "ies")
            + (" (failing: --strict-suppressions)" if strict else "")
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI and tooling."""
    document = {
        "tool": "meghlint",
        "version": 1,
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.diagnostics),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "unused_suppressions": len(result.unused_suppressions),
            "stale_baseline": len(result.stale_baseline),
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "clean": result.clean,
        },
        "diagnostics": [
            diagnostic.to_dict() for diagnostic in result.diagnostics
        ],
        "unused_suppressions": [
            diagnostic.to_dict() for diagnostic in result.unused_suppressions
        ],
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_rules() -> List[Dict[str, Any]]:
    """Every registered rule, for the SARIF driver's rule table."""
    from repro.analysis.flow import FLOW_RULES
    from repro.analysis.par import PAR_RULES
    from repro.analysis.rules import RULE_REGISTRY, all_rule_ids
    from repro.analysis.shape import SHAPE_RULES

    rules: List[Dict[str, Any]] = []
    for rule_id in all_rule_ids():
        rule_class = RULE_REGISTRY[rule_id]
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": rule_class.summary},
                "defaultConfiguration": {
                    "level": str(rule_class.severity)
                },
            }
        )
    for table in (FLOW_RULES, PAR_RULES, SHAPE_RULES):
        for rule_id in sorted(table):
            severity, summary = table[rule_id]
            rules.append(
                {
                    "id": rule_id,
                    "shortDescription": {"text": summary},
                    "defaultConfiguration": {"level": str(severity)},
                }
            )
    rules.append(
        {
            "id": UNUSED_SUPPRESSION_RULE,
            "shortDescription": {
                "text": "suppression directive that never fires"
            },
            "defaultConfiguration": {"level": "warning"},
        }
    )
    return rules


def _sarif_result(diagnostic: Diagnostic) -> Dict[str, Any]:
    level = "error" if diagnostic.severity is Severity.ERROR else "warning"
    return {
        "ruleId": diagnostic.rule_id,
        "level": level,
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": PurePath(diagnostic.path).as_posix(),
                    },
                    "region": {
                        "startLine": diagnostic.line,
                        "startColumn": max(diagnostic.column, 1),
                    },
                }
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document (``repro lint --format sarif``).

    One run, one driver ("meghlint"), every registered rule in the
    driver's rule table so code-scanning UIs can show titles.  Findings
    and unused-suppression notes both become results; suppressed and
    baselined findings are — by definition — absent.
    """
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "meghlint",
                        "rules": _sarif_rules(),
                    }
                },
                "results": [
                    _sarif_result(diagnostic)
                    for diagnostic in (
                        list(result.diagnostics)
                        + list(result.unused_suppressions)
                    )
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
