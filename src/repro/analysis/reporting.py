"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult


def render_text(result: LintResult, strict: bool = False) -> str:
    """One line per finding plus a summary, ruff/flake8 style.

    Unused-suppression and stale-baseline notes print after the
    findings; with ``strict`` they are labelled as failures (the CLI
    turns them into exit code 1).
    """
    lines = [diagnostic.format() for diagnostic in result.diagnostics]
    for diagnostic in result.unused_suppressions:
        lines.append(diagnostic.format())
    for note in result.stale_baseline:
        lines.append(f"stale baseline entry: {note}")
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        summary = f"meghlint: ok — {result.files_checked} {noun} checked"
    else:
        summary = (
            f"meghlint: {len(result.diagnostics)} finding(s) "
            f"({result.errors} error(s), {result.warnings} warning(s)) "
            f"in {result.files_checked} {noun}"
        )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.baselined:
        summary += f", {result.baselined} baselined"
    if result.cache_hits is not None:
        summary += (
            f", cache: {result.cache_hits} hit(s), "
            f"{result.cache_misses} miss(es)"
        )
    hygiene = len(result.unused_suppressions) + len(result.stale_baseline)
    if hygiene:
        summary += (
            f", {hygiene} stale suppression/baseline entr"
            + ("y" if hygiene == 1 else "ies")
            + (" (failing: --strict-suppressions)" if strict else "")
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI and tooling."""
    document = {
        "tool": "meghlint",
        "version": 1,
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.diagnostics),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "unused_suppressions": len(result.unused_suppressions),
            "stale_baseline": len(result.stale_baseline),
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "clean": result.clean,
        },
        "diagnostics": [
            diagnostic.to_dict() for diagnostic in result.diagnostics
        ],
        "unused_suppressions": [
            diagnostic.to_dict() for diagnostic in result.unused_suppressions
        ],
        "stale_baseline": list(result.stale_baseline),
    }
    return json.dumps(document, indent=2, sort_keys=True)
