"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary, ruff/flake8 style."""
    lines = [diagnostic.format() for diagnostic in result.diagnostics]
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        summary = f"meghlint: ok — {result.files_checked} {noun} checked"
    else:
        summary = (
            f"meghlint: {len(result.diagnostics)} finding(s) "
            f"({result.errors} error(s), {result.warnings} warning(s)) "
            f"in {result.files_checked} {noun}"
        )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI and tooling."""
    document = {
        "tool": "meghlint",
        "version": 1,
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.diagnostics),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
            "clean": result.clean,
        },
        "diagnostics": [
            diagnostic.to_dict() for diagnostic in result.diagnostics
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
