"""The MEGH rule set: AST checks for this codebase's real failure modes.

Each rule targets a way a change could silently break the reproduction:

* **MEGH001** — unseeded randomness destroys run-to-run determinism;
* **MEGH002** — wall-clock reads leak host time into simulated results;
* **MEGH003** — float ``==``/``!=`` hides accumulation dust (Sherman–
  Morrison updates leave ~1e-16 residue exactly where naive code expects
  an exact zero);
* **MEGH004** — mutable default arguments alias state across schedulers;
* **MEGH005** — a scheduler/workload/policy constructor that builds an
  RNG must accept ``seed`` or ``rng`` so the harness can control it;
* **MEGH006** — bare/swallowed exceptions hide harness failures;
* **MEGH007** — ad-hoc multiprocessing bypasses the execution engine's
  determinism, caching, and fault-isolation guarantees;
* **MEGH008** — a ``for ... in range(<x>.dimension)`` loop in the
  numerical core scans all ``d = N x M`` one-hot coordinates, breaking
  the Section-5.2 claim that per-step work tracks the non-zeros
  actually touched;
* **MEGH009** — a per-entity ``for vm in ...vms`` / ``for pm in ...pms``
  loop in the simulator (``repro/cloudsim/``) is O(N) Python per call
  where the struct-of-arrays rewrite promises one vector pass; hot-path
  fleet iteration belongs in :mod:`repro.cloudsim.soa` expressions.

Rules are registered in :data:`RULE_REGISTRY` and run by
:mod:`repro.analysis.engine`.  Suppress a finding on its line with
``# meghlint: ignore[MEGH003] -- reason``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.analysis.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class RuleContext:
    """What a rule sees: one parsed module plus its origin."""

    path: str
    tree: ast.Module
    source_lines: Tuple[str, ...]


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, context: RuleContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError("rule classes must define rule_id")
    if rule_class.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    RULE_REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rule_ids() -> List[str]:
    """Registered rule ids, sorted."""
    return sorted(RULE_REGISTRY)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_calls(tree: ast.AST) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    """Every call in the tree with its dotted callee name (if resolvable)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, dotted_name(node.func)


# ----------------------------------------------------------------------
# MEGH001 — unseeded randomness
# ----------------------------------------------------------------------

#: Legacy global-state numpy entry points that bypass seed plumbing.
_SAFE_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "RandomState",  # explicit construction still takes a seed argument
}

#: stdlib ``random`` module functions that draw from the shared global RNG.
_BANNED_STDLIB_RANDOM = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


@register
class UnseededRandomnessRule(Rule):
    """MEGH001: module-level RNG calls instead of an injected Generator."""

    rule_id = "MEGH001"
    severity = Severity.ERROR
    summary = (
        "randomness must flow through an explicitly seeded "
        "numpy Generator, never the process-global RNG"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        for node, name in walk_calls(context.tree):
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
            ):
                if parts[2] == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.diagnostic(
                            context,
                            node,
                            "np.random.default_rng() without a seed draws "
                            "OS entropy; pass a seed (or SeedSequence) so "
                            "runs are reproducible",
                        )
                elif parts[2] not in _SAFE_NP_RANDOM:
                    yield self.diagnostic(
                        context,
                        node,
                        f"{name}() uses numpy's process-global RNG; "
                        "use an injected np.random.Generator "
                        "(np.random.default_rng(seed)) instead",
                    )
            elif len(parts) == 2 and parts[0] == "random":
                if parts[1] in _BANNED_STDLIB_RANDOM:
                    yield self.diagnostic(
                        context,
                        node,
                        f"{name}() uses the stdlib's shared global RNG; "
                        "use an injected np.random.Generator (or at least "
                        "a local random.Random(seed)) instead",
                    )
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                banned = [
                    alias.name
                    for alias in node.names
                    if alias.name in _BANNED_STDLIB_RANDOM
                ]
                if banned:
                    yield self.diagnostic(
                        context,
                        node,
                        "importing "
                        + ", ".join(sorted(banned))
                        + " from random pulls in the shared global RNG; "
                        "inject a seeded generator instead",
                    )


# ----------------------------------------------------------------------
# MEGH002 — wall-clock time in simulation code
# ----------------------------------------------------------------------

#: Wall-clock reads.  ``time.perf_counter`` / ``time.monotonic`` are
#: allowed: they measure durations (the Figure-6 quantity), not dates.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """MEGH002: wall-clock reads make simulated results time-dependent."""

    rule_id = "MEGH002"
    severity = Severity.ERROR
    summary = (
        "simulation/core code must not read the wall clock; simulated "
        "time comes from the step counter, durations from perf_counter"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        for node, name in walk_calls(context.tree):
            if name in _WALL_CLOCK_CALLS:
                yield self.diagnostic(
                    context,
                    node,
                    f"{name}() reads the wall clock, coupling results to "
                    "when the run happened; derive time from the "
                    "simulation step (or use time.perf_counter for "
                    "duration measurements)",
                )


# ----------------------------------------------------------------------
# MEGH003 — float equality
# ----------------------------------------------------------------------


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -0.0, +1.0 and similar signed literals.
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_float_literal(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    """MEGH003: ``==``/``!=`` against float literals ignores float dust."""

    rule_id = "MEGH003"
    severity = Severity.WARNING
    summary = (
        "float equality is brittle under accumulation error; compare "
        "with math.isclose or an explicit epsilon"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_float_literal(operand) for operand in operands):
                yield self.diagnostic(
                    context,
                    node,
                    "float equality comparison; accumulated rounding "
                    "error makes exact comparison unreliable — use "
                    "math.isclose, an epsilon band, or an exact integer "
                    "state instead (annotate intentional sentinel checks "
                    "with '# meghlint: ignore[MEGH003] -- reason')",
                )


# ----------------------------------------------------------------------
# MEGH004 — mutable default arguments
# ----------------------------------------------------------------------


def _is_mutable_default(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in (
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.deque",
            "collections.OrderedDict",
            "collections.Counter",
        )
    return False


@register
class MutableDefaultRule(Rule):
    """MEGH004: mutable defaults alias state across instances and calls."""

    rule_id = "MEGH004"
    severity = Severity.ERROR
    summary = (
        "a mutable default is shared by every call; default to None "
        "(or use dataclasses.field(default_factory=...))"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: List[Optional[ast.AST]] = list(node.args.defaults)
            defaults.extend(node.args.kw_defaults)
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.diagnostic(
                        context,
                        default if default is not None else node,
                        f"mutable default argument in {node.name}(); the "
                        "object is created once and shared by every call "
                        "— default to None and construct inside the body",
                    )


# ----------------------------------------------------------------------
# MEGH005 — seed/rng plumbing in public constructors
# ----------------------------------------------------------------------

_SEED_PARAMETER_NAMES = {"seed", "rng", "generator", "seed_sequence"}


def _init_parameters(class_node: ast.ClassDef) -> Optional[List[str]]:
    for item in class_node.body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "__init__"
        ):
            args = item.args
            names = [a.arg for a in args.posonlyargs]
            names.extend(a.arg for a in args.args)
            names.extend(a.arg for a in args.kwonlyargs)
            return names
    return None


def _is_rng_constructor(name: Optional[str]) -> bool:
    if name is None:
        return False
    return (
        name.endswith(".default_rng")
        or name == "default_rng"
        or name in ("random.Random", "np.random.RandomState")
    )


def _function_parameters(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names.extend(a.arg for a in args.args)
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _unplumbed_rng_calls(class_node: ast.ClassDef) -> List[ast.Call]:
    """RNG constructions whose enclosing method lacks a seed parameter.

    A ``default_rng(...)`` call inside any method that itself accepts
    ``seed``/``rng`` (``__init__`` or an alternative constructor like a
    ``from_trace`` classmethod) is considered plumbed.
    """
    offenders: List[ast.Call] = []
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            plumbed = bool(
                _SEED_PARAMETER_NAMES.intersection(_function_parameters(item))
            )
            if plumbed:
                continue
            for node, name in walk_calls(item):
                if _is_rng_constructor(name):
                    offenders.append(node)
        else:
            for node, name in walk_calls(item):
                if _is_rng_constructor(name):
                    offenders.append(node)
    return offenders


@register
class SeedPlumbingRule(Rule):
    """MEGH005: RNG-owning components must expose seed/rng injection."""

    rule_id = "MEGH005"
    severity = Severity.ERROR
    summary = (
        "a public class that constructs an RNG must take a seed or rng "
        "parameter in __init__ so the harness controls every stream"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue
            offenders = _unplumbed_rng_calls(node)
            if not offenders:
                continue
            parameters = _init_parameters(node) or []
            if _SEED_PARAMETER_NAMES.intersection(parameters):
                continue  # __init__ plumbs a seed; methods may reuse it
            for call in offenders:
                yield self.diagnostic(
                    context,
                    call,
                    f"class {node.name} constructs an RNG in a method "
                    "with no seed/rng parameter (and __init__ takes "
                    "none either); plumb a seed through so the harness "
                    "controls the stream",
                )


# ----------------------------------------------------------------------
# MEGH006 — bare / swallowed exceptions
# ----------------------------------------------------------------------

_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BROAD_EXCEPTION_NAMES
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(element, ast.Name)
            and element.id in _BROAD_EXCEPTION_NAMES
            for element in handler.type.elts
        )
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or Ellipsis
        return False
    return True


@register
class SwallowedExceptionRule(Rule):
    """MEGH006: silent failure hides broken runs from the harness."""

    rule_id = "MEGH006"
    severity = Severity.WARNING
    summary = (
        "bare except (or a broad handler that only passes) hides real "
        "failures; catch specific exceptions and act on them"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    context,
                    node,
                    "bare 'except:' also traps KeyboardInterrupt and "
                    "SystemExit; name the exception types you mean",
                )
            elif _is_broad_handler(node) and _swallows(node):
                yield self.diagnostic(
                    context,
                    node,
                    "broad exception handler silently discards the "
                    "error; log, re-raise, or narrow the type",
                )


# ----------------------------------------------------------------------
# MEGH007 — parallelism outside the execution engine
# ----------------------------------------------------------------------

_PARALLELISM_MODULES = {"multiprocessing", "concurrent.futures"}


def _is_engine_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return "repro/engine/" in normalized or normalized.endswith(
        "repro/engine"
    )


def _banned_parallel_import(module: Optional[str]) -> Optional[str]:
    if module is None:
        return None
    for banned in _PARALLELISM_MODULES:
        if module == banned or module.startswith(banned + "."):
            return banned
    return None


@register
class AdHocParallelismRule(Rule):
    """MEGH007: process pools outside ``repro.engine`` skip its guarantees."""

    rule_id = "MEGH007"
    severity = Severity.ERROR
    summary = (
        "multiprocessing/concurrent.futures belong inside repro.engine; "
        "everything else should submit jobs to the ExecutionEngine"
    )

    _MESSAGE = (
        "direct use of {module!r} bypasses the execution engine's "
        "deterministic ordering, result cache, and crash isolation; "
        "route parallel work through repro.engine.ExecutionEngine"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        if _is_engine_path(context.path):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    banned = _banned_parallel_import(alias.name)
                    if banned:
                        yield self.diagnostic(
                            context,
                            node,
                            self._MESSAGE.format(module=banned),
                        )
            elif isinstance(node, ast.ImportFrom):
                banned = _banned_parallel_import(node.module)
                if banned:
                    yield self.diagnostic(
                        context, node, self._MESSAGE.format(module=banned)
                    )
                elif node.module == "concurrent" and any(
                    alias.name == "futures" for alias in node.names
                ):
                    yield self.diagnostic(
                        context,
                        node,
                        self._MESSAGE.format(module="concurrent.futures"),
                    )


# ----------------------------------------------------------------------
# MEGH008 — O(d) full-dimension scans in the numerical core
# ----------------------------------------------------------------------


def _is_core_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return "repro/core/" in normalized or normalized.endswith("repro/core")


def _mentions_dimension(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "dimension":
        return True
    if isinstance(node, ast.Name) and node.id == "dimension":
        return True
    return False


@register
class FullDimensionScanRule(Rule):
    """MEGH008: ``range(x.dimension)`` loops defeat sparsity in the core."""

    rule_id = "MEGH008"
    severity = Severity.ERROR
    summary = (
        "iterating range(<x>.dimension) in repro/core scans all d = N x M "
        "coordinates; walk the stored non-zeros (column index, row "
        "support) instead"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        if not _is_core_path(context.path):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iterator = node.iter
            if not isinstance(iterator, ast.Call):
                continue
            if dotted_name(iterator.func) != "range":
                continue
            if any(
                _mentions_dimension(argument)
                for argument in iterator.args
            ):
                yield self.diagnostic(
                    context,
                    node,
                    "loop over range(dimension) visits every one-hot "
                    "coordinate — O(d) per call where the paper promises "
                    "O(nnz touched); iterate the sparse support "
                    "(rows_with_column, row_view, z keys) instead, or "
                    "annotate a deliberate dense scan with "
                    "'# meghlint: ignore[MEGH008] -- reason'",
                )


# ----------------------------------------------------------------------
# MEGH009 — per-entity fleet loops in the simulator
# ----------------------------------------------------------------------

_FLEET_ATTRIBUTES = {"vms", "pms", "_vms", "_pms"}

#: Wrappers whose first argument is the real iterable.
_ITERATION_WRAPPERS = {"enumerate", "sorted", "list", "tuple", "reversed"}

#: Dict-view methods: ``accountant.vms.values()`` still walks the fleet.
_DICT_VIEW_METHODS = {"values", "keys", "items"}


#: Agent-side modules on the decide() hot path, covered since the
#: candidate pipeline went array-native (the scalar generator retained
#: in agent.py as the differential oracle carries reasoned suppressions).
_AGENT_HOT_PATHS = (
    "repro/core/agent.py",
    "repro/core/candidates.py",
)


def _is_fleet_loop_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    if normalized.endswith("repro/cloudsim/reference.py"):
        return False  # the retained pre-rewrite oracle is loops on purpose
    if "repro/cloudsim/" in normalized:
        return True
    return any(normalized.endswith(hot) for hot in _AGENT_HOT_PATHS)


def _fleet_attribute(node: ast.AST) -> Optional[str]:
    """The ``vms``/``pms`` attribute an iterable expression walks, if any.

    Unwraps ``enumerate()``/``sorted()``-style wrappers and
    ``.values()``/``.items()`` dict views so that
    ``sorted(self._vms)``, ``enumerate(datacenter.pms)`` and
    ``self.vms.values()`` all resolve to their fleet attribute.
    """
    if isinstance(node, ast.Attribute):
        if node.attr in _FLEET_ATTRIBUTES:
            return node.attr
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ITERATION_WRAPPERS
            and node.args
        ):
            return _fleet_attribute(node.args[0])
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEW_METHODS
        ):
            return _fleet_attribute(func.value)
    return None


@register
class PerEntityFleetLoopRule(Rule):
    """MEGH009: Python-level fleet loops defeat the SoA simulator core."""

    rule_id = "MEGH009"
    severity = Severity.ERROR
    summary = (
        "per-entity vm/pm loops in repro/cloudsim and the agent's "
        "decide() hot path are O(N) Python per step; express fleet-wide "
        "work as DatacenterArrays vector operations (cold paths: "
        "suppress with a reason)"
    )

    _MESSAGE = (
        "loop over {attribute!r} walks the fleet one entity at a time — "
        "O(N) Python in code the struct-of-arrays rewrite vectorized; "
        "use DatacenterArrays expressions for per-step work, or mark a "
        "deliberate cold/compat path with "
        "'# meghlint: ignore[MEGH009] -- reason'"
    )

    def check(self, context: RuleContext) -> Iterator[Diagnostic]:
        if not _is_fleet_loop_path(context.path):
            return
        for node in ast.walk(context.tree):
            iterators: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterators.append(node.iter)
            elif isinstance(
                node,
                (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp),
            ):
                iterators.extend(gen.iter for gen in node.generators)
            for iterator in iterators:
                attribute = _fleet_attribute(iterator)
                if attribute is not None:
                    yield self.diagnostic(
                        context,
                        iterator,
                        self._MESSAGE.format(attribute=attribute),
                    )


def build_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    factory: Optional[Callable[[Type[Rule]], Rule]] = None,
) -> List[Rule]:
    """Instantiate registered rules, honouring select/ignore id sets."""
    selected = set(select) if select is not None else set(RULE_REGISTRY)
    ignored = set(ignore) if ignore is not None else set()
    unknown = (selected | ignored) - set(RULE_REGISTRY)
    if unknown:
        raise ValueError(
            "unknown rule id(s): " + ", ".join(sorted(unknown))
        )
    make = factory if factory is not None else (lambda cls: cls())
    return [
        make(RULE_REGISTRY[rule_id])
        for rule_id in sorted(selected - ignored)
    ]
