"""meghshape — symbolic shape / dtype / ABI abstract interpretation.

The vectorized hot paths (``repro.core``, ``repro.cloudsim``) are
array-native: the K×M candidate feasibility broadcast, the deferred
rank-k kernel with its C argument block, the struct-of-arrays
simulator.  The bugs that remain there are ones NumPy will not raise
on — an unintended broadcast that "works" when two extents coincide, a
dtype drift across the C/NumPy backend pair, a non-contiguous view
handed to the kernel as a raw pointer.  meghshape interprets each hot
function over a symbolic-shape domain (named dimensions ``N`` VMs,
``M`` PMs, ``K`` candidate rows, ``W`` window, ``d`` basis — see
:mod:`repro.analysis.shape.dims`) seeded from declared tables that
extend meghflow's ``FIELD_TYPES``/``METHOD_TYPES``, and proves five
properties:

``MEGH019``
    broadcast-rank mismatch: symbolic shapes that conflict outright,
    or align only by an implicit rank promotion not declared
    intentional (explicit ``[None, :]`` unit axes stay silent).
``MEGH020``
    dtype drift: platform-int ``np.arange``, stores that silently
    change a declared field dtype, returns that contradict the
    declared method dtype.
``MEGH021``
    kernel-ABI safety: every array whose ``.ctypes.data`` reaches the
    C argument block is provably C-contiguous, owned, and exactly the
    declared element type, with a witnessed path from construction
    site to boundary (:mod:`repro.analysis.shape.abi`).
``MEGH022``
    shape-contract violations at call boundaries, with witness chains
    in messages like meghpar.
``MEGH023``
    in-place aliasing hazards: ``out=``/view writes while another live
    view of the same base is read with a different region expression.

The entry point is :func:`run_shape`, invoked by the lint engine with
the modules it already parsed and — when the flow/par passes also ran —
the very project/graph instances they used (parse-once, resolve-once).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import Project, build_project
from repro.analysis.shape.abi import (
    AbiCertificate,
    KernelAbiReport,
    check_kernel_abi,
)
from repro.analysis.shape.absint import HOT_PREFIXES, check_shapes
from repro.analysis.shape.dims import (
    ABI_BUFFER_DTYPES,
    DIMENSIONS,
    SHAPE_CONTRACTS,
    SHAPE_FIELD_TYPES,
    SHAPE_METHOD_TYPES,
    ShapeInfo,
)

__all__ = [
    "SHAPE_RULES",
    "run_shape",
    "check_shapes",
    "check_kernel_abi",
    "AbiCertificate",
    "KernelAbiReport",
    "ShapeInfo",
    "DIMENSIONS",
    "SHAPE_FIELD_TYPES",
    "SHAPE_METHOD_TYPES",
    "SHAPE_CONTRACTS",
    "ABI_BUFFER_DTYPES",
    "HOT_PREFIXES",
]

#: rule id -> (default severity, one-line summary). Consulted by the
#: engine/CLI for ``--select``/``--ignore`` validation and
#: ``--list-rules`` output, exactly like ``FLOW_RULES``/``PAR_RULES``.
SHAPE_RULES: Dict[str, Tuple[Severity, str]] = {
    "MEGH019": (
        Severity.ERROR,
        "broadcast-rank mismatch: symbolic shapes conflict or align only "
        "by implicit broadcasting not declared intentional",
    ),
    "MEGH020": (
        Severity.ERROR,
        "dtype drift on hot paths: platform-int arange, stores/returns "
        "that silently change a declared dtype",
    ),
    "MEGH021": (
        Severity.ERROR,
        "kernel-ABI safety: array reaching the C argument block without "
        "a witnessed owned C-contiguous int64/float64 construction",
    ),
    "MEGH022": (
        Severity.ERROR,
        "shape-contract violation at a call boundary (caller's symbolic "
        "shape incompatible with the callee's declared contract)",
    ),
    "MEGH023": (
        Severity.ERROR,
        "in-place aliasing hazard: out=/view write while another view of "
        "the same base is read with a different region",
    ),
}

_INTERPRETER_RULES = frozenset({"MEGH019", "MEGH020", "MEGH022", "MEGH023"})


def run_shape(
    parsed: Sequence[Tuple[Union[str, Path], ast.Module]],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    project: Optional[Project] = None,
    graph: Optional[CallGraph] = None,
) -> List[Diagnostic]:
    """Run the enabled meghshape rules over already-parsed modules.

    Mirrors :func:`repro.analysis.flow.run_flow` /
    :func:`repro.analysis.par.run_par`: ``parsed`` pairs each path with
    the AST the engine produced for the per-file rules, and
    ``project``/``graph`` let the engine hand over the instances the
    other whole-program passes built so nothing is parsed or resolved
    twice.  (``graph`` is accepted for interface parity; the shape
    rules only need the symbol table.)
    """
    del graph  # parity with run_flow/run_par; shapes need no call graph
    enabled = set(SHAPE_RULES)
    if select is not None:
        enabled &= select
    if ignore is not None:
        enabled -= ignore
    if not enabled:
        return []
    if project is None:
        project = build_project(parsed)
    diagnostics: List[Diagnostic] = []
    if enabled & _INTERPRETER_RULES:
        diagnostics.extend(check_shapes(project, enabled & _INTERPRETER_RULES))
    if "MEGH021" in enabled:
        diagnostics.extend(check_kernel_abi(project).diagnostics)
    return diagnostics
