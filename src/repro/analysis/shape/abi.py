"""MEGH021 — kernel-ABI safety certification.

The deferred-update kernel (:mod:`repro.core.kern`) hands raw buffer
addresses to compiled C through an int64 argument block: every pointer
written there is a bare ``array.ctypes.data``.  The C side assumes each
buffer is C-contiguous, owned (no view whose base could be resized or
garbage-collected), and exactly the declared element type — none of
which NumPy checks once the address is an integer.  The bit-identity
contract of the rank-k replay (PR 8) rests on those assumptions.

This pass proves them.  It is a two-phase whole-program check over the
hot packages:

1. **Construction phase** — every assignment to an attribute listed in
   :data:`~repro.analysis.shape.dims.ABI_BUFFER_DTYPES` must be a
   provably owning C-contiguous constructor (``np.empty`` / ``zeros`` /
   ``ones`` / ``full``) with exactly the declared dtype, either
   directly or through a same-function local (the grow-then-swap
   pattern: ``grown = np.empty(...); self._pend_rows = grown``).  Each
   valid site is recorded as a *witness*.
2. **Boundary phase** — every ``<base>.ctypes`` read must resolve to a
   witnessed buffer: a declared attribute with at least one recorded
   construction site, a same-function alias of one
   (``matrix_diag = matrix._diag``), a local owning constructor, or a
   parameter whose :data:`~repro.analysis.shape.dims.SHAPE_CONTRACTS`
   entry requires an owned contiguous int64/float64 buffer (the
   obligation is then discharged at every call site by MEGH022).

The resulting :class:`KernelAbiReport` carries both the diagnostics and
the full certificate list (boundary site -> buffer -> construction
witness), which is what lets the test suite assert that *every* array
entering the C argument block is certified, not merely that no
violation was found.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.dtypes import HOT_PREFIXES, _in_hot_package
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name
from repro.analysis.shape.dims import ABI_BUFFER_DTYPES, SHAPE_CONTRACTS

__all__ = ["AbiCertificate", "KernelAbiReport", "check_kernel_abi"]

#: numpy constructors that allocate a fresh owned C-contiguous buffer.
_OWNING_FACTORIES = frozenset({"empty", "zeros", "ones", "full"})

#: Element types the C kernel accepts (uint8 only for declared flag
#: buffers, which the ABI table spells out explicitly).
_ABI_DTYPES = frozenset({"int64", "float64", "uint8"})


@dataclass(frozen=True)
class AbiCertificate:
    """One certified path from a construction site to the ABI boundary."""

    path: str
    line: int
    buffer: str
    dtype: str
    witness: str


@dataclass
class KernelAbiReport:
    """MEGH021 verdict: violations plus the positive certificates."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    certificates: List[AbiCertificate] = field(default_factory=list)

    def certified_buffers(self) -> Set[str]:
        return {certificate.buffer for certificate in self.certificates}


def _is_numpy_name(dotted: Optional[str]) -> bool:
    if dotted is None:
        return False
    head = dotted.split(".", 1)[0]
    return head in ("np", "numpy")


def _dtype_text(expression: ast.expr) -> Optional[str]:
    name = dotted_name(expression)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    if isinstance(expression, ast.Constant) and isinstance(
        expression.value, str
    ):
        return expression.value
    return None


def _owning_constructor(
    expression: ast.expr,
) -> Optional[Tuple[str, int]]:
    """``(dtype, line)`` when the expression provably owns a fresh
    C-contiguous buffer: an ``np.empty/zeros/ones/full`` call, or
    ``<declared ABI buffer>.copy()`` (``ndarray.copy`` defaults to
    C order and always allocates)."""
    if not isinstance(expression, ast.Call):
        return None
    line = getattr(expression, "lineno", 1)
    if (
        isinstance(expression.func, ast.Attribute)
        and expression.func.attr == "copy"
        and not expression.args
        and not expression.keywords
        and isinstance(expression.func.value, ast.Attribute)
    ):
        declared = ABI_BUFFER_DTYPES.get(expression.func.value.attr)
        if declared is not None:
            return declared, line
        return None
    name = dotted_name(expression.func)
    if not _is_numpy_name(name):
        return None
    assert name is not None
    if name.rsplit(".", 1)[-1] not in _OWNING_FACTORIES:
        return None
    dtype = "float64"
    for keyword in expression.keywords:
        if keyword.arg == "dtype":
            declared_dtype = _dtype_text(keyword.value)
            dtype = declared_dtype if declared_dtype is not None else "?"
    return dtype, line


class _AbiChecker:
    """Single-owner state for the two-phase certification."""

    def __init__(self, project: Project, prefixes: Sequence[str]) -> None:
        self.project = project
        self.prefixes = prefixes
        self.report = KernelAbiReport()
        #: buffer attr -> construction witnesses ("path:line [dtype]").
        self.constructions: Dict[str, List[str]] = {}
        self._reported: Set[Tuple[str, int, str]] = set()

    # -- reporting -------------------------------------------------------
    def _report(self, function: FunctionInfo, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        key = (function.module.path, line, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self.report.diagnostics.append(
            Diagnostic(
                path=function.module.path,
                line=line,
                column=getattr(node, "col_offset", 0) + 1,
                rule_id="MEGH021",
                severity=Severity.ERROR,
                message=message,
            )
        )

    # -- phase 1: construction sites -------------------------------------
    def collect_constructions(self) -> None:
        for function in self._hot_functions():
            locals_owned: Dict[str, Tuple[str, int]] = {}
            for statement in function.body():
                for node in ast.walk(statement):
                    if isinstance(node, ast.Assign):
                        self._construction_assign(function, node, locals_owned)

    def _construction_assign(
        self,
        function: FunctionInfo,
        node: ast.Assign,
        locals_owned: Dict[str, Tuple[str, int]],
    ) -> None:
        owning = _owning_constructor(node.value)
        source: Optional[Tuple[str, int]] = owning
        if source is None and isinstance(node.value, ast.Name):
            source = locals_owned.get(node.value.id)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if owning is not None:
                    locals_owned[target.id] = owning
                else:
                    locals_owned.pop(target.id, None)
                continue
            if not isinstance(target, ast.Attribute):
                continue
            buffer = target.attr
            declared = ABI_BUFFER_DTYPES.get(buffer)
            if declared is None:
                continue
            if source is None:
                self._report(
                    function,
                    node,
                    f"ABI buffer '{buffer}' is rebound from an expression "
                    "that is not a provably owning C-contiguous constructor "
                    "(np.empty/zeros/ones/full, directly or via a local); "
                    "the C kernel would read through an unowned or "
                    "non-contiguous pointer",
                )
                continue
            dtype, line = source
            if dtype != declared:
                self._report(
                    function,
                    node,
                    f"ABI buffer '{buffer}' is declared {declared} in "
                    f"ABI_BUFFER_DTYPES but constructed with dtype {dtype}; "
                    "the C kernel reads raw memory at the declared element "
                    "width",
                )
                continue
            self.constructions.setdefault(buffer, []).append(
                f"{function.module.path}:{line} [{dtype}]"
            )

    # -- phase 2: boundary sites -----------------------------------------
    def certify_boundaries(self) -> None:
        for function in self._hot_functions():
            locals_owned: Dict[str, Tuple[str, int]] = {}
            aliases: Dict[str, str] = {}
            contract = SHAPE_CONTRACTS.get(function.name)
            contracted_params: Dict[str, str] = {}
            if contract is not None:
                declared = set(function.parameters())
                for name, param in contract.params:
                    if (
                        param is not None
                        and name in declared
                        and param.require_owned
                        and param.require_contiguous
                        and param.shape.dtype in _ABI_DTYPES
                    ):
                        contracted_params[name] = param.shape.dtype
            for statement in function.body():
                for node in ast.walk(statement):
                    if isinstance(node, ast.Assign):
                        self._track_locals(node, locals_owned, aliases)
                    elif (
                        isinstance(node, ast.Attribute)
                        and node.attr == "ctypes"
                    ):
                        self._certify_site(
                            function,
                            node,
                            locals_owned,
                            aliases,
                            contracted_params,
                        )

    def _track_locals(
        self,
        node: ast.Assign,
        locals_owned: Dict[str, Tuple[str, int]],
        aliases: Dict[str, str],
    ) -> None:
        owning = _owning_constructor(node.value)
        alias_of: Optional[str] = None
        if isinstance(node.value, ast.Attribute):
            if node.value.attr in ABI_BUFFER_DTYPES:
                alias_of = node.value.attr
        elif isinstance(node.value, ast.Name):
            alias_of = aliases.get(node.value.id)
            if owning is None:
                owning = locals_owned.get(node.value.id)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if owning is not None:
                locals_owned[target.id] = owning
                aliases.pop(target.id, None)
            elif alias_of is not None:
                aliases[target.id] = alias_of
                locals_owned.pop(target.id, None)
            else:
                locals_owned.pop(target.id, None)
                aliases.pop(target.id, None)

    def _certify_site(
        self,
        function: FunctionInfo,
        node: ast.Attribute,
        locals_owned: Dict[str, Tuple[str, int]],
        aliases: Dict[str, str],
        contracted_params: Dict[str, str],
    ) -> None:
        base = node.value
        line = getattr(node, "lineno", 1)
        path = function.module.path
        if isinstance(base, ast.Attribute):
            buffer = base.attr
            declared = ABI_BUFFER_DTYPES.get(buffer)
            if declared is None:
                self._report(
                    function,
                    node,
                    f"'.ctypes' taken on attribute '{buffer}' which is not "
                    "declared in ABI_BUFFER_DTYPES; every buffer crossing "
                    "the C ABI must be declared so its construction can be "
                    "certified",
                )
                return
            witnesses = self.constructions.get(buffer)
            if not witnesses:
                self._report(
                    function,
                    node,
                    f"'.ctypes' taken on ABI buffer '{buffer}' but no "
                    "witnessed owning construction site exists for it in "
                    "the hot packages",
                )
                return
            self.report.certificates.append(
                AbiCertificate(
                    path=path,
                    line=line,
                    buffer=buffer,
                    dtype=declared,
                    witness="constructed at " + "; ".join(sorted(witnesses)),
                )
            )
            return
        if isinstance(base, ast.Name):
            name = base.id
            if name in aliases:
                buffer = aliases[name]
                declared = ABI_BUFFER_DTYPES[buffer]
                witnesses = self.constructions.get(buffer)
                if not witnesses:
                    self._report(
                        function,
                        node,
                        f"'.ctypes' taken on '{name}' (alias of ABI buffer "
                        f"'{buffer}') but no witnessed owning construction "
                        "site exists for that buffer",
                    )
                    return
                self.report.certificates.append(
                    AbiCertificate(
                        path=path,
                        line=line,
                        buffer=buffer,
                        dtype=declared,
                        witness=(
                            f"alias '{name}' -> '{buffer}', constructed at "
                            + "; ".join(sorted(witnesses))
                        ),
                    )
                )
                return
            if name in locals_owned:
                dtype, construction_line = locals_owned[name]
                if dtype not in _ABI_DTYPES:
                    self._report(
                        function,
                        node,
                        f"'.ctypes' taken on local '{name}' constructed "
                        f"with dtype {dtype}; the C ABI accepts exactly "
                        "int64/float64 (uint8 only for declared flag "
                        "buffers)",
                    )
                    return
                self.report.certificates.append(
                    AbiCertificate(
                        path=path,
                        line=line,
                        buffer=name,
                        dtype=dtype,
                        witness=(
                            f"local owning constructor at {path}:"
                            f"{construction_line}"
                        ),
                    )
                )
                return
            if name in contracted_params:
                self.report.certificates.append(
                    AbiCertificate(
                        path=path,
                        line=line,
                        buffer=name,
                        dtype=contracted_params[name],
                        witness=(
                            f"contract on {function.qualname} parameter "
                            f"'{name}' (owned+contiguous, discharged at "
                            "call sites by MEGH022)"
                        ),
                    )
                )
                return
            self._report(
                function,
                node,
                f"'.ctypes' taken on '{name}' with no witnessed path to an "
                "owning C-contiguous construction (not a declared ABI "
                "buffer, alias, owning local, or contracted parameter)",
            )
            return
        self._report(
            function,
            node,
            "'.ctypes' taken on a compound expression; bind the array to a "
            "name or declared attribute first so its construction can be "
            "certified",
        )

    # -- helpers ---------------------------------------------------------
    def _hot_functions(self) -> List[FunctionInfo]:
        return [
            function
            for function in self.project.iter_functions()
            if _in_hot_package(function, self.prefixes)
        ]


def check_kernel_abi(
    project: Project, prefixes: Sequence[str] = HOT_PREFIXES
) -> KernelAbiReport:
    """Certify every ``.ctypes`` ABI boundary in the hot packages."""
    checker = _AbiChecker(project, prefixes)
    checker.collect_constructions()
    checker.certify_boundaries()
    return checker.report
