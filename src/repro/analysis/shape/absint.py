"""MEGH019/020/022/023 — symbolic shape abstract interpretation.

Each function body in the hot packages is interpreted over the
:class:`~repro.analysis.shape.dims.ShapeInfo` domain: arrays carry a
tuple of named dimension symbols (``N``, ``M``, ``K``, ``W``, ``d``,
…), a dtype, and contiguity/ownership proofs.  Facts are seeded from
the declared tables (``SHAPE_FIELD_TYPES`` / ``SHAPE_METHOD_TYPES``)
and the parameter contracts (``SHAPE_CONTRACTS``), then propagated
through indexing, ``np.*`` factories, gathers (``searchsorted`` /
``bincount``), reductions, ufuncs, and arithmetic.  Four rules ride on
the propagated facts:

``MEGH019``
    broadcast-rank mismatch.  Trailing-aligned symbolic dims that
    conflict outright are errors; an implicit rank promotion (a
    1-d vector silently stretched against a 2-d operand) is a warning
    unless declared intentional with an explicit unit axis
    (``vec[None, :]``), which produces an equal-rank ``1`` dim and is
    exact broadcasting by construction.
``MEGH020``
    dtype drift.  ``np.arange`` without an explicit dtype leaks the
    platform int; storing into a declared field with a different dtype,
    or returning a different dtype from a declared-return method,
    silently changes the canonical dtype downstream.
``MEGH022``
    shape-contract violation at a call boundary, with a witness chain
    (caller qualname -> contracted callee) in the message.
``MEGH023``
    in-place aliasing hazard: a ufunc ``out=`` target (or
    ``np.copyto`` destination) that is a view of the same base buffer
    as one of its inputs, with a *different* region expression — the
    read/write overlap makes the result order-dependent.  Writing an
    operand onto itself (identical expression) is well-defined and
    stays silent.

The interpretation is flow-insensitive within a statement walk exactly
like MEGH012 (:mod:`repro.analysis.flow.dtypes`) — deliberate: the hot
paths are straight-line array code, and the shared imprecision keeps
the two passes' verdicts consistent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.dtypes import HOT_PREFIXES, _in_hot_package
from repro.analysis.flow.project import FunctionInfo, Project, dotted_name
from repro.analysis.shape.dims import (
    DIM_SIZE_NAMES,
    SHAPE_CONTRACTS,
    SHAPE_FIELD_TYPES,
    SHAPE_METHOD_TYPES,
    ParamContract,
    ShapeContract,
    ShapeInfo,
    render_dims,
)

__all__ = ["check_shapes", "HOT_PREFIXES"]

#: numpy factories producing a fresh owned C-contiguous buffer.
_OWNING_FACTORIES = frozenset({"zeros", "empty", "ones", "full"})
_LIKE_FACTORIES = frozenset({"zeros_like", "empty_like", "ones_like", "full_like"})

#: Elementwise ufuncs checked for broadcasting and ``out=`` aliasing.
_ELEMENTWISE_UFUNCS = frozenset(
    {
        "add", "subtract", "multiply", "divide", "true_divide",
        "floor_divide", "mod", "power", "maximum", "minimum",
        "less", "less_equal", "greater", "greater_equal",
        "equal", "not_equal", "logical_and", "logical_or",
        "logical_not", "logical_xor", "where", "clip", "copyto",
    }
)

_COMPARISON_UFUNCS = frozenset(
    {
        "less", "less_equal", "greater", "greater_equal", "equal",
        "not_equal", "logical_and", "logical_or", "logical_not",
        "logical_xor",
    }
)

#: ndarray methods / np functions whose result keeps the operand dims.
_DIM_PRESERVING = frozenset({"argsort", "sort", "cumsum", "copy", "round"})

#: Results with statically unknown 1-d extent.
_UNKNOWN_VECTOR = frozenset(
    {"flatnonzero", "unique", "repeat", "concatenate", "diff", "nonzero"}
)

#: Axis-dropping reductions (with ``axis=``; full reductions are scalar).
_REDUCTIONS = frozenset(
    {"sum", "max", "min", "mean", "prod", "any", "all", "count_nonzero",
     "argmax", "argmin"}
)

#: Binary AST operators treated as elementwise (extends MEGH012's set
#: with the bitwise mask operators ``& | ^``).
_ELEMENTWISE_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
    ast.Pow, ast.BitAnd, ast.BitOr, ast.BitXor,
)

_INT_DTYPES = frozenset({"int64", "int32", "int16", "int8", "uint8", "int"})


def _is_numpy_call(dotted: str) -> bool:
    head = dotted.split(".", 1)[0]
    return head in ("np", "numpy")


def _dtype_text(expression: ast.expr) -> Optional[str]:
    name = dotted_name(expression)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    if isinstance(expression, ast.Constant) and isinstance(
        expression.value, str
    ):
        return expression.value
    if isinstance(expression, ast.Name):
        return expression.id
    return None


def _dims_compatible(a: str, b: str) -> bool:
    """Whether two dimension symbols can legally share an axis."""
    if a == b:
        return True
    return "?" in (a, b) or "1" in (a, b)


def _merge_dim(a: str, b: str) -> str:
    if a == b:
        return a
    if a in ("1", "?"):
        return b
    if b in ("1", "?"):
        return a
    return "?"


class _FunctionShapes:
    """Symbolic shape interpretation over one function body."""

    def __init__(self, function: FunctionInfo, enabled: Set[str]) -> None:
        self.function = function
        self.enabled = enabled
        self.findings: List[Diagnostic] = []
        self._reported: Set[Tuple[int, int, str]] = set()
        #: Local name -> inferred abstract value.
        self.env: Dict[str, ShapeInfo] = {}
        #: Local name -> base-buffer token (view-alias tracking for
        #: MEGH023: ``buf = self._vals_flat`` makes ``buf[...]`` and
        #: ``self._vals_flat[...]`` views of the same base).
        self.bases: Dict[str, str] = {}
        contract = SHAPE_CONTRACTS.get(function.name)
        if contract is not None:
            self._seed_from_contract(contract)

    def _seed_from_contract(self, contract: ShapeContract) -> None:
        declared = set(self.function.parameters())
        for name, param in contract.params:
            if param is None or name not in declared:
                continue
            # Inside the callee the contract is an assumption: required
            # ownership/contiguity hold, anything not required is
            # unproven (so the callee cannot launder a view into the
            # ABI through an uncontracted parameter).
            self.env[name] = ShapeInfo(
                param.shape.dims,
                param.shape.dtype,
                contiguous=param.require_contiguous,
                owned=param.require_owned,
            )

    # -- reporting -------------------------------------------------------
    def _report(
        self, node: ast.AST, rule_id: str, message: str, severity: Severity
    ) -> None:
        if rule_id not in self.enabled:
            return
        key = (
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Diagnostic(
                path=self.function.module.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                rule_id=rule_id,
                severity=severity,
                message=message,
            )
        )

    # -- abstract evaluation ---------------------------------------------
    def shape_of(self, expression: ast.expr) -> Optional[ShapeInfo]:
        """Inferred abstract value of an expression, or None if unknown."""
        if isinstance(expression, ast.Name):
            return self.env.get(expression.id)
        if isinstance(expression, ast.Attribute):
            return SHAPE_FIELD_TYPES.get(expression.attr)
        if isinstance(expression, ast.Subscript):
            return self._shape_of_subscript(expression)
        if isinstance(expression, ast.Call):
            return self._shape_of_call(expression)
        if isinstance(expression, ast.BinOp) and isinstance(
            expression.op, _ELEMENTWISE_OPS
        ):
            left = self.shape_of(expression.left)
            right = self.shape_of(expression.right)
            return self._broadcast(
                expression, [left, right], "elementwise operation"
            )
        if isinstance(expression, ast.UnaryOp):
            return self.shape_of(expression.operand)
        if isinstance(expression, ast.Compare):
            operands = [self.shape_of(expression.left)] + [
                self.shape_of(comparator)
                for comparator in expression.comparators
            ]
            combined = self._broadcast(expression, operands, "comparison")
            if combined is None:
                return None
            return ShapeInfo(
                combined.dims, "bool", combined.contiguous, combined.owned
            )
        if isinstance(expression, ast.IfExp):
            then = self.shape_of(expression.body)
            return then if then is not None else self.shape_of(
                expression.orelse
            )
        return None

    def _shape_of_subscript(
        self, subscript: ast.Subscript
    ) -> Optional[ShapeInfo]:
        base = self.shape_of(subscript.value)
        if base is None:
            return None
        index = subscript.slice
        elements: List[ast.expr] = (
            list(index.elts) if isinstance(index, ast.Tuple) else [index]
        )
        dims: List[str] = []
        remaining = list(base.dims)
        sliced_view = False
        fancy_copy = False
        prefix_slice_only = True
        for position, element in enumerate(elements):
            if isinstance(element, ast.Constant) and element.value is None:
                dims.append("1")
                continue
            if not remaining:
                return None  # over-indexed: rank confusion, stay silent
            if isinstance(element, ast.Constant) or (
                isinstance(element, ast.UnaryOp)
                and isinstance(element.operand, ast.Constant)
            ):
                remaining.pop(0)  # scalar index drops the axis
                prefix_slice_only = False
                continue
            if isinstance(element, ast.Slice):
                symbol = remaining.pop(0)
                sliced_view = True
                step_is_unit = element.step is None or (
                    isinstance(element.step, ast.Constant)
                    and element.step.value == 1
                )
                if not step_is_unit:
                    dims.append("?")
                    prefix_slice_only = False
                elif element.lower is None and element.upper is None:
                    dims.append(symbol)
                else:
                    dims.append("?")
                    if position != 0:
                        prefix_slice_only = False
                continue
            indexer = self.shape_of(element)
            if indexer is None:
                return None  # could be a scalar variable: unknown rank
            prefix_slice_only = False
            fancy_copy = True
            if indexer.dtype == "bool":
                # Boolean mask consumes as many axes as its rank and
                # yields one axis of unknown extent.
                for _ in range(min(indexer.rank, len(remaining))):
                    remaining.pop(0)
                dims.append("?")
            else:
                remaining.pop(0)
                dims.extend(indexer.dims)
        dims.extend(remaining)
        if not dims:
            return None  # fully scalarized
        if fancy_copy:
            return ShapeInfo(tuple(dims), base.dtype, True, True)
        contiguous = base.contiguous and prefix_slice_only
        owned = base.owned and not sliced_view
        return ShapeInfo(tuple(dims), base.dtype, contiguous, owned)

    def _shape_of_call(self, call: ast.Call) -> Optional[ShapeInfo]:
        name = dotted_name(call.func)
        method = (
            call.func.attr if isinstance(call.func, ast.Attribute) else None
        )
        if method in SHAPE_CONTRACTS and isinstance(call.func, ast.Attribute):
            self._check_contract_call(call, SHAPE_CONTRACTS[method])
        if method in SHAPE_METHOD_TYPES:
            return SHAPE_METHOD_TYPES[method]
        tail = name.rsplit(".", 1)[-1] if name else method
        if tail is None:
            return None
        numpy_call = name is not None and _is_numpy_call(name)
        if numpy_call and tail in _OWNING_FACTORIES:
            dtype = self._declared_dtype(call) or "float64"
            dims = self._dims_from_shape_argument(call)
            return ShapeInfo(dims, dtype, True, True)
        if numpy_call and tail in _LIKE_FACTORIES:
            template = self.shape_of(call.args[0]) if call.args else None
            dtype = self._declared_dtype(call)
            if template is None:
                return (
                    ShapeInfo(("?",), dtype, True, True) if dtype else None
                )
            return ShapeInfo(template.dims, dtype or template.dtype, True, True)
        if numpy_call and tail == "arange":
            dtype = self._declared_dtype(call)
            if dtype is None:
                self._report(
                    call,
                    "MEGH020",
                    "np.arange without an explicit dtype leaks the platform "
                    "int (int32 on Windows/32-bit); index vectors on the "
                    "hot paths must be created with dtype=np.int64",
                    Severity.ERROR,
                )
                dtype = "int64"
            dims = self._dims_from_shape_argument(call)
            return ShapeInfo(dims, dtype, True, True)
        if tail == "astype" and isinstance(call.func, ast.Attribute):
            base = self.shape_of(call.func.value)
            dtype = (
                _dtype_text(call.args[0])
                if call.args
                else self._declared_dtype(call)
            )
            if dtype is None:
                return None
            dims = base.dims if base is not None else ("?",)
            return ShapeInfo(dims, dtype, True, True)
        if numpy_call and tail in {"ascontiguousarray", "asarray", "array"}:
            base = self.shape_of(call.args[0]) if call.args else None
            dtype = self._declared_dtype(call)
            if base is not None:
                # asarray of an array is a no-copy passthrough unless
                # the dtype changes; keep the base's proofs in the
                # same-dtype case so ownership is never invented.
                if tail == "ascontiguousarray":
                    return ShapeInfo(base.dims, dtype or base.dtype, True, True)
                if dtype is None or dtype == base.dtype:
                    return base
                return ShapeInfo(base.dims, dtype, True, True)
            if dtype is not None:
                return ShapeInfo(("?",), dtype, True, True)
            return None
        if numpy_call and tail == "bincount":
            for keyword in call.keywords:
                if keyword.arg == "weights":
                    weights = self.shape_of(keyword.value)
                    dtype = weights.dtype if weights else "float64"
                    return ShapeInfo(("M",), dtype, True, True)
            return ShapeInfo(("M",), "int64", True, True)
        if tail == "searchsorted":
            # np.searchsorted(a, v) / a.searchsorted(v): result has the
            # shape of the needles, always int64.
            needles: Optional[ast.expr] = None
            if numpy_call and len(call.args) >= 2:
                needles = call.args[1]
            elif method == "searchsorted" and call.args:
                needles = call.args[0]
            if needles is None:
                return None
            found = self.shape_of(needles)
            dims = found.dims if found is not None else ("?",)
            return ShapeInfo(dims, "int64", True, True)
        if tail in _UNKNOWN_VECTOR and numpy_call:
            first = self.shape_of(call.args[0]) if call.args else None
            dtype = "int64" if tail in ("flatnonzero", "nonzero") else (
                first.dtype if first is not None else "?"
            )
            return ShapeInfo(("?",), dtype, True, True)
        if tail in _DIM_PRESERVING:
            operand: Optional[ast.expr] = None
            if numpy_call and call.args:
                operand = call.args[0]
            elif isinstance(call.func, ast.Attribute):
                operand = call.func.value
            if operand is None:
                return None
            base = self.shape_of(operand)
            if base is None:
                return None
            dtype = "int64" if tail == "argsort" else base.dtype
            self._check_out_aliasing(call, [operand])
            return ShapeInfo(base.dims, dtype, True, True)
        if tail in _REDUCTIONS:
            return self._shape_of_reduction(call, numpy_call, method, tail)
        if numpy_call and tail in _ELEMENTWISE_UFUNCS:
            return self._shape_of_ufunc(call, tail)
        return None

    def _shape_of_reduction(
        self,
        call: ast.Call,
        numpy_call: bool,
        method: Optional[str],
        tail: str,
    ) -> Optional[ShapeInfo]:
        operand: Optional[ast.expr] = None
        if numpy_call and call.args:
            operand = call.args[0]
        elif method == tail and isinstance(call.func, ast.Attribute):
            operand = call.func.value
        if operand is None:
            return None
        base = self.shape_of(operand)
        if base is None:
            return None
        axis: Optional[int] = None
        for keyword in call.keywords:
            if keyword.arg == "axis" and isinstance(
                keyword.value, ast.Constant
            ):
                value = keyword.value.value
                if isinstance(value, int):
                    axis = value
        if axis is None:
            return None  # full reduction: scalar
        if axis < 0:
            axis += base.rank
        if not 0 <= axis < base.rank:
            return None
        dims = base.dims[:axis] + base.dims[axis + 1 :]
        if not dims:
            return None
        if tail in ("argmax", "argmin"):
            dtype = "int64"
        elif tail in ("any", "all"):
            dtype = "bool"
        else:
            dtype = base.dtype
        return ShapeInfo(dims, dtype, True, True)

    def _shape_of_ufunc(self, call: ast.Call, tail: str) -> Optional[ShapeInfo]:
        operands = list(call.args)
        shapes = [self.shape_of(argument) for argument in operands]
        out_expr: Optional[ast.expr] = None
        for keyword in call.keywords:
            if keyword.arg == "out":
                out_expr = keyword.value
        if tail == "copyto" and len(operands) >= 2:
            # np.copyto(dst, src) is an in-place write like out=dst.
            out_expr = operands[0]
            self._check_out_aliasing(call, operands[1:], out_expr)
            dst = shapes[0]
            src = self._broadcast(call, shapes, f"np.{tail}")
            return dst if dst is not None else src
        combined = self._broadcast(call, shapes, f"np.{tail}")
        if out_expr is not None:
            self._check_out_aliasing(call, operands, out_expr)
            out_shape = self.shape_of(out_expr)
            if out_shape is not None:
                combined = out_shape
        if combined is None:
            return None
        if tail in _COMPARISON_UFUNCS:
            return ShapeInfo(
                combined.dims, "bool", combined.contiguous, combined.owned
            )
        return combined

    def _declared_dtype(self, call: ast.Call) -> Optional[str]:
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                return _dtype_text(keyword.value)
        return None

    def _dim_of_size(self, size: ast.expr) -> str:
        if isinstance(size, ast.Attribute):
            return DIM_SIZE_NAMES.get(size.attr, "?")
        if isinstance(size, ast.Name):
            return DIM_SIZE_NAMES.get(size.id, "?")
        if isinstance(size, ast.Constant) and isinstance(size.value, int):
            return str(size.value)
        if isinstance(size, ast.Call) and isinstance(size.func, ast.Name):
            if size.func.id == "len" and size.args:
                inner = self.shape_of(size.args[0])
                if inner is not None and inner.rank == 1:
                    return inner.dims[0]
        return "?"

    def _dims_from_shape_argument(self, call: ast.Call) -> Tuple[str, ...]:
        if not call.args:
            return ("?",)
        shape_arg = call.args[0]
        if isinstance(shape_arg, (ast.Tuple, ast.List)):
            return tuple(
                self._dim_of_size(element) for element in shape_arg.elts
            ) or ("?",)
        return (self._dim_of_size(shape_arg),)

    # -- MEGH019: broadcasting -------------------------------------------
    def _broadcast(
        self,
        node: ast.AST,
        operands: Sequence[Optional[ShapeInfo]],
        context: str,
    ) -> Optional[ShapeInfo]:
        known = [operand for operand in operands if operand is not None]
        if not known:
            return None
        result = known[0]
        for operand in known[1:]:
            result = self._broadcast_pair(node, result, operand, context)
        return result

    def _broadcast_pair(
        self, node: ast.AST, left: ShapeInfo, right: ShapeInfo, context: str
    ) -> ShapeInfo:
        a, b = left.dims, right.dims
        rank = max(len(a), len(b))
        merged: List[str] = []
        conflict: Optional[Tuple[str, str]] = None
        for offset in range(1, rank + 1):
            da = a[-offset] if offset <= len(a) else None
            db = b[-offset] if offset <= len(b) else None
            if da is None:
                assert db is not None
                merged.append(db)
                continue
            if db is None:
                merged.append(da)
                continue
            if not _dims_compatible(da, db):
                if conflict is None:
                    conflict = (da, db)
                merged.append("?")
                continue
            merged.append(_merge_dim(da, db))
        merged.reverse()
        if conflict is not None:
            da, db = conflict
            skip = (
                len(a) == len(b) == 1
                and {da, db} == {"N", "M"}
            )  # 1-d N-vs-M is MEGH012 check B's finding; don't double-report
            if not skip:
                self._report(
                    node,
                    "MEGH019",
                    f"{context} between symbolic shapes "
                    f"{render_dims(a)} and {render_dims(b)} cannot "
                    f"broadcast: trailing-aligned dims {da} vs {db} "
                    "conflict (raises at runtime, or silently 'works' "
                    "when the extents coincide in a small test)",
                    Severity.ERROR,
                )
        elif len(a) != len(b):
            shorter, longer = (a, b) if len(a) < len(b) else (b, a)
            if all(symbol != "?" for symbol in shorter):
                self._report(
                    node,
                    "MEGH019",
                    f"{context} implicitly broadcasts {render_dims(shorter)} "
                    f"against {render_dims(longer)} by rank promotion; "
                    "declare the intent with an explicit unit axis "
                    "([None, :] / [:, None]) or suppress with "
                    "'meghlint: ignore[MEGH019]'",
                    Severity.WARNING,
                )
        dtype = _combine_dtypes(left.dtype, right.dtype)
        # A broadcast result materializes a fresh buffer.
        return ShapeInfo(tuple(merged), dtype, True, True)

    # -- MEGH023: out=/view aliasing -------------------------------------
    def _base_token(self, expression: ast.expr) -> Optional[str]:
        stripped = expression
        while isinstance(stripped, ast.Subscript):
            stripped = stripped.value
        if isinstance(stripped, ast.Name):
            return self.bases.get(stripped.id, f"name:{stripped.id}")
        if isinstance(stripped, ast.Attribute):
            dotted = dotted_name(stripped)
            if dotted is not None:
                return f"attr:{dotted}"
            return None
        return None  # call/temp results own fresh buffers

    def _check_out_aliasing(
        self,
        call: ast.Call,
        inputs: Sequence[ast.expr],
        out_expr: Optional[ast.expr] = None,
    ) -> None:
        if out_expr is None:
            for keyword in call.keywords:
                if keyword.arg == "out":
                    out_expr = keyword.value
        if out_expr is None:
            return
        out_base = self._base_token(out_expr)
        if out_base is None:
            return
        out_text = ast.dump(out_expr)
        for argument in inputs:
            if self._base_token(argument) != out_base:
                continue
            if ast.dump(argument) == out_text:
                continue  # x op= x in place: element-wise well-defined
            self._report(
                call,
                "MEGH023",
                f"in-place write aliases its input: the out= target and an "
                f"operand are both views of {out_base.split(':', 1)[-1]} "
                "with different region expressions, so elements may be "
                "read after they were overwritten; copy the input or use "
                "a distinct scratch buffer",
                Severity.ERROR,
            )

    # -- MEGH022: call-boundary contracts --------------------------------
    def _check_contract_call(
        self, call: ast.Call, contract: ShapeContract
    ) -> None:
        if "MEGH022" not in self.enabled:
            return
        for position, argument in enumerate(call.args):
            if position >= len(contract.params):
                break
            name, param = contract.params[position]
            self._check_contract_argument(call, contract, name, param, argument)
        by_name = dict(contract.params)
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in by_name:
                self._check_contract_argument(
                    call, contract, keyword.arg, by_name[keyword.arg],
                    keyword.value,
                )

    def _check_contract_argument(
        self,
        call: ast.Call,
        contract: ShapeContract,
        name: str,
        param: Optional[ParamContract],
        argument: ast.expr,
    ) -> None:
        if param is None:
            return
        actual = self.shape_of(argument)
        if actual is None:
            return
        problems: List[str] = []
        declared = param.shape
        if actual.rank != declared.rank:
            problems.append(
                f"rank {actual.rank} {render_dims(actual.dims)} != declared "
                f"rank {declared.rank} {render_dims(declared.dims)}"
            )
        else:
            for da, db in zip(actual.dims, declared.dims):
                if not _dims_compatible(da, db):
                    problems.append(
                        f"dim {da} incompatible with declared {db} "
                        f"({render_dims(actual.dims)} vs "
                        f"{render_dims(declared.dims)})"
                    )
                    break
        if (
            actual.dtype != declared.dtype
            and "?" not in (actual.dtype, declared.dtype)
        ):
            problems.append(
                f"dtype {actual.dtype} != declared {declared.dtype}"
            )
        if param.require_owned and not actual.owned:
            problems.append(
                "a view was passed where the contract requires an owned "
                "buffer (its .ctypes.data crosses the C ABI)"
            )
        if param.require_contiguous and not actual.contiguous:
            problems.append(
                "C-contiguity is not provable where the contract requires "
                "a contiguous buffer"
            )
        for problem in problems:
            self._report(
                call,
                "MEGH022",
                f"argument '{name}' violates the shape contract of "
                f"{contract.qualname}: {problem} "
                f"[witness: {self.function.qualname} -> {name}@"
                f"{contract.qualname}]",
                Severity.ERROR,
            )

    # -- MEGH020: declared-dtype drift -----------------------------------
    def _check_field_store(
        self, node: ast.AST, target: ast.expr, value: Optional[ShapeInfo]
    ) -> None:
        if value is None or not isinstance(target, ast.Attribute):
            return
        declared = SHAPE_FIELD_TYPES.get(target.attr)
        if declared is None:
            return
        if value.dtype != declared.dtype and "?" not in (
            value.dtype, declared.dtype
        ):
            self._report(
                node,
                "MEGH020",
                f"dtype drift: field '{target.attr}' is declared "
                f"{declared.dtype} in the dimension table but is assigned "
                f"a {value.dtype} value; cast explicitly or update the "
                "declaration",
                Severity.ERROR,
            )

    def _check_return(self, node: ast.Return) -> None:
        declared = SHAPE_METHOD_TYPES.get(self.function.name)
        if declared is None or node.value is None:
            return
        value = self.shape_of(node.value)
        if value is None:
            return
        if value.dtype != declared.dtype and "?" not in (
            value.dtype, declared.dtype
        ):
            self._report(
                node,
                "MEGH020",
                f"dtype drift: method '{self.function.name}' is declared "
                f"to return {declared.dtype} (METHOD_TYPES) but this "
                f"return statement produces {value.dtype}",
                Severity.ERROR,
            )

    # -- driver ----------------------------------------------------------
    def _bind_name(self, name: str, value: ast.expr) -> None:
        inferred = self.shape_of(value)
        if inferred is not None:
            self.env[name] = inferred
        else:
            self.env.pop(name, None)
        base = self._base_token(value)
        if base is not None and isinstance(
            value, (ast.Name, ast.Attribute, ast.Subscript)
        ):
            self.bases[name] = base
        else:
            self.bases.pop(name, None)

    def run(self) -> List[Diagnostic]:
        for statement in self.function.body():
            for node in ast.walk(statement):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs get their own FunctionInfo
                if isinstance(node, ast.Assign):
                    value_shape = self.shape_of(node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._bind_name(target.id, node.value)
                        elif isinstance(target, ast.Attribute):
                            self._check_field_store(node, target, value_shape)
                        elif isinstance(target, ast.Tuple):
                            for element in target.elts:
                                if isinstance(element, ast.Name):
                                    self.env.pop(element.id, None)
                                    self.bases.pop(element.id, None)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if isinstance(node.target, ast.Name):
                        self._bind_name(node.target.id, node.value)
                    elif isinstance(node.target, ast.Attribute):
                        self._check_field_store(
                            node, node.target, self.shape_of(node.value)
                        )
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Attribute):
                        self._check_field_store(
                            node, node.target, self.shape_of(node.value)
                        )
                    self.shape_of(node.value)
                elif isinstance(node, ast.Return):
                    self._check_return(node)
                elif isinstance(node, (ast.Call, ast.BinOp, ast.Compare)):
                    self.shape_of(node)  # triggers the embedded checks
        return self.findings


def _combine_dtypes(left: str, right: str) -> str:
    if left == right:
        return left
    if "?" in (left, right):
        return "?"
    if {left, right} == {"int64", "float64"}:
        return "float64"
    if "bool" in (left, right):
        return left if right == "bool" else right
    return "?"


def check_shapes(
    project: Project,
    enabled: Set[str],
    prefixes: Sequence[str] = HOT_PREFIXES,
) -> List[Diagnostic]:
    """Run the interpreter-backed rules over the hot packages."""
    diagnostics: List[Diagnostic] = []
    for function in project.iter_functions():
        if not _in_hot_package(function, prefixes):
            continue
        diagnostics.extend(_FunctionShapes(function, enabled).run())
    return diagnostics
