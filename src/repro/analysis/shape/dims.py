"""Declared dimension vocabulary, shape tables, and ABI contracts.

meghshape's abstract values are symbolic shapes over the fleet's named
dimensions.  Exactly like the MEGH011/MEGH012 tables in
:mod:`repro.analysis.flow.invariants`, everything here is a
*specification*: the analyzers check the code against these
declarations, and the self-analysis test fails loudly when a refactor
changes a buffer without updating its declaration in the same PR.

Dimension vocabulary
--------------------
``N``  number of VMs (``DatacenterArrays.num_vms``)
``M``  number of PMs (``DatacenterArrays.num_pms``)
``K``  candidate rows — source VMs selected for one plan
``W``  staged-update window (``PendingUpdates.window``)
``d``  basis dimension (``SparseMatrix.dimension``, d = N x M)
``R``  dirty-row batch handed to one kernel flush
``S``  flattened staged column entries across the window
``1``  broadcastable unit axis (an *explicit* ``None`` index)
``2``  literal two-element marshaling pair
``?``  statically unknown extent (always compatible)

Intentional broadcasts are declared in the code, not here: inserting an
explicit unit axis (``vec[None, :]`` / ``vec[:, None]``) is the
declaration, and MEGH019 stays silent for it.  An implicit rank
promotion that is genuinely intended can instead carry a
``# meghlint: ignore[MEGH019]`` line suppression (checked for staleness
by MEGH013 like every other directive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.flow.invariants import (
    AXIS_SIZE_NAMES,
    FIELD_TYPES,
    METHOD_TYPES,
)

__all__ = [
    "DIMENSIONS",
    "DIM_SIZE_NAMES",
    "ShapeInfo",
    "SHAPE_FIELD_TYPES",
    "SHAPE_METHOD_TYPES",
    "ParamContract",
    "ShapeContract",
    "SHAPE_CONTRACTS",
    "ABI_BUFFER_DTYPES",
    "render_dims",
]

#: Dimension symbol -> meaning (documentation + ``--list-rules`` docs).
DIMENSIONS: Dict[str, str] = {
    "N": "number of VMs (DatacenterArrays.num_vms)",
    "M": "number of PMs (DatacenterArrays.num_pms)",
    "K": "candidate rows (source VMs) in one CandidatePlan",
    "W": "staged-update window (PendingUpdates.window)",
    "d": "basis dimension (SparseMatrix.dimension, d = N*M)",
    "R": "dirty-row batch handed to one kernel flush",
    "S": "flattened staged column entries across the window",
    "1": "broadcastable unit axis (explicit None index)",
    "2": "literal two-element marshaling pair",
    "?": "statically unknown extent (compatible with anything)",
}

#: Size-expression names that reveal a freshly allocated array's
#: dimension (extends meghflow's ``AXIS_SIZE_NAMES``):
#: ``np.empty(window, ...)`` is a W-vector, ``np.zeros(dimension, ...)``
#: a d-vector, ``np.empty(num_rows, ...)`` a K-vector.
DIM_SIZE_NAMES: Dict[str, str] = {
    **AXIS_SIZE_NAMES,
    "num_rows": "K",
    "window": "W",
    "dimension": "d",
}


@dataclass(frozen=True)
class ShapeInfo:
    """Abstract ndarray value: symbolic shape, dtype, and buffer facts.

    ``dims`` is a tuple of dimension symbols from :data:`DIMENSIONS`
    (or a decimal literal for a constant extent).  ``contiguous`` and
    ``owned`` are *proofs*, not guesses: ``True`` means the analysis
    can witness C-contiguity / buffer ownership from the construction
    site; ``False`` means "not proven" (e.g. any sliced view).
    """

    dims: Tuple[str, ...]
    dtype: str
    contiguous: bool = True
    owned: bool = True

    @property
    def rank(self) -> int:
        return len(self.dims)


def render_dims(dims: Tuple[str, ...]) -> str:
    """Human-readable ``(K, M)`` rendering for messages."""
    if len(dims) == 1:
        return f"({dims[0]},)"
    return "(" + ", ".join(dims) + ")"


def _vector(dtype: str, axis: str) -> ShapeInfo:
    return ShapeInfo((axis,), dtype)


#: Attribute name -> declared abstract value.  Seeded from meghflow's
#: 1-d ``FIELD_TYPES`` (every DatacenterArrays vector is an owned,
#: C-contiguous ``np.zeros`` allocation) and extended with the 2-d
#: candidate scratch and the deferred-kernel staging state.
SHAPE_FIELD_TYPES: Dict[str, ShapeInfo] = {
    name: _vector(array_type.dtype, array_type.axis)
    for name, array_type in FIELD_TYPES.items()
}
SHAPE_FIELD_TYPES.update(
    {
        # CandidateIndex static budget vectors (per-PM headroom).
        "_mips_budget": _vector("float64", "M"),
        "_mips_budget_full": _vector("float64", "M"),
        "_bw_budget": _vector("float64", "M"),
        "_bw_budget_full": _vector("float64", "M"),
        # CandidateIndex K x M broadcast scratch (reused across steps).
        "_feas": ShapeInfo(("K", "M"), "bool"),
        "_aux": ShapeInfo(("K", "M"), "bool"),
        "_tmp": ShapeInfo(("K", "M"), "float64"),
        # PendingUpdates staged-window state (repro/core/kern.py).
        "_pivots": _vector("int64", "W"),
        "_scales": _vector("float64", "W"),
        "_upd_offsets": _vector("int64", "W"),
        "_cols_flat": _vector("int64", "S"),
        "_vals_flat": _vector("float64", "S"),
        "_pend_rows": _vector("int64", "R"),
        # Reusable one/two-row flush marshaling buffers.
        "_one_row": _vector("int64", "1"),
        "_one_start": _vector("int64", "1"),
        "_two_rows": _vector("int64", "2"),
        "_two_starts": _vector("int64", "2"),
        # SparseMatrix implicit-diagonal store.
        "_diag": _vector("float64", "d"),
    }
)

#: Method name -> declared return value (mirrors ``METHOD_TYPES``; all
#: of the DatacenterArrays queries return owned 1-d aggregates).  The
#: shape table sharpens axes MEGH012's coarser N/M vocabulary cannot
#: express: ``theta()`` is a d-vector, not merely "some array".
SHAPE_METHOD_TYPES: Dict[str, ShapeInfo] = {
    name: _vector(array_type.dtype, array_type.axis)
    for name, array_type in METHOD_TYPES.items()
}
SHAPE_METHOD_TYPES.update(
    {
        "theta": _vector("float64", "d"),
        "column_support": _vector("int64", "?"),
    }
)


@dataclass(frozen=True)
class ParamContract:
    """Contract for one parameter: shape/dtype plus buffer obligations.

    ``require_owned`` / ``require_contiguous`` are *caller* obligations
    (MEGH022 reports a violation when a value proven to be a view or
    non-contiguous flows in); inside the callee the parameter is assumed
    to satisfy them, which is what lets MEGH021 certify ``rows.ctypes``
    reads against the contract instead of the (invisible) call site.
    """

    shape: ShapeInfo
    require_owned: bool = False
    require_contiguous: bool = False


@dataclass(frozen=True)
class ShapeContract:
    """Declared signature contract for one function or method.

    ``params`` lists the declared parameters **after** ``self`` in
    order; ``None`` entries are unchecked (scalars, objects).  Matching
    is by method/function *name* at attribute-call sites — the same
    name-keyed convention ``METHOD_TYPES`` uses — so the names chosen
    here must be unique enough across the hot packages (the
    self-analysis test keeps that honest).
    """

    qualname: str
    params: Tuple[Tuple[str, Optional[ParamContract]], ...]


_INT_VEC = ParamContract(ShapeInfo(("?",), "int64"))
_INT_VEC_ABI = ParamContract(
    ShapeInfo(("?",), "int64"),
    require_owned=True,
    require_contiguous=True,
)

#: Method name -> declared call-boundary contract (MEGH022 checks call
#: sites; MEGH021 trusts the contract when certifying parameter reads
#: at the C ABI boundary).
SHAPE_CONTRACTS: Dict[str, ShapeContract] = {
    # Deferred-kernel staging: columns/values must be parallel 1-d
    # int64/float64 vectors (enqueue copies them, so views are fine).
    "enqueue": ShapeContract(
        qualname="repro.core.kern.PendingUpdates.enqueue",
        params=(
            ("matrix", None),
            ("pivot", None),
            ("scale", None),
            ("columns", _INT_VEC),
            ("values", ParamContract(ShapeInfo(("?",), "float64"))),
            ("rows", _INT_VEC),
        ),
    ),
    # Kernel flush: ``rows``/``starts`` cross the C ABI — they must be
    # owned, C-contiguous int64 (their ``.ctypes.data`` is read raw).
    "replay_rows": ShapeContract(
        qualname="repro.core.kern.KernelBackend.replay_rows",
        params=(
            ("matrix", None),
            ("rows", _INT_VEC_ABI),
            ("starts", _INT_VEC_ABI),
            ("pending", None),
        ),
    ),
    "_replay_batch": ShapeContract(
        qualname="repro.core.kern.PendingUpdates._replay_batch",
        params=(
            ("matrix", None),
            ("rows", _INT_VEC_ABI),
        ),
    ),
    "flush_rows": ShapeContract(
        qualname="repro.core.kern.PendingUpdates.flush_rows",
        params=(
            ("matrix", None),
            ("rows", _INT_VEC),
        ),
    ),
    # Candidate pipeline internals: the K-row plan vectors.
    "_feasibility": ShapeContract(
        qualname="repro.core.candidates.CandidateIndex._feasibility",
        params=(
            ("arrays", None),
            ("vm_rows", ParamContract(ShapeInfo(("K",), "int64"))),
            ("sources", ParamContract(ShapeInfo(("K",), "int64"))),
            ("mandatory", ParamContract(ShapeInfo(("K",), "bool"))),
        ),
    ),
    "_candidate_vm_rows": ShapeContract(
        qualname="repro.core.candidates.CandidateIndex._candidate_vm_rows",
        params=(
            ("arrays", None),
            ("overloaded", ParamContract(ShapeInfo(("M",), "bool"))),
            ("util", ParamContract(ShapeInfo(("M",), "float64"))),
        ),
    ),
}

#: ABI buffer attribute -> exact C-side dtype.  Every attribute listed
#: here may have ``.ctypes.data`` taken and handed to the compiled
#: kernel; MEGH021 requires each of its assignment sites to be a
#: provably owning, C-contiguous constructor (``np.empty/zeros/ones``
#: with this exact dtype) and records those sites as the certification
#: witness.  ``uint8`` entries are the C ``uint8_t*`` flag bytes
#: (``touched`` / ``cand``), declared here rather than silently allowed.
ABI_BUFFER_DTYPES: Mapping[str, str] = {
    # CKernel argument block and persistent scratch/output buffers.
    "_args": "int64",
    "_cmb_idx": "int64",
    "_cmb_val": "float64",
    "_cmb_entries": "float64",
    "_out_idx": "int64",
    "_out_val": "float64",
    "_add_idx": "int64",
    "_rem_idx": "int64",
    "_scratch_a_idx": "int64",
    "_scratch_a_val": "float64",
    "_scratch_b_idx": "int64",
    "_scratch_b_val": "float64",
    "_piv_sorted": "int64",
    "_piv_order": "int64",
    "_cand": "uint8",
    "_row_idx_ptrs": "int64",
    "_row_val_ptrs": "int64",
    "_row_lens": "int64",
    "_row_caps": "int64",
    "_new_lens": "int64",
    "_out_offsets": "int64",
    "_add_offsets": "int64",
    "_rem_offsets": "int64",
    "_touched": "uint8",
    "_stats": "int64",
    # PendingUpdates staging arrays (pointer slots refreshed per flush).
    "_pivots": "int64",
    "_scales": "float64",
    "_upd_offsets": "int64",
    "_cols_flat": "int64",
    "_vals_flat": "float64",
    "_pend_rows": "int64",
    "_one_row": "int64",
    "_one_start": "int64",
    "_two_rows": "int64",
    "_two_starts": "int64",
    # SparseMatrix row storage and implicit-diagonal store.
    "idx": "int64",
    "val": "float64",
    "_diag": "float64",
}
