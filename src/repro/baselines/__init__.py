"""Baseline schedulers the paper compares Megh against.

* the MMT dynamic-consolidation family (THR/IQR/MAD/LR/LRR detection,
  minimum-migration-time selection, power-aware best-fit placement)
  following Beloglazov & Buyya;
* MadVM, the approximate-MDP value-iteration scheduler;
* offline-trained tabular Q-learning;
* trivial no-op and random schedulers for calibration.
"""

from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.random_policy import RandomScheduler
from repro.baselines.madvm import MadVMScheduler
from repro.baselines.maxweight import MaxWeightScheduler
from repro.baselines.oracle import OracleScheduler
from repro.baselines.qlearning import QLearningScheduler
from repro.baselines.mmt.scheduler import MMTScheduler

__all__ = [
    "NoMigrationScheduler",
    "RandomScheduler",
    "MadVMScheduler",
    "MaxWeightScheduler",
    "OracleScheduler",
    "QLearningScheduler",
    "MMTScheduler",
]
