"""MadVM reimplementation (Han et al., INFOCOM 2016; Section 2.2).

MadVM models dynamic VM management as an *approximate MDP*: it discretizes
each VM's utilization into levels, learns an empirical (frequentist)
per-VM level-transition matrix, and at every step runs value iteration
over a per-VM state space to pick, for each VM simultaneously, the host
that maximizes its expected cumulative utility (negative expected power
increase and overload risk).

The reconstruction preserves the two properties the paper measures:

* the *decision rule* — per-VM expected-utility maximization over hosts
  using learned level dynamics, which migrates eagerly (many migrations)
  and converges slowly;
* the *computational profile* — per-step work of
  ``O(N x M x H x L^2)`` (VMs x hosts x horizon x levels squared) from the
  per-VM value iteration plus transition bookkeeping, which is what makes
  MadVM orders of magnitude slower than Megh and unable to scale.

Paper-faithful defaults: 10 utilization levels, horizon 5, gamma 0.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cloudsim.migration import Migration
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation


class LevelDynamics:
    """Empirical level-transition model for one VM.

    Laplace-smoothed counts over ``levels x levels``; rows are current
    levels, columns next levels.
    """

    def __init__(self, levels: int, smoothing: float = 1.0) -> None:
        if levels < 2:
            raise ConfigurationError("need at least 2 levels")
        if smoothing <= 0:
            raise ConfigurationError("smoothing must be > 0")
        self.levels = levels
        self.counts = np.full((levels, levels), smoothing, dtype=float)
        self._last_level: Optional[int] = None

    def level_of(self, utilization: float) -> int:
        """Discretize a utilization fraction into a level index."""
        clamped = min(1.0, max(0.0, utilization))
        return min(self.levels - 1, int(clamped * self.levels))

    def utilization_of(self, level: int) -> float:
        """Representative (mid-bin) utilization of a level."""
        return (level + 0.5) / self.levels

    def observe(self, utilization: float) -> None:
        """Record one sample, updating the transition counts."""
        level = self.level_of(utilization)
        if self._last_level is not None:
            self.counts[self._last_level, level] += 1.0
        self._last_level = level

    def transition_matrix(self) -> np.ndarray:
        """Row-normalized transition probabilities."""
        return self.counts / self.counts.sum(axis=1, keepdims=True)

    def expected_future_utilization(
        self, current_utilization: float, horizon: int, gamma: float
    ) -> float:
        """Discounted expected utilization over ``horizon`` steps.

        One value-iteration-style sweep: propagate the current level's
        distribution through the learned chain, accumulating the
        discounted expected mid-bin utilization.
        """
        matrix = self.transition_matrix()
        distribution = np.zeros(self.levels)
        distribution[self.level_of(current_utilization)] = 1.0
        mids = np.array(
            [self.utilization_of(level) for level in range(self.levels)]
        )
        total, weight = 0.0, 0.0
        for h in range(horizon):
            distribution = distribution @ matrix
            discount = gamma**h
            total += discount * float(distribution @ mids)
            weight += discount
        if weight <= 0.0:
            return current_utilization
        return total / weight

    def overload_probability(
        self, current_utilization: float, horizon: int, threshold: float
    ) -> float:
        """Probability the VM's own level exceeds ``threshold`` within
        the horizon (union bound over steps, capped at 1)."""
        matrix = self.transition_matrix()
        distribution = np.zeros(self.levels)
        distribution[self.level_of(current_utilization)] = 1.0
        over_levels = np.array(
            [self.utilization_of(level) > threshold for level in range(self.levels)]
        )
        probability = 0.0
        for _ in range(horizon):
            distribution = distribution @ matrix
            probability += float(distribution @ over_levels)
        return min(1.0, probability)


class MadVMScheduler:
    """Approximate-MDP value-iteration scheduler.

    Args:
        num_vms / num_pms: fleet size (for bookkeeping allocation).
        levels: utilization discretization (paper-style default 10).
        horizon: value-iteration lookahead.
        gamma: discount factor (matched to Megh's 0.5 in the experiments).
        beta: host overload threshold for the risk term.
        overload_penalty: utility penalty per unit overload probability,
            in watts-equivalent units.
        qos_weight: utility penalty (watts-equivalent) per unit of
            projected destination utilization.  MadVM maximizes each VM's
            *own* expected QoS, so VMs prefer lightly loaded hosts; this
            term is what makes MadVM spread VMs across many active hosts
            (the behaviour Figures 4(c)/5(c) report) at the price of
            energy.
        migration_gain_threshold: minimum utility improvement (watts)
            required to migrate — MadVM migrates eagerly, so keep small.
        max_migration_fraction: per-step migration cap.
        seed: tie-breaking RNG seed.
    """

    name = "MadVM"

    def __init__(
        self,
        num_vms: int,
        num_pms: int,
        levels: int = 10,
        horizon: int = 5,
        gamma: float = 0.5,
        beta: float = 0.70,
        overload_penalty: float = 100.0,
        qos_weight: float = 3000.0,
        migration_gain_threshold: float = 0.0,
        max_migration_fraction: float = 0.10,
        seed: int = 0,
    ) -> None:
        if num_vms < 1 or num_pms < 1:
            raise ConfigurationError("need at least one VM and one PM")
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        if not 0 < max_migration_fraction <= 1:
            raise ConfigurationError("migration cap must be in (0, 1]")
        self.num_vms = num_vms
        self.num_pms = num_pms
        self.horizon = horizon
        self.gamma = gamma
        self.beta = beta
        self.overload_penalty = overload_penalty
        self.qos_weight = qos_weight
        self.migration_gain_threshold = migration_gain_threshold
        self.max_migration_fraction = max_migration_fraction
        self.dynamics: Dict[int, LevelDynamics] = {
            vm_id: LevelDynamics(levels) for vm_id in range(num_vms)
        }
        self._rng = np.random.default_rng(seed)

    @classmethod
    def from_simulation(cls, simulation, **kwargs) -> "MadVMScheduler":
        """Build a MadVM agent sized to match a simulation."""
        kwargs.setdefault(
            "beta", simulation.config.datacenter.overload_threshold
        )
        return cls(
            num_vms=simulation.datacenter.num_vms,
            num_pms=simulation.datacenter.num_pms,
            **kwargs,
        )

    def decide(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        # Frequentist bookkeeping for every VM, every step (this, plus the
        # per-VM value iteration below, is MadVM's computational burden).
        for vm in datacenter.vms:
            self.dynamics[vm.vm_id].observe(vm.demanded_utilization)

        proposals: List[tuple[float, Migration]] = []
        for vm in datacenter.vms:
            if not vm.is_active:
                continue
            source = datacenter.host_of(vm.vm_id)
            if source is None:
                continue
            model = self.dynamics[vm.vm_id]
            expected_util = model.expected_future_utilization(
                vm.demanded_utilization, self.horizon, self.gamma
            )
            expected_mips = expected_util * vm.mips
            current_cost = self._hosting_cost(
                datacenter, vm.vm_id, source, expected_mips, model,
                vm.demanded_utilization, removing=False,
            )
            best_pm, best_cost = source, current_cost
            for pm in datacenter.pms:
                if pm.pm_id == source:
                    continue
                if not datacenter.fits(vm.vm_id, pm.pm_id):
                    continue
                cost = self._hosting_cost(
                    datacenter, vm.vm_id, pm.pm_id, expected_mips, model,
                    vm.demanded_utilization, removing=True,
                )
                if cost < best_cost:
                    best_cost, best_pm = cost, pm.pm_id
            gain = current_cost - best_cost
            if best_pm != source and gain > self.migration_gain_threshold:
                proposals.append(
                    (gain, Migration(vm_id=vm.vm_id, dest_pm_id=best_pm))
                )

        proposals.sort(key=lambda pair: -pair[0])
        cap = max(1, int(self.max_migration_fraction * self.num_vms))
        return [migration for _, migration in proposals[:cap]]

    def _hosting_cost(
        self,
        datacenter,
        vm_id: int,
        pm_id: int,
        expected_mips: float,
        model: LevelDynamics,
        current_utilization: float,
        removing: bool,
    ) -> float:
        """Expected utility cost of VM ``vm_id`` living on host ``pm_id``.

        Power draw attributable to the VM's expected demand plus an
        overload-risk penalty from the learned level dynamics.  When
        ``removing`` the VM currently sits elsewhere, so the host's
        background demand is taken as-is; otherwise the VM's own demand is
        subtracted from the background first.
        """
        pm = datacenter.pm(pm_id)
        background = datacenter.demanded_mips(pm_id)
        if not removing:
            background -= datacenter.vm(vm_id).demanded_mips
        background = max(0.0, background)
        before = min(1.0, background / pm.mips)
        after = min(1.0, (background + expected_mips) / pm.mips)
        power_cost = pm.power_model.power(after) - pm.power_model.power(
            max(0.0, before)
        )
        if pm.asleep:
            power_cost += pm.power_model.power(0.0)
        headroom = self.beta - background / pm.mips
        vm_threshold = max(
            0.0, min(1.0, headroom * pm.mips / datacenter.vm(vm_id).mips)
        )
        risk = model.overload_probability(
            current_utilization, self.horizon, vm_threshold
        )
        # Per-VM QoS utility: the VM prefers the host whose projected
        # utilization leaves it the most headroom.  This is the
        # spread-inducing term of MadVM's per-VM objective.
        qos_cost = self.qos_weight * after
        return power_cost + self.overload_penalty * risk + qos_cost
