"""MaxWeight scheduler — the knowledge-based contender class (Section 2.1).

Maguluri, Srikant & Ying's MaxWeight algorithms (paper reference [7])
are frame-based configuration policies: at the start of each frame the
scheduler picks the feasible VM-to-host configuration maximizing the sum
of queue-length-weighted service rates.  They are throughput-optimal
*given their model* — jobs arriving to per-type queues — which is
exactly the knowledge the Megh paper criticises them for needing: the
policy is "oblivious to the specifics and the dynamics of Cloud
architectures and applications that do not belong to their knowledge-base".

This adaptation maps the idea onto the live-migration setting: each
host's *backlog* is its unmet CPU demand (demand above capacity, the
queue build-up), and each frame the scheduler greedily reassigns VMs
from the most backlogged hosts to the hosts offering the largest spare
service rate — the weight being ``backlog x freed service``.  Between
frames the configuration is frozen (frame-based non-preemptive service),
so bursts inside a frame go unanswered: the model mismatch the paper
predicts.
"""

from __future__ import annotations

from typing import List

from repro.cloudsim.migration import Migration
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation


class MaxWeightScheduler:
    """Frame-based MaxWeight configuration policy.

    Args:
        frame_length: steps between reconfigurations (frame size).
        moves_per_frame: reassignments evaluated per reconfiguration.
        beta: utilization level treated as each host's service capacity
            for backlog purposes (matching the SLA threshold).
    """

    name = "MaxWeight"

    def __init__(
        self,
        frame_length: int = 6,
        moves_per_frame: int = 4,
        beta: float = 0.70,
    ) -> None:
        if frame_length < 1:
            raise ConfigurationError("frame length must be >= 1")
        if moves_per_frame < 1:
            raise ConfigurationError("moves per frame must be >= 1")
        if not 0 < beta <= 1:
            raise ConfigurationError("beta must be in (0, 1]")
        self.frame_length = frame_length
        self.moves_per_frame = moves_per_frame
        self.beta = beta

    def _backlog_mips(self, datacenter, pm_id: int) -> float:
        """Unmet demand above the host's beta service level."""
        capacity = self.beta * datacenter.pm(pm_id).mips
        return max(0.0, datacenter.demanded_mips(pm_id) - capacity)

    def _spare_mips(self, datacenter, pm_id: int) -> float:
        """Service the host can still offer below its beta level."""
        capacity = self.beta * datacenter.pm(pm_id).mips
        return max(0.0, capacity - datacenter.demanded_mips(pm_id))

    def decide(self, observation: Observation) -> List[Migration]:
        if observation.step % self.frame_length != 0:
            return []  # frozen inside the frame
        datacenter = observation.datacenter
        migrations: List[Migration] = []
        pending_spare = {
            pm.pm_id: self._spare_mips(datacenter, pm.pm_id)
            for pm in datacenter.pms
        }
        pending_backlog = {
            pm.pm_id: self._backlog_mips(datacenter, pm.pm_id)
            for pm in datacenter.pms
        }
        moved = set()
        for _ in range(self.moves_per_frame):
            best_weight = 0.0
            best: Migration | None = None
            best_demand = 0.0
            for pm_id, backlog in pending_backlog.items():
                if backlog <= 0.0:
                    continue
                for vm_id in datacenter.vms_on(pm_id):
                    if vm_id in moved:
                        continue
                    vm = datacenter.vm(vm_id)
                    if not vm.is_active or vm.demanded_mips <= 0.0:
                        continue
                    for dest, spare in pending_spare.items():
                        if dest == pm_id:
                            continue
                        if vm.demanded_mips > spare:
                            continue
                        if not datacenter.fits(vm_id, dest):
                            continue
                        freed = min(vm.demanded_mips, backlog)
                        weight = backlog * freed
                        if weight > best_weight:
                            best_weight = weight
                            best = Migration(vm_id=vm_id, dest_pm_id=dest)
                            best_demand = vm.demanded_mips
            if best is None:
                break
            migrations.append(best)
            moved.add(best.vm_id)
            source = observation.datacenter.host_of(best.vm_id)
            pending_backlog[source] = max(
                0.0, pending_backlog[source] - best_demand
            )
            pending_spare[best.dest_pm_id] -= best_demand
        return migrations
