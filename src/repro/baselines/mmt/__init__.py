"""The MMT dynamic-consolidation family (Beloglazov & Buyya).

Three pluggable stages: overload *detection* (THR, IQR, MAD, LR, LRR),
VM *selection* (minimum migration time, plus random and highest-demand
variants), and *placement* (power-aware best-fit decreasing).
"""

from repro.baselines.mmt.detection import (
    IqrDetector,
    LocalRegressionDetector,
    MadDetector,
    OverloadDetector,
    RobustLocalRegressionDetector,
    ThresholdDetector,
    make_detector,
)
from repro.baselines.mmt.selection import (
    HighestDemandSelection,
    MinimumMigrationTimeSelection,
    RandomSelection,
    VmSelectionPolicy,
)
from repro.baselines.mmt.placement import power_aware_best_fit
from repro.baselines.mmt.scheduler import MMTScheduler

__all__ = [
    "OverloadDetector",
    "ThresholdDetector",
    "IqrDetector",
    "MadDetector",
    "LocalRegressionDetector",
    "RobustLocalRegressionDetector",
    "make_detector",
    "VmSelectionPolicy",
    "MinimumMigrationTimeSelection",
    "RandomSelection",
    "HighestDemandSelection",
    "power_aware_best_fit",
    "MMTScheduler",
]
