"""Host-overload detection policies of the MMT family.

Each detector decides whether a host is (about to be) overloaded from its
recent utilization history:

* **THR** — fixed utilization threshold;
* **IQR** — adaptive threshold ``1 - s * IQR(history)``;
* **MAD** — adaptive threshold ``1 - s * MAD(history)``;
* **LR** — local (least-squares) regression extrapolates the next
  utilization; overload if ``safety * prediction >= 1``;
* **LRR** — the same with iteratively re-weighted (bisquare) robust
  regression.

Parameters follow Beloglazov & Buyya's defaults (IQR s=1.5, MAD s=2.5,
LR/LRR safety=1.2, window of 10–12 samples).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.cloudsim.monitor import (
    interquartile_range,
    median_absolute_deviation,
)
from repro.errors import ConfigurationError


class OverloadDetector(Protocol):
    """Decides host overload from a utilization history (oldest first)."""

    name: str

    def is_overloaded(self, history: Sequence[float]) -> bool:
        ...

    def threshold(self, history: Sequence[float]) -> float:
        """Effective utilization threshold implied by the history."""
        ...


class ThresholdDetector:
    """THR: overload when current utilization exceeds a fixed threshold.

    The default matches the paper's beta = 70 % overload threshold so the
    detector fires exactly when SLA violations start accruing.
    """

    def __init__(self, utilization_threshold: float = 0.7) -> None:
        if not 0 < utilization_threshold <= 1:
            raise ConfigurationError("threshold must be in (0, 1]")
        self.utilization_threshold = utilization_threshold
        self.name = "THR"

    def threshold(self, history: Sequence[float]) -> float:
        return self.utilization_threshold

    def is_overloaded(self, history: Sequence[float]) -> bool:
        if not history:
            return False
        return history[-1] > self.utilization_threshold


class _AdaptiveDetector:
    """Shared shape of the IQR and MAD adaptive-threshold detectors.

    ``max_threshold`` caps the adaptive value: a detector that tolerates
    more utilization than the SLA's overload threshold would knowingly sit
    in the violation band, so the cap defaults to the paper's beta.
    """

    #: Never let the adaptive threshold collapse below this floor.
    MIN_THRESHOLD = 0.05

    def __init__(
        self,
        safety: float,
        fallback_threshold: float = 0.7,
        max_threshold: float = 0.7,
    ) -> None:
        if safety <= 0:
            raise ConfigurationError("safety parameter must be > 0")
        if not 0 < fallback_threshold <= 1:
            raise ConfigurationError("fallback threshold must be in (0, 1]")
        if not 0 < max_threshold <= 1:
            raise ConfigurationError("max threshold must be in (0, 1]")
        self.safety = safety
        self.fallback_threshold = fallback_threshold
        self.max_threshold = max_threshold

    def _dispersion(self, history: Sequence[float]) -> float:
        raise NotImplementedError

    def threshold(self, history: Sequence[float]) -> float:
        if len(history) < 3:
            return self.fallback_threshold
        value = 1.0 - self.safety * self._dispersion(history)
        return max(self.MIN_THRESHOLD, min(self.max_threshold, value))

    def is_overloaded(self, history: Sequence[float]) -> bool:
        if not history:
            return False
        return history[-1] > self.threshold(history)


class IqrDetector(_AdaptiveDetector):
    """IQR: threshold ``1 - s * interquartile range`` (default s = 1.5)."""

    def __init__(
        self,
        safety: float = 1.5,
        fallback_threshold: float = 0.7,
        max_threshold: float = 0.7,
    ):
        super().__init__(safety, fallback_threshold, max_threshold)
        self.name = "IQR"

    def _dispersion(self, history: Sequence[float]) -> float:
        return interquartile_range(history)


class MadDetector(_AdaptiveDetector):
    """MAD: threshold ``1 - s * median absolute deviation`` (s = 2.5)."""

    def __init__(
        self,
        safety: float = 2.5,
        fallback_threshold: float = 0.7,
        max_threshold: float = 0.7,
    ):
        super().__init__(safety, fallback_threshold, max_threshold)
        self.name = "MAD"

    def _dispersion(self, history: Sequence[float]) -> float:
        return median_absolute_deviation(history)


def _least_squares_fit(ys: Sequence[float]) -> tuple[float, float]:
    """Fit ``y = a + b x`` over ``x = 0..len-1``; returns ``(a, b)``."""
    n = len(ys)
    xs = range(n)
    mean_x = (n - 1) / 2.0
    mean_y = sum(ys) / n
    den = sum((x - mean_x) ** 2 for x in xs)
    if den <= 0.0:
        return (mean_y, 0.0)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = num / den
    return (mean_y - slope * mean_x, slope)


def _weighted_fit(
    ys: Sequence[float], weights: Sequence[float]
) -> tuple[float, float]:
    """Weighted least squares ``y = a + b x`` over ``x = 0..len-1``."""
    total = sum(weights)
    if total <= 0.0:
        return _least_squares_fit(ys)
    xs = range(len(ys))
    mean_x = sum(w * x for w, x in zip(weights, xs)) / total
    mean_y = sum(w * y for w, y in zip(weights, ys)) / total
    den = sum(w * (x - mean_x) ** 2 for w, x in zip(weights, xs))
    if den <= 0.0:
        return (mean_y, 0.0)
    num = sum(
        w * (x - mean_x) * (y - mean_y)
        for w, x, y in zip(weights, xs, ys)
    )
    slope = num / den
    return (mean_y - slope * mean_x, slope)


class LocalRegressionDetector:
    """LR: linear extrapolation of the history predicts the next sample."""

    def __init__(
        self,
        safety: float = 1.2,
        fallback_threshold: float = 0.7,
        min_history: int = 4,
        trigger_utilization: float = 0.7,
    ) -> None:
        if safety <= 0:
            raise ConfigurationError("safety must be > 0")
        if min_history < 2:
            raise ConfigurationError("min_history must be >= 2")
        if not 0 < trigger_utilization <= 1:
            raise ConfigurationError("trigger utilization must be in (0, 1]")
        self.safety = safety
        self.fallback_threshold = fallback_threshold
        self.min_history = min_history
        self.trigger_utilization = trigger_utilization
        self.name = "LR"

    def _predict_next(self, history: Sequence[float]) -> float:
        intercept, slope = _least_squares_fit(history)
        return intercept + slope * len(history)

    def threshold(self, history: Sequence[float]) -> float:
        return self.fallback_threshold

    def is_overloaded(self, history: Sequence[float]) -> bool:
        if len(history) < self.min_history:
            return bool(history) and history[-1] > self.fallback_threshold
        prediction = self._predict_next(history)
        return self.safety * prediction >= self.trigger_utilization


class RobustLocalRegressionDetector(LocalRegressionDetector):
    """LRR: iteratively re-weighted (bisquare) robust local regression."""

    def __init__(
        self,
        safety: float = 1.2,
        fallback_threshold: float = 0.7,
        min_history: int = 4,
        trigger_utilization: float = 0.7,
        iterations: int = 2,
    ) -> None:
        super().__init__(
            safety, fallback_threshold, min_history, trigger_utilization
        )
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.iterations = iterations
        self.name = "LRR"

    def _predict_next(self, history: Sequence[float]) -> float:
        intercept, slope = _least_squares_fit(history)
        for _ in range(self.iterations):
            residuals = [
                y - (intercept + slope * x) for x, y in enumerate(history)
            ]
            scale = 6.0 * _median_abs(residuals)
            if scale <= 0.0:
                break
            weights = [_bisquare(r / scale) for r in residuals]
            intercept, slope = _weighted_fit(history, weights)
        return intercept + slope * len(history)


def _median_abs(values: Sequence[float]) -> float:
    ordered = sorted(abs(v) for v in values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _bisquare(u: float) -> float:
    if abs(u) >= 1.0:
        return 0.0
    return (1.0 - u * u) ** 2


#: The five detectors evaluated by the paper, by MMT-variant name.
DETECTOR_NAMES = ("THR", "IQR", "MAD", "LR", "LRR")


def make_detector(name: str, **kwargs) -> OverloadDetector:
    """Build a detector by its paper name (case-insensitive)."""
    registry = {
        "THR": ThresholdDetector,
        "IQR": IqrDetector,
        "MAD": MadDetector,
        "LR": LocalRegressionDetector,
        "LRR": RobustLocalRegressionDetector,
    }
    key = name.upper()
    if key not in registry:
        raise ConfigurationError(
            f"unknown detector {name!r}; choose from {sorted(registry)}"
        )
    return registry[key](**kwargs)
