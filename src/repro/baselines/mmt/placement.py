"""Power-aware best-fit-decreasing placement (PABFD).

Given VMs to place, PABFD sorts them by CPU demand (decreasing) and puts
each on the host whose power draw increases the least, among hosts with
enough free RAM whose post-placement utilization stays under the safety
threshold.  This is the placement stage shared by every MMT variant.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cloudsim.datacenter import Datacenter


def power_increase(
    datacenter: Datacenter,
    pm_id: int,
    extra_mips: float,
    pending_mips: float = 0.0,
) -> float:
    """Watts added to a host by ``extra_mips`` more demand.

    ``pending_mips`` accounts for demand already promised to the host by
    earlier placements within the same planning round.
    """
    pm = datacenter.pm(pm_id)
    before = min(
        1.0, (datacenter.demanded_mips(pm_id) + pending_mips) / pm.mips
    )
    after = min(
        1.0,
        (datacenter.demanded_mips(pm_id) + pending_mips + extra_mips)
        / pm.mips,
    )
    wake_cost = pm.power_model.power(0.0) if pm.asleep else 0.0
    return (
        pm.power_model.power(after) - pm.power_model.power(before) + wake_cost
    )


def power_aware_best_fit(
    datacenter: Datacenter,
    vm_ids: Iterable[int],
    threshold: float,
    excluded_hosts: Sequence[int] = (),
) -> Dict[int, int]:
    """Plan destinations for ``vm_ids`` (PABFD).

    Returns a partial ``vm_id -> pm_id`` map: VMs for which no feasible
    host exists are simply absent (they stay where they are).  The plan
    respects RAM capacity and keeps every destination's demanded
    utilization at or below ``threshold``, accounting for VMs placed
    earlier in the same plan.
    """
    arrays = getattr(datacenter, "arrays", None)
    if arrays is None:
        # Reference object-model backend (no struct-of-arrays store):
        # keep the historical per-PM scan.
        return _power_aware_best_fit_scalar(
            datacenter, vm_ids, threshold, excluded_hosts
        )
    plan: Dict[int, int] = {}
    num_pms = arrays.num_pms
    # Planning never mutates placement, so the per-PM vectors are loop
    # invariants; only the pending-commitment vectors evolve.  The float
    # arithmetic mirrors the historical per-PM scan operand for operand
    # (``(demand + pending) + vm_demand``, ``free − pending``), so the
    # planned map is bit-identical to the scalar version's.
    ram_free = arrays.pm_ram_free_mb()
    pm_demand = arrays.pm_demand_mips()
    budget = threshold * arrays.pm_mips
    blocked = np.zeros(num_pms, dtype=bool)
    for pm_id in excluded_hosts:
        blocked[pm_id] = True
    pending_mips = np.zeros(num_pms, dtype=np.float64)
    pending_ram = np.zeros(num_pms, dtype=np.float64)
    ordered = sorted(
        vm_ids, key=lambda vm_id: -datacenter.vm(vm_id).demanded_mips
    )
    for vm_id in ordered:
        vm = datacenter.vm(vm_id)
        source = datacenter.host_of(vm_id)
        feasible = (
            ~blocked
            & (vm.ram_mb <= ram_free - pending_ram)
            & ((pm_demand + pending_mips) + vm.demanded_mips <= budget)
        )
        if source is not None:
            feasible[source] = False
        best_pm: Optional[int] = None
        best_increase = float("inf")
        # The power model stays scalar: only the (few) feasible hosts
        # reach it, in ascending id order with a strict `<` so the first
        # minimiser wins — exactly the historical scan.
        for pm_id in np.flatnonzero(feasible).tolist():
            increase = power_increase(
                datacenter, pm_id, vm.demanded_mips, float(pending_mips[pm_id])
            )
            if increase < best_increase:
                best_increase = increase
                best_pm = pm_id
        if best_pm is not None:
            plan[vm_id] = best_pm
            pending_mips[best_pm] += vm.demanded_mips
            pending_ram[best_pm] += vm.ram_mb
    return plan


def _power_aware_best_fit_scalar(
    datacenter,
    vm_ids: Iterable[int],
    threshold: float,
    excluded_hosts: Sequence[int] = (),
) -> Dict[int, int]:
    """Per-PM PABFD scan for backends without ``DatacenterArrays``."""
    excluded = set(excluded_hosts)
    plan: Dict[int, int] = {}
    pending_mips: Dict[int, float] = {}
    pending_ram: Dict[int, float] = {}
    ordered = sorted(
        vm_ids, key=lambda vm_id: -datacenter.vm(vm_id).demanded_mips
    )
    for vm_id in ordered:
        vm = datacenter.vm(vm_id)
        source = datacenter.host_of(vm_id)
        best_pm: Optional[int] = None
        best_increase = float("inf")
        for pm in datacenter.pms:
            pm_id = pm.pm_id
            if pm_id in excluded or pm_id == source:
                continue
            free_ram = datacenter.ram_free_mb(pm_id) - pending_ram.get(
                pm_id, 0.0
            )
            if vm.ram_mb > free_ram:
                continue
            demand_after = (
                datacenter.demanded_mips(pm_id)
                + pending_mips.get(pm_id, 0.0)
                + vm.demanded_mips
            )
            if demand_after > threshold * pm.mips:
                continue
            increase = power_increase(
                datacenter, pm_id, vm.demanded_mips, pending_mips.get(pm_id, 0.0)
            )
            if increase < best_increase:
                best_increase = increase
                best_pm = pm_id
        if best_pm is not None:
            plan[vm_id] = best_pm
            pending_mips[best_pm] = (
                pending_mips.get(best_pm, 0.0) + vm.demanded_mips
            )
            pending_ram[best_pm] = pending_ram.get(best_pm, 0.0) + vm.ram_mb
    return plan


def hosts_by_utilization(datacenter: Datacenter) -> List[int]:
    """Active hosts ordered by demanded utilization, least loaded first.

    One masked stable argsort — ties keep ascending host-id order, the
    same as the historical stable ``sorted`` over ``active_pm_ids()``.
    """
    arrays = getattr(datacenter, "arrays", None)
    if arrays is None:
        return sorted(
            datacenter.active_pm_ids(),
            key=lambda pm_id: datacenter.demanded_utilization(pm_id),
        )
    active = np.flatnonzero(arrays.active_pm_mask())
    util = arrays.pm_demand_utilization()
    return active[np.argsort(util[active], kind="stable")].tolist()
