"""The complete MMT dynamic-consolidation scheduler.

Per step, exactly as in Beloglazov & Buyya's two-phase loop:

1. **Overload relief** — for every host the detector flags, evict VMs in
   selection order (MMT by default) until the host's projected
   utilization drops below the detector's threshold; destinations come
   from PABFD.
2. **Underload consolidation** — visit non-overloaded active hosts from
   least loaded upwards; if *all* of a host's VMs can be placed elsewhere
   (without overloading the destinations), migrate them all so the host
   can sleep.

The greedy, per-step nature of both phases is what produces the high
migration counts and cost variance the paper contrasts Megh with.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cloudsim.migration import Migration
from repro.baselines.mmt.detection import OverloadDetector, make_detector
from repro.baselines.mmt.placement import (
    hosts_by_utilization,
    power_aware_best_fit,
)
from repro.baselines.mmt.selection import (
    MinimumMigrationTimeSelection,
    VmSelectionPolicy,
)
from repro.mdp.interfaces import Observation


class MMTScheduler:
    """An MMT-family scheduler: ``<detector>-MMT``.

    Args:
        detector: overload-detection policy, or a paper name
            ("THR", "IQR", "MAD", "LR", "LRR").
        selection: VM-selection policy (default minimum migration time).
        placement_threshold: destination hosts are filled at most to this
            demanded-utilization fraction.
        consolidate: run the underload-consolidation phase.
        underload_threshold: hosts at or below this utilization are
            consolidation sources.
    """

    def __init__(
        self,
        detector: OverloadDetector | str = "THR",
        selection: Optional[VmSelectionPolicy] = None,
        placement_threshold: float = 0.70,
        consolidate: bool = True,
        underload_threshold: float = 0.25,
        **detector_kwargs,
    ) -> None:
        if isinstance(detector, str):
            detector = make_detector(detector, **detector_kwargs)
        elif detector_kwargs:
            raise TypeError(
                "detector kwargs only apply when building by name"
            )
        self.detector = detector
        self.selection = selection or MinimumMigrationTimeSelection()
        self.placement_threshold = placement_threshold
        self.consolidate = consolidate
        self.underload_threshold = underload_threshold
        self.name = f"{detector.name}-{self.selection.name}"

    def decide(self, observation: Observation) -> List[Migration]:
        # History-based selection policies (MC) bind to the simulation's
        # monitor on first use.
        if getattr(self.selection, "monitor", ...) is None:
            self.selection.monitor = observation.monitor
        migrations = self._relieve_overloads(observation)
        if self.consolidate:
            migrations.extend(self._consolidate_underloads(observation))
        return migrations

    # ------------------------------------------------------------------
    def _relieve_overloads(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        monitor = observation.monitor
        to_place: List[int] = []
        overloaded_hosts: List[int] = []
        for pm_id in datacenter.active_pm_ids():
            history = monitor.host_history(pm_id)
            if not self.detector.is_overloaded(history):
                continue
            overloaded_hosts.append(pm_id)
            threshold = self.detector.threshold(history)
            pm = datacenter.pm(pm_id)
            demand = datacenter.demanded_mips(pm_id)
            candidates = self.selection.select(
                datacenter, sorted(datacenter.vms_on(pm_id))
            )
            for vm_id in candidates:
                if demand <= threshold * pm.mips:
                    break
                to_place.append(vm_id)
                demand -= datacenter.vm(vm_id).demanded_mips
        if not to_place:
            return []
        plan = power_aware_best_fit(
            datacenter,
            to_place,
            threshold=self.placement_threshold,
            excluded_hosts=overloaded_hosts,
        )
        return [
            Migration(vm_id=vm_id, dest_pm_id=pm_id)
            for vm_id, pm_id in plan.items()
        ]

    # ------------------------------------------------------------------
    def _consolidate_underloads(
        self, observation: Observation
    ) -> List[Migration]:
        datacenter = observation.datacenter
        monitor = observation.monitor
        migrations: List[Migration] = []
        evacuated: List[int] = []
        for pm_id in hosts_by_utilization(datacenter):
            utilization = datacenter.demanded_utilization(pm_id)
            if utilization > self.underload_threshold:
                break
            history = monitor.host_history(pm_id)
            if self.detector.is_overloaded(history):
                continue
            vm_ids = sorted(datacenter.vms_on(pm_id))
            if not vm_ids:
                continue
            plan = power_aware_best_fit(
                datacenter,
                vm_ids,
                threshold=self.placement_threshold,
                excluded_hosts=[pm_id, *evacuated],
            )
            if len(plan) != len(vm_ids):
                # Only evacuate a host when *every* VM can leave;
                # otherwise the host stays awake and the moves are wasted.
                continue
            evacuated.append(pm_id)
            migrations.extend(
                Migration(vm_id=vm_id, dest_pm_id=dest)
                for vm_id, dest in plan.items()
            )
        return migrations
