"""VM selection policies: which VM to evict from an overloaded host.

The paper's contenders all use **Minimum Migration Time** selection: evict
the VM whose migration finishes fastest (``ram / bandwidth``), repeating
until the host drops below the threshold.  Random and highest-demand
selection are provided for ablations.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.errors import ConfigurationError


class VmSelectionPolicy(Protocol):
    """Orders candidate VMs for eviction from a host."""

    name: str

    def select(
        self, datacenter: Datacenter, vm_ids: Sequence[int]
    ) -> List[int]:
        """Return the candidates in eviction order (best first)."""
        ...


class MinimumMigrationTimeSelection:
    """MMT: evict the VM with the smallest migration time first."""

    name = "MMT"

    def select(
        self, datacenter: Datacenter, vm_ids: Sequence[int]
    ) -> List[int]:
        return sorted(
            vm_ids,
            key=lambda vm_id: datacenter.vm(vm_id).migration_time_seconds(),
        )


class HighestDemandSelection:
    """Evict the most CPU-hungry VM first — relieves overload fastest."""

    name = "HighestDemand"

    def select(
        self, datacenter: Datacenter, vm_ids: Sequence[int]
    ) -> List[int]:
        return sorted(
            vm_ids,
            key=lambda vm_id: -datacenter.vm(vm_id).demanded_mips,
        )


class MaximumCorrelationSelection:
    """MC: evict the VM most correlated with its host's total load.

    Beloglazov & Buyya's Maximum Correlation policy: the VM whose
    utilization history correlates most with the aggregate is the one
    driving the host's peaks, so removing it de-risks the host most.
    Needs a monitor for the histories; falls back to highest demand when
    histories are too short.
    """

    name = "MC"

    def __init__(self, monitor=None, min_history: int = 4) -> None:
        if min_history < 2:
            raise ConfigurationError("min_history must be >= 2")
        self.monitor = monitor
        self.min_history = min_history

    def _correlation(self, xs: Sequence[float], ys: Sequence[float]) -> float:
        n = min(len(xs), len(ys))
        if n < 2:
            return 0.0
        xs, ys = list(xs[-n:]), list(ys[-n:])
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x <= 0.0 or var_y <= 0.0:
            return 0.0
        return cov / (var_x * var_y) ** 0.5

    def select(
        self, datacenter: Datacenter, vm_ids: Sequence[int]
    ) -> List[int]:
        if self.monitor is None:
            return HighestDemandSelection().select(datacenter, vm_ids)
        host_ids = {datacenter.host_of(vm_id) for vm_id in vm_ids}
        host_histories = {
            pm_id: self.monitor.host_history(pm_id) for pm_id in host_ids
        }
        scores = {}
        for vm_id in vm_ids:
            history = self.monitor.vm_history(vm_id)
            host_history = host_histories.get(datacenter.host_of(vm_id), [])
            if len(history) < self.min_history:
                scores[vm_id] = -2.0  # last resort
            else:
                scores[vm_id] = self._correlation(history, host_history)
        return sorted(vm_ids, key=lambda vm_id: -scores[vm_id])


class RandomSelection:
    """Evict uniformly at random (the RS policy of Beloglazov & Buyya)."""

    name = "RS"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def select(
        self, datacenter: Datacenter, vm_ids: Sequence[int]
    ) -> List[int]:
        order = list(vm_ids)
        self._rng.shuffle(order)
        return order


def make_selection(name: str, **kwargs) -> VmSelectionPolicy:
    """Build a selection policy by name."""
    registry = {
        "MMT": MinimumMigrationTimeSelection,
        "RS": RandomSelection,
        "MC": MaximumCorrelationSelection,
        "HIGHESTDEMAND": HighestDemandSelection,
    }
    key = name.upper()
    if key not in registry:
        raise ConfigurationError(
            f"unknown selection {name!r}; choose from {sorted(registry)}"
        )
    return registry[key](**kwargs)
