"""Baseline that never migrates — the static-allocation floor."""

from __future__ import annotations

from typing import List

from repro.cloudsim.migration import Migration
from repro.mdp.interfaces import Observation


class NoMigrationScheduler:
    """Keeps the initial placement forever.

    Useful as a calibration point: any consolidation scheduler should beat
    it on energy for light workloads, and any overload-relief scheduler
    should beat it on SLA for heavy workloads.
    """

    name = "NoMigration"

    def decide(self, observation: Observation) -> List[Migration]:
        return []
