"""Clairvoyant one-step-lookahead oracle.

Dertouzos & Mok (paper reference [40]) prove optimal online scheduling
is impossible without knowledge of the future — which makes a
*clairvoyant* scheduler the natural reference point: it reads the next
interval's demands straight from the trace and packs against them, so
it never reacts late to a burst.  No online scheduler can use more
information, so its cost anchors regret analysis
(:func:`repro.harness.regret.regret_curve`) for Megh and the heuristics.

This oracle is deliberately simple (one-step lookahead + PABFD packing
under the overload threshold); it is a strong reference, not a true
offline optimum.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.mmt.placement import power_aware_best_fit
from repro.cloudsim.migration import Migration
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation
from repro.workloads.base import Workload


class OracleScheduler:
    """Relieves *tomorrow's* overloads today.

    Args:
        workload: the trace being replayed — the clairvoyance.
        beta: overload threshold to pack under.
        placement_threshold: PABFD fill cap for destinations.
        max_moves_per_step: migration budget (matched to Megh's cap by
            default for a fair comparison).
    """

    name = "Oracle"

    def __init__(
        self,
        workload: Workload,
        beta: float = 0.70,
        placement_threshold: float = 0.5,
        max_moves_per_step: Optional[int] = None,
    ) -> None:
        if not 0 < beta <= 1:
            raise ConfigurationError("beta must be in (0, 1]")
        if not 0 < placement_threshold <= 1:
            raise ConfigurationError("placement threshold must be in (0, 1]")
        if max_moves_per_step is not None and max_moves_per_step < 1:
            raise ConfigurationError("move budget must be >= 1")
        self.workload = workload
        self.beta = beta
        self.placement_threshold = placement_threshold
        self.max_moves_per_step = max_moves_per_step

    @classmethod
    def from_simulation(cls, simulation, **kwargs) -> "OracleScheduler":
        """Build an oracle bound to the simulation's own trace."""
        kwargs.setdefault(
            "beta", simulation.config.datacenter.overload_threshold
        )
        kwargs.setdefault(
            "max_moves_per_step",
            max(1, int(0.02 * simulation.datacenter.num_vms)),
        )
        return cls(simulation.workload, **kwargs)

    def _future_demand_mips(self, datacenter, vm_id: int, step: int) -> float:
        future = min(step + 1, self.workload.num_steps - 1)
        vm = datacenter.vm(vm_id)
        if not self.workload.is_active(vm_id, future):
            return 0.0
        return self.workload.utilization(vm_id, future) * vm.mips

    def decide(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        step = observation.step
        # Project each host's demand one step ahead.
        future_demand = {
            pm.pm_id: sum(
                self._future_demand_mips(datacenter, vm_id, step)
                for vm_id in datacenter.vms_on(pm.pm_id)
            )
            for pm in datacenter.pms
        }
        to_move: List[int] = []
        excluded: List[int] = []
        for pm in datacenter.pms:
            capacity = self.beta * pm.mips
            demand = future_demand[pm.pm_id]
            if demand <= capacity:
                continue
            excluded.append(pm.pm_id)
            # Evict the hungriest-tomorrow VMs until under beta tomorrow.
            hosted = sorted(
                datacenter.vms_on(pm.pm_id),
                key=lambda vm_id: -self._future_demand_mips(
                    datacenter, vm_id, step
                ),
            )
            for vm_id in hosted:
                if demand <= capacity:
                    break
                to_move.append(vm_id)
                demand -= self._future_demand_mips(datacenter, vm_id, step)
        if not to_move:
            return []
        if self.max_moves_per_step is not None:
            to_move = to_move[: self.max_moves_per_step]
        plan = power_aware_best_fit(
            datacenter,
            to_move,
            threshold=self.placement_threshold,
            excluded_hosts=excluded,
        )
        return [
            Migration(vm_id=vm_id, dest_pm_id=pm_id)
            for vm_id, pm_id in plan.items()
        ]
