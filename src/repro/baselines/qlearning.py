"""Offline-trained tabular Q-learning baseline (Section 2.2).

The paper dismisses Q-learning because it "has to go through
computationally expensive training periods" before it can be deployed
online, and breaks down when the live workload departs from the training
one.  This baseline makes that concrete: a tabular agent over a coarse
global state (buckets of overloaded-host count and mean utilization) and
three meta-actions (do nothing / relieve the most overloaded host /
consolidate the least loaded host), trained offline with epsilon-greedy
episodes on a training workload and deployed greedily.

The meta-action abstraction is forced by tabularity — the exact
combinatorial state-action space would need ``|C| x N x M`` table rows,
the curse of dimensionality the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cloudsim.migration import Migration
from repro.baselines.mmt.placement import power_aware_best_fit
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation

#: Meta-actions of the tabular agent.
ACTION_NOOP = 0
ACTION_RELIEVE = 1
ACTION_CONSOLIDATE = 2
NUM_ACTIONS = 3

StateKey = Tuple[int, int]


class QLearningScheduler:
    """Tabular Q-learning over a coarse global state.

    Args:
        beta: host overload threshold.
        learning_rate: Q-update step size during training.
        gamma: discount factor.
        epsilon: exploration rate during training episodes.
        utilization_buckets: buckets for the mean-utilization state axis.
        overload_buckets: cap on the overloaded-host-count state axis.
        placement_threshold: PABFD fill threshold for generated moves.
        seed: RNG seed.
    """

    name = "Q-learning"

    def __init__(
        self,
        beta: float = 0.70,
        learning_rate: float = 0.1,
        gamma: float = 0.5,
        epsilon: float = 0.1,
        utilization_buckets: int = 10,
        overload_buckets: int = 5,
        placement_threshold: float = 0.70,
        seed: int = 0,
    ) -> None:
        if not 0 < learning_rate <= 1:
            raise ConfigurationError("learning rate must be in (0, 1]")
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        if not 0 <= epsilon <= 1:
            raise ConfigurationError("epsilon must be in [0, 1]")
        self.beta = beta
        self.learning_rate = learning_rate
        self.gamma = gamma
        self.epsilon = epsilon
        self.utilization_buckets = utilization_buckets
        self.overload_buckets = overload_buckets
        self.placement_threshold = placement_threshold
        self.q_table: Dict[StateKey, np.ndarray] = {}
        self.training = False
        self._rng = np.random.default_rng(seed)
        self._last_state: StateKey | None = None
        self._last_action: int | None = None

    # ------------------------------------------------------------------
    def _state_key(self, observation: Observation) -> StateKey:
        datacenter = observation.datacenter
        overloaded = len(datacenter.overloaded_pm_ids(self.beta))
        overloaded = min(overloaded, self.overload_buckets)
        active = datacenter.active_pm_ids()
        if active:
            mean_util = sum(
                min(1.0, datacenter.demanded_utilization(pm_id))
                for pm_id in active
            ) / len(active)
        else:
            mean_util = 0.0
        bucket = min(
            self.utilization_buckets - 1,
            int(mean_util * self.utilization_buckets),
        )
        return (overloaded, bucket)

    def _q_row(self, state: StateKey) -> np.ndarray:
        if state not in self.q_table:
            self.q_table[state] = np.zeros(NUM_ACTIONS)
        return self.q_table[state]

    # ------------------------------------------------------------------
    def decide(self, observation: Observation) -> List[Migration]:
        state = self._state_key(observation)
        if self.training and self._last_state is not None:
            self._learn(observation.last_step_cost_usd, state)
        if self.training and self._rng.random() < self.epsilon:
            action = int(self._rng.integers(0, NUM_ACTIONS))
        else:
            action = int(np.argmin(self._q_row(state)))
        self._last_state, self._last_action = state, action
        if action == ACTION_RELIEVE:
            return self._relieve(observation)
        if action == ACTION_CONSOLIDATE:
            return self._consolidate(observation)
        return []

    def _learn(self, cost: float, new_state: StateKey) -> None:
        row = self._q_row(self._last_state)
        best_next = float(np.min(self._q_row(new_state)))
        target = cost + self.gamma * best_next
        row[self._last_action] += self.learning_rate * (
            target - row[self._last_action]
        )

    # ------------------------------------------------------------------
    def _relieve(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        overloaded = datacenter.overloaded_pm_ids(self.beta)
        if not overloaded:
            return []
        worst = max(overloaded, key=datacenter.demanded_utilization)
        vms = sorted(
            datacenter.vms_on(worst),
            key=lambda vm_id: -datacenter.vm(vm_id).demanded_mips,
        )
        if not vms:
            return []
        plan = power_aware_best_fit(
            datacenter,
            vms[:1],
            threshold=self.placement_threshold,
            excluded_hosts=[worst],
        )
        return [
            Migration(vm_id=vm_id, dest_pm_id=pm_id)
            for vm_id, pm_id in plan.items()
        ]

    def _consolidate(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        active = datacenter.active_pm_ids()
        if len(active) < 2:
            return []
        lightest = min(active, key=datacenter.demanded_utilization)
        vms = sorted(datacenter.vms_on(lightest))
        plan = power_aware_best_fit(
            datacenter,
            vms,
            threshold=self.placement_threshold,
            excluded_hosts=[lightest],
        )
        if len(plan) != len(vms):
            return []
        return [
            Migration(vm_id=vm_id, dest_pm_id=pm_id)
            for vm_id, pm_id in plan.items()
        ]

    # ------------------------------------------------------------------
    def train(self, simulation, episodes: int = 3) -> None:
        """Offline training: replay the simulation's workload repeatedly.

        This is the "elaborate offline training" requirement the paper
        holds against Q-learning — it must happen *before* deployment.
        """
        if episodes < 1:
            raise ConfigurationError("episodes must be >= 1")
        self.training = True
        try:
            for _ in range(episodes):
                simulation.reset()
                self._last_state = None
                self._last_action = None
                simulation.run(self)
        finally:
            self.training = False
            self._last_state = None
            self._last_action = None
            simulation.reset()
