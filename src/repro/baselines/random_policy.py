"""Baseline that migrates random VMs to random feasible hosts.

A sanity floor for learning algorithms: Megh must beat it decisively, and
it stresses the migration engine's feasibility handling in tests.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cloudsim.migration import Migration
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation


class RandomScheduler:
    """Each step, migrates ``migrations_per_step`` random VMs."""

    name = "Random"

    def __init__(self, migrations_per_step: int = 1, seed: int = 0) -> None:
        if migrations_per_step < 0:
            raise ConfigurationError("migrations_per_step must be >= 0")
        self.migrations_per_step = migrations_per_step
        self._rng = np.random.default_rng(seed)

    def decide(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        placed = [
            vm.vm_id
            for vm in datacenter.vms
            if datacenter.is_placed(vm.vm_id)
        ]
        if not placed or self.migrations_per_step == 0:
            return []
        migrations: List[Migration] = []
        for _ in range(self.migrations_per_step):
            vm_id = int(self._rng.choice(placed))
            current = datacenter.host_of(vm_id)
            options = [
                pm.pm_id
                for pm in datacenter.pms
                if pm.pm_id != current and datacenter.fits(vm_id, pm.pm_id)
            ]
            if not options:
                continue
            dest = int(self._rng.choice(options))
            migrations.append(Migration(vm_id=vm_id, dest_pm_id=dest))
        return migrations
