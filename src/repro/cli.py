"""Command-line interface: ``megh-repro <experiment>`` / ``repro lint``.

Runs any of the reproduced experiments at bench scale and prints the
paper-style table or series, e.g.::

    megh-repro table2
    megh-repro fig4 --steps 300
    megh-repro fig6
    megh-repro list

The ``lint`` subcommand runs meghlint — the per-file rules plus the
whole-program meghflow pass (see :mod:`repro.analysis` and
``docs/static_analysis.md``)::

    repro lint src/ benchmarks/
    repro lint --list-rules
    repro lint --format json src/repro/core
    repro lint --baseline analysis/baseline.json --strict-suppressions

The ``profile`` subcommand wraps cProfile around a short simulation and
prints the hottest functions (see ``docs/performance.md``)::

    repro profile --pms 40 --vms 52 --steps 120
    repro profile --profile-sort tottime --profile-limit 40
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import experiments
from repro.harness.figures import figure_series, render_figure
from repro.harness.tables import render_comparison


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="megh-repro",
        description="Reproduce the experiments of the Megh paper "
        "(ICDCS 2017) at bench scale.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id: table2, table3, fig2..fig8, 'compare', "
            "'lint', 'bench', 'profile', 'serve', or 'list'"
        ),
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="override simulation steps"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the random seed"
    )
    parser.add_argument(
        "--pms", type=int, default=16, help="compare: number of PMs"
    )
    parser.add_argument(
        "--vms", type=int, default=21, help="compare: number of VMs"
    )
    parser.add_argument(
        "--workload",
        choices=("planetlab", "google"),
        default="planetlab",
        help="compare: workload style",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="compare: also write a markdown report to PATH",
    )
    parser.add_argument(
        "--claims",
        action="store_true",
        help="compare: append Section-6.3-style comparative claims",
    )
    parser.add_argument(
        "--profile-sort",
        default="cumulative",
        metavar="KEY",
        help="profile: pstats sort key (cumulative, tottime, ncalls, ...)",
    )
    parser.add_argument(
        "--profile-limit",
        type=int,
        default=25,
        metavar="N",
        help="profile: number of stat lines to print",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run simulations on N parallel worker processes via the "
        "execution engine (compare/table/figure experiments)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory; re-runs replay "
        "unchanged simulations instead of recomputing them",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write the engine's JSONL event journal to PATH",
    )
    return parser


def _make_engine(args):
    """Build an ExecutionEngine when the flags ask for one, else None."""
    if args.jobs <= 1 and not args.cache_dir and not args.journal:
        return None
    from repro.engine import ExecutionEngine

    return ExecutionEngine(
        jobs=max(1, args.jobs),
        cache_dir=args.cache_dir,
        journal_path=args.journal,
    )


def _run_compare(args, engine=None) -> str:
    from repro.engine.registry import BuilderSpec, spec_paper_factories
    from repro.harness.report import comparison_report, save_report
    from repro.harness.runner import run_comparison

    seed = args.seed or 0
    steps = args.steps or 600
    builder = BuilderSpec.create(
        args.workload, num_pms=args.pms, num_vms=args.vms, num_steps=steps
    )
    factories = spec_paper_factories(include_madvm=True, seed=seed)
    if engine is not None:
        results = engine.run_comparison(builder, factories, seed=seed)
    else:
        results = run_comparison(builder(seed), factories)
    title = (
        f"Scheduler comparison — {args.workload}, "
        f"{args.pms} PMs / {args.vms} VMs / {steps} steps, seed {seed}"
    )
    if args.report:
        save_report(results, args.report, title=title)
    if args.claims:
        from repro.harness.analysis import claims_report

        return (
            comparison_report(results, title=title)
            + "\n## Findings (Section 6.3 style)\n\n"
            + claims_report(results, subject="Megh")
        )
    return comparison_report(results, title=title)


def _run_table(
    experiment: str,
    steps: Optional[int],
    seed: Optional[int],
    engine=None,
) -> str:
    preset = experiments.PRESETS[experiment]
    if steps is not None:
        preset = experiments.ExperimentPreset(
            **{**preset.__dict__, "num_steps": steps}
        )
    results = experiments.run_table_experiment(preset, seed=seed, engine=engine)
    title = (
        f"{experiment}: {preset.description} "
        f"[bench scale {preset.num_pms} PMs / {preset.num_vms} VMs / "
        f"{preset.num_steps} steps; paper scale {preset.paper_scale}]"
    )
    return render_comparison(results, title=title)


def _run_figure_pair(
    experiment: str,
    steps: Optional[int],
    seed: Optional[int],
    engine=None,
) -> str:
    preset = experiments.PRESETS[experiment]
    if steps is not None:
        preset = experiments.ExperimentPreset(
            **{**preset.__dict__, "num_steps": steps}
        )
    if experiment in ("fig2", "fig3"):
        results = experiments.run_megh_vs_thr(preset, seed=seed, engine=engine)
    else:
        results = experiments.run_megh_vs_madvm(preset, seed=seed, engine=engine)
    series = [figure_series(result) for result in results.values()]
    return render_figure(series, title=f"{experiment}: {preset.description}")


def _run_profile(args) -> str:
    """cProfile a short Megh simulation; return the hottest functions.

    Contracts are forced off so the profile reflects the production hot
    path, not the audit machinery.
    """
    import cProfile
    import io
    import pstats

    from repro.core.agent import MeghScheduler
    from repro.harness.builders import build_planetlab_simulation
    from repro.harness.runner import run_scheduler

    seed = args.seed or 0
    steps = args.steps or 60
    simulation = build_planetlab_simulation(
        num_pms=args.pms, num_vms=args.vms, num_steps=steps, seed=seed
    )
    scheduler = MeghScheduler.from_simulation(
        simulation, seed=seed, contracts=False
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scheduler(simulation, scheduler)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(args.profile_sort).print_stats(args.profile_limit)
    header = (
        f"profile: planetlab-synthetic {args.pms} PMs / {args.vms} VMs / "
        f"{steps} steps, seed {seed}, contracts off — "
        f"{result.total_migrations} migrations, "
        f"{scheduler.q_table_nonzeros} B non-zeros\n"
    )
    return header + buffer.getvalue()


def _run_fig6(steps: Optional[int], seed: Optional[int]) -> str:
    points = experiments.run_scalability_grid(
        num_steps=steps or 100, seed=seed or 0
    )
    lines = ["fig6: per-step execution time vs fleet size"]
    for point in points:
        lines.append(
            f"m={point.num_pms:4d} n={point.num_vms:4d} "
            f"{point.algorithm:8s} {point.mean_step_ms:9.3f} ms"
        )
    return "\n".join(lines)


def _run_fig7(steps: Optional[int], seed: Optional[int]) -> str:
    growths = experiments.run_qtable_growth(
        num_steps=steps or 300, seed=seed or 0
    )
    lines = ["fig7: Q-table non-zeros vs time"]
    for growth in growths:
        last = growth.nonzeros[-1] if growth.nonzeros else 0
        lines.append(
            f"M=N={growth.num_pms:4d}: slope={growth.slope:8.2f} nnz/step, "
            f"intercept={growth.intercept:10.1f}, final nnz={last}"
        )
    return "\n".join(lines)


def _run_fig8(steps: Optional[int], seed: Optional[int]) -> str:
    del seed  # repeats use their own seeds
    temp = experiments.run_temperature_sensitivity(num_steps=steps or 300)
    eps = experiments.run_epsilon_sensitivity(num_steps=steps or 300)
    lines = ["fig8(a): per-step cost vs Temp0"]
    for point in temp:
        lines.append(
            f"Temp0={point.value:6.2f}: median={point.median_cost:.4f} "
            f"p10={point.p10_cost:.4f} p90={point.p90_cost:.4f}"
        )
    lines.append("fig8(b): per-step cost vs epsilon")
    for point in eps:
        lines.append(
            f"eps={point.value:8.4f}: median={point.median_cost:.4f} "
            f"p10={point.p10_cost:.4f} p90={point.p90_cost:.4f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        from repro.analysis.cli import run as run_lint

        return run_lint(arguments[1:])
    if arguments and arguments[0] == "bench":
        from repro.harness.benchgate import run as run_bench

        return run_bench(arguments[1:])
    if arguments and arguments[0] == "serve":
        from repro.service.cli import run as run_serve

        return run_serve(arguments[1:])
    args = _build_parser().parse_args(arguments)
    experiment = args.experiment.lower()
    try:
        if experiment == "list":
            for key, preset in experiments.PRESETS.items():
                print(f"{key:8s} {preset.description}")
            print("fig6     scalability grid (exec time vs fleet size)")
            print("fig7     Q-table growth")
            print("fig8     Temp0 / epsilon sensitivity")
            print(
                "compare  custom comparison "
                "(--pms/--vms/--workload/--report/--claims)"
            )
            print(
                "lint     meghlint static analysis "
                "(paths, --format, --select, --ignore, --list-rules)"
            )
            print(
                "bench    perf-regression smoke gate "
                "(--check, --band, --fresh-core/--fresh-sim)"
            )
            print(
                "profile  cProfile a short simulation "
                "(--pms/--vms/--steps/--profile-sort/--profile-limit)"
            )
            print(
                "serve    churn-driven migration service "
                "(--checkpoint-every/--resume/--trace/--events)"
            )
            return 0
    except BrokenPipeError:
        return 0  # output piped into a closed reader (e.g. `| head`)
    engine = _make_engine(args)
    try:
        if experiment == "compare":
            print(_run_compare(args, engine))
        elif experiment == "profile":
            print(_run_profile(args))
        elif experiment in ("table2", "table3"):
            print(_run_table(experiment, args.steps, args.seed, engine))
        elif experiment in ("fig2", "fig3", "fig4", "fig5"):
            print(_run_figure_pair(experiment, args.steps, args.seed, engine))
        elif experiment == "fig6":
            print(_run_fig6(args.steps, args.seed))
        elif experiment == "fig7":
            print(_run_fig7(args.steps, args.seed))
        elif experiment == "fig8":
            print(_run_fig8(args.steps, args.seed))
        else:
            print(f"unknown experiment {experiment!r}; try 'list'")
            return 2
    except BrokenPipeError:
        return 0  # output piped into a closed reader (e.g. `| head`)
    except KeyboardInterrupt:
        return 130
    finally:
        if engine is not None:
            print(engine.summary(), file=sys.stderr)
            engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
