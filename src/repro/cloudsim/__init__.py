"""Discrete-time cloud data-center simulator (CloudSim substitute).

This subpackage reimplements, in Python, the slice of the CloudSim toolkit
that the Megh paper relies on: power-aware hosts replaying CPU-utilization
traces at a fixed observation interval, live-migration timing, and SLA
(downtime / overload) accounting.
"""

from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.vm import VirtualMachine
from repro.cloudsim.power import (
    LinearPowerModel,
    PowerModel,
    SpecPowerModel,
    HP_PROLIANT_G4,
    HP_PROLIANT_G5,
)
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.reference import ReferenceDatacenter
from repro.cloudsim.soa import DatacenterArrays
from repro.cloudsim.migration import Migration, MigrationEngine
from repro.cloudsim.network import (
    FatTreeTopology,
    FlatNetwork,
    NetworkTopology,
    StarNetwork,
)
from repro.cloudsim.sla import SlaAccountant
from repro.cloudsim.monitor import UtilizationMonitor
from repro.cloudsim.simulation import Simulation, SimulationResult
from repro.cloudsim.metrics import StepMetrics, MetricsCollector
from repro.cloudsim.events import Event, EventKind, EventLog
from repro.cloudsim.faults import FaultEvent, FaultInjector, FaultTolerantScheduler
from repro.cloudsim.precopy import PrecopyModel, PrecopyOutcome
from repro.cloudsim.validation import (
    InvariantViolation,
    check_invariants,
    find_violations,
)

__all__ = [
    "PhysicalMachine",
    "VirtualMachine",
    "PowerModel",
    "LinearPowerModel",
    "SpecPowerModel",
    "HP_PROLIANT_G4",
    "HP_PROLIANT_G5",
    "Datacenter",
    "ReferenceDatacenter",
    "DatacenterArrays",
    "Migration",
    "MigrationEngine",
    "NetworkTopology",
    "FlatNetwork",
    "StarNetwork",
    "FatTreeTopology",
    "SlaAccountant",
    "UtilizationMonitor",
    "Simulation",
    "SimulationResult",
    "StepMetrics",
    "MetricsCollector",
    "Event",
    "EventKind",
    "EventLog",
    "FaultEvent",
    "FaultInjector",
    "FaultTolerantScheduler",
    "PrecopyModel",
    "PrecopyOutcome",
    "InvariantViolation",
    "check_invariants",
    "find_violations",
]
