"""Initial VM placement policies.

The paper's MadVM comparison starts from a uniform-random allocation "such
that there is no initial bias"; the full-scale experiments inherit
CloudSim's first-fit style initial allocation.  Both are provided, plus
round-robin and a load-balanced greedy for tests and examples.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.cloudsim.datacenter import Datacenter
from repro.errors import CapacityError, PlacementError


def _placeable_pms(datacenter: Datacenter, vm_id: int) -> Sequence[int]:
    return [
        pm.pm_id
        for pm in datacenter.pms  # meghlint: ignore[MEGH009] -- cold path: initial placement, runs once per experiment
        if datacenter.vm(vm_id).ram_mb <= datacenter.ram_free_mb(pm.pm_id)
    ]


def place_first_fit(datacenter: Datacenter) -> None:
    """Place every unplaced VM on the first host with enough free RAM."""
    for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- cold path: initial placement, runs once per experiment
        if datacenter.is_placed(vm.vm_id):
            continue
        for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- cold path: initial placement, runs once per experiment
            try:
                datacenter.place(vm.vm_id, pm.pm_id)
                break
            except CapacityError:
                continue
        else:
            raise PlacementError(f"VM {vm.vm_id} fits on no host")


def place_round_robin(datacenter: Datacenter) -> None:
    """Place VMs cyclically across hosts, skipping full ones."""
    num_pms = datacenter.num_pms
    cursor = 0
    for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- cold path: initial placement, runs once per experiment
        if datacenter.is_placed(vm.vm_id):
            continue
        for offset in range(num_pms):
            pm_id = (cursor + offset) % num_pms
            try:
                datacenter.place(vm.vm_id, pm_id)
                cursor = (pm_id + 1) % num_pms
                break
            except CapacityError:
                continue
        else:
            raise PlacementError(f"VM {vm.vm_id} fits on no host")


def place_uniform_random(datacenter: Datacenter, seed: int = 0) -> None:
    """Place every VM on a uniformly random feasible host (MadVM setup)."""
    rng = random.Random(seed)
    for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- cold path: initial placement, runs once per experiment
        if datacenter.is_placed(vm.vm_id):
            continue
        candidates = _placeable_pms(datacenter, vm.vm_id)
        if not candidates:
            raise PlacementError(f"VM {vm.vm_id} fits on no host")
        datacenter.place(vm.vm_id, rng.choice(list(candidates)))


def place_balanced(datacenter: Datacenter) -> None:
    """Greedy balance: place each VM on the feasible host with most free RAM."""
    for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- cold path: initial placement, runs once per experiment
        if datacenter.is_placed(vm.vm_id):
            continue
        candidates = _placeable_pms(datacenter, vm.vm_id)
        if not candidates:
            raise PlacementError(f"VM {vm.vm_id} fits on no host")
        best = max(candidates, key=datacenter.ram_free_mb)
        datacenter.place(vm.vm_id, best)


#: Name -> policy map used by builders and the CLI.
PLACEMENT_POLICIES = {
    "first-fit": place_first_fit,
    "round-robin": place_round_robin,
    "random": place_uniform_random,
    "balanced": place_balanced,
}
