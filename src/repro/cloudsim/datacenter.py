"""Data-center placement bookkeeping and CPU capacity sharing.

The :class:`Datacenter` owns the VM→PM placement map, enforces RAM
feasibility on placement, and computes per-step delivered CPU: when a
host's aggregate demand exceeds its capacity, every VM on it is scaled
down proportionally (fair sharing), which is what makes hosts "overloaded"
in the SLA sense of Section 3.3.

Since the struct-of-arrays rewrite, the hot state lives in
:class:`~repro.cloudsim.soa.DatacenterArrays` (``host_of``, per-VM
demand/delivered vectors, lazily-rebuilt per-PM aggregates) and the
per-step operations — :meth:`share_cpu`, overload detection, active-host
queries — run as whole-fleet NumPy expressions.  The object model
(:class:`~repro.cloudsim.vm.VirtualMachine` /
:class:`~repro.cloudsim.pm.PhysicalMachine`) is a thin view over the
arrays, and the legacy ``dict``/``set`` placement index is still
maintained incrementally so the public API (``vms_on``, ``placement``,
iteration order included) is exactly what it was before the rewrite.
The retained pre-rewrite implementation lives in
:mod:`repro.cloudsim.reference` and is held bit-for-bit equal by
``tests/cloudsim/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.soa import DatacenterArrays
from repro.cloudsim.vm import VirtualMachine
from repro.errors import CapacityError, UnknownEntityError


class Datacenter:
    """Placement map over a fleet of PMs and VMs.

    Args:
        pms: the physical machines, with dense ids ``0..M-1``.
        vms: the virtual machines, with dense ids ``0..N-1``.
        migration_overhead_fraction: CPU share a migrating VM loses to
            the copy process when :meth:`share_cpu` is asked to charge
            it in one shot (``DatacenterConfig.migration_overhead_fraction``;
            the simulation driver plumbs the configured value through).

    The data center starts with every VM unplaced; use
    :meth:`place` (or an allocation policy from
    :mod:`repro.cloudsim.allocation`) to build the initial configuration.

    Binding note: constructing a ``Datacenter`` moves the dynamic state
    of the given VMs/PMs into its arrays; sharing entity objects between
    two live datacenters is not supported (the last bind wins).
    """

    def __init__(
        self,
        pms: Sequence[PhysicalMachine],
        vms: Sequence[VirtualMachine],
        migration_overhead_fraction: float = 0.10,
    ) -> None:
        self._pms: List[PhysicalMachine] = list(pms)
        self._vms: List[VirtualMachine] = list(vms)
        self._check_dense_ids()
        self._host_of: Dict[int, int] = {}
        self._vms_on: Dict[int, Set[int]] = {pm.pm_id: set() for pm in self._pms}  # meghlint: ignore[MEGH009] -- one-time construction
        self.migration_overhead_fraction = migration_overhead_fraction
        self.arrays = DatacenterArrays(len(self._vms), len(self._pms))
        for vm in self._vms:  # meghlint: ignore[MEGH009] -- one-time binding at construction
            vm._bind(self.arrays, vm.vm_id)
        for pm in self._pms:  # meghlint: ignore[MEGH009] -- one-time binding at construction
            pm._bind(self.arrays, pm.pm_id)

    def _check_dense_ids(self) -> None:
        pm_ids = sorted(pm.pm_id for pm in self._pms)  # meghlint: ignore[MEGH009] -- one-time construction
        vm_ids = sorted(vm.vm_id for vm in self._vms)  # meghlint: ignore[MEGH009] -- one-time construction
        if pm_ids != list(range(len(self._pms))):
            raise UnknownEntityError("PM ids must be dense 0..M-1")
        if vm_ids != list(range(len(self._vms))):
            raise UnknownEntityError("VM ids must be dense 0..N-1")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pms(self) -> int:
        return len(self._pms)

    @property
    def num_vms(self) -> int:
        return len(self._vms)

    @property
    def pms(self) -> Sequence[PhysicalMachine]:
        return tuple(self._pms)

    @property
    def vms(self) -> Sequence[VirtualMachine]:
        return tuple(self._vms)

    def pm(self, pm_id: int) -> PhysicalMachine:
        """Return the PM with the given id."""
        if not 0 <= pm_id < len(self._pms):
            raise UnknownEntityError(f"no PM with id {pm_id}")
        return self._pms[pm_id]

    def vm(self, vm_id: int) -> VirtualMachine:
        """Return the VM with the given id."""
        if not 0 <= vm_id < len(self._vms):
            raise UnknownEntityError(f"no VM with id {vm_id}")
        return self._vms[vm_id]

    def host_of(self, vm_id: int) -> Optional[int]:
        """PM id hosting the VM, or ``None`` if unplaced."""
        self.vm(vm_id)
        return self._host_of.get(vm_id)

    def vms_on(self, pm_id: int) -> Set[int]:
        """Ids of the VMs currently placed on the PM (a copy)."""
        self.pm(pm_id)
        return set(self._vms_on[pm_id])

    def placement(self) -> Dict[int, int]:
        """Full VM→PM map (a copy)."""
        return dict(self._host_of)

    def is_placed(self, vm_id: int) -> bool:
        return vm_id in self._host_of

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    def ram_used_mb(self, pm_id: int) -> float:
        """RAM committed to VMs on the host."""
        if not 0 <= pm_id < len(self._pms):
            raise KeyError(pm_id)
        return float(self.arrays.pm_ram_used_mb()[pm_id])

    def ram_free_mb(self, pm_id: int) -> float:
        """RAM still available on the host.

        Reads the cached :meth:`DatacenterArrays.pm_ram_free_mb` vector
        — element-for-element the same IEEE subtraction as the previous
        per-call ``pm.ram_mb - ram_used_mb(pm_id)``, but computed once
        per RAM-aggregate rebuild instead of once per query.
        """
        if not 0 <= pm_id < len(self._pms):
            raise KeyError(pm_id)
        return float(self.arrays.pm_ram_free_mb()[pm_id])

    def demanded_mips(self, pm_id: int) -> float:
        """Aggregate MIPS demanded by workloads on the host this step."""
        if not 0 <= pm_id < len(self._pms):
            raise KeyError(pm_id)
        return float(self.arrays.pm_demand_mips()[pm_id])

    def demanded_utilization(self, pm_id: int) -> float:
        """Demanded load as a fraction of host capacity (can exceed 1)."""
        return self.demanded_mips(pm_id) / self.pm(pm_id).mips

    def delivered_utilization(self, pm_id: int) -> float:
        """Delivered load fraction after fair sharing (capped at 1)."""
        delivered = float(self.arrays.pm_delivered_mips()[pm_id])
        return min(1.0, delivered / self.pm(pm_id).mips)

    def fits(self, vm_id: int, pm_id: int) -> bool:
        """Whether the VM's RAM reservation fits on the host right now."""
        vm = self.vm(vm_id)
        if self.host_of(vm_id) == pm_id:
            return True
        return vm.ram_mb <= self.ram_free_mb(pm_id)

    def active_pm_ids(self) -> List[int]:
        """Hosts that currently serve at least one VM."""
        return np.flatnonzero(self.arrays.active_pm_mask()).tolist()

    def num_active_hosts(self) -> int:
        """Count of hosts serving at least one VM."""
        return int(np.count_nonzero(self.arrays.active_pm_mask()))

    # ------------------------------------------------------------------
    # Placement mutation
    # ------------------------------------------------------------------
    def place(self, vm_id: int, pm_id: int) -> None:
        """Place an unplaced VM on a host, waking the host if needed."""
        vm = self.vm(vm_id)
        pm = self.pm(pm_id)
        if vm_id in self._host_of:
            raise CapacityError(
                f"VM {vm_id} is already placed on PM {self._host_of[vm_id]}"
            )
        if vm.ram_mb > self.ram_free_mb(pm_id):
            raise CapacityError(
                f"VM {vm_id} ({vm.ram_mb} MB) does not fit on PM {pm_id} "
                f"({self.ram_free_mb(pm_id)} MB free)"
            )
        pm.wake()
        self._host_of[vm_id] = pm_id
        self._vms_on[pm_id].add(vm_id)
        self.arrays.host_of[vm_id] = pm_id
        self.arrays.pm_vm_count[pm_id] += 1
        self.arrays.mark_placement_dirty()

    def remove(self, vm_id: int) -> int:
        """Unplace a VM; returns the PM id it was removed from."""
        if vm_id not in self._host_of:
            raise UnknownEntityError(f"VM {vm_id} is not placed")
        pm_id = self._host_of.pop(vm_id)
        self._vms_on[pm_id].discard(vm_id)
        self.arrays.host_of[vm_id] = -1
        self.arrays.pm_vm_count[pm_id] -= 1
        self.arrays.mark_placement_dirty()
        return pm_id

    def move(self, vm_id: int, dest_pm_id: int) -> int:
        """Relocate a VM; returns the source PM id.

        Raises :class:`CapacityError` if the destination lacks RAM.  A
        move to the VM's current host is a no-op.
        """
        source = self.host_of(vm_id)
        if source is None:
            raise UnknownEntityError(f"VM {vm_id} is not placed")
        if source == dest_pm_id:
            return source
        if not self.fits(vm_id, dest_pm_id):
            raise CapacityError(
                f"VM {vm_id} does not fit on PM {dest_pm_id}"
            )
        self.remove(vm_id)
        self.place(vm_id, dest_pm_id)
        return source

    def sleep_idle_hosts(self) -> List[int]:
        """Put every empty host to sleep; returns the ids put to sleep."""
        arrays = self.arrays
        idle = np.flatnonzero(~arrays.active_pm_mask() & ~arrays.pm_asleep)
        arrays.pm_asleep[idle] = True
        return idle.tolist()

    # ------------------------------------------------------------------
    # CPU sharing
    # ------------------------------------------------------------------
    def share_cpu(self, migrating_vm_ids: Iterable[int] = ()) -> None:
        """Compute delivered utilization for every VM this step.

        Each host grants demand in full when total demand fits its
        capacity, and scales all demands by ``capacity / demand``
        otherwise (proportional fair sharing).  VMs in ``migrating_vm_ids``
        additionally lose :attr:`migration_overhead_fraction` of their
        demand — normally applied by the
        :class:`repro.cloudsim.migration.MigrationEngine`, which passes
        in-flight VMs to :meth:`apply_migration_overhead` itself; the
        parameter here serves callers that want one-shot sharing.
        """
        migrating = set(migrating_vm_ids)
        arrays = self.arrays
        total_demand = arrays.pm_demand_mips()
        # scale = capacity / demand on oversubscribed hosts, 1 elsewhere.
        # (demand > capacity > 0 implies demand > 0, so the reference
        # implementation's "demand <= 0" guard is subsumed.)
        scale = np.ones(arrays.num_pms, dtype=np.float64)
        oversubscribed = total_demand > arrays.pm_mips
        np.divide(
            arrays.pm_mips, total_demand, out=scale, where=oversubscribed
        )
        placed = arrays.host_of >= 0
        # Unplaced VMs receive nothing; host_of is -1 there, so mask the
        # gathered scale before it is used.
        np.multiply(
            arrays.vm_demand,
            scale[arrays.host_of],
            out=arrays.vm_delivered,
            where=placed,
        )
        arrays.vm_delivered[~placed] = 0.0
        arrays.mark_delivered_dirty()
        if migrating:
            self.apply_migration_overhead(migrating)

    def apply_migration_overhead(
        self, vm_ids: Iterable[int], overhead_fraction: Optional[float] = None
    ) -> None:
        """Reduce delivered CPU of in-flight VMs by the migration overhead.

        ``overhead_fraction`` defaults to the datacenter's configured
        :attr:`migration_overhead_fraction` (historically this default
        was a hardcoded ``0.10``, silently ignoring the configured
        value).
        """
        if overhead_fraction is None:
            overhead_fraction = self.migration_overhead_fraction
        arrays = self.arrays
        keep = 1.0 - overhead_fraction
        for vm_id in vm_ids:
            self.vm(vm_id)
            arrays.vm_delivered[vm_id] *= keep
        arrays.mark_delivered_dirty()

    def is_overloaded(self, pm_id: int, beta: float) -> bool:
        """Whether the host's demanded load exceeds the ``beta`` threshold."""
        return self.demanded_utilization(pm_id) > beta

    def bandwidth_demanded_mbps(self, pm_id: int) -> float:
        """Aggregate network bandwidth demanded on the host this step."""
        if not 0 <= pm_id < len(self._pms):
            raise KeyError(pm_id)
        return float(self.arrays.pm_bw_demand_mbps()[pm_id])

    def bandwidth_demanded_utilization(self, pm_id: int) -> float:
        """Demanded network load as a fraction of host link capacity."""
        return self.bandwidth_demanded_mbps(pm_id) / self.pm(pm_id).bandwidth_mbps

    def is_bandwidth_overloaded(self, pm_id: int, threshold: float) -> bool:
        """Whether the host's network demand exceeds ``threshold``."""
        return self.bandwidth_demanded_utilization(pm_id) > threshold

    def overloaded_pm_ids(
        self, beta: float, bandwidth_threshold: Optional[float] = None
    ) -> List[int]:
        """Hosts overloaded on CPU — or, when ``bandwidth_threshold`` is
        given, on the network dimension as well (multi-resource mode)."""
        mask = self.arrays.overloaded_pm_mask(beta, bandwidth_threshold)
        return np.flatnonzero(mask).tolist()
