"""Structured simulation event log.

Debugging a scheduler means asking "what exactly happened at step 412?".
:class:`EventLog` records typed events — migrations started, completed,
rejected; hosts overloaded, slept, woken; faults — with their step and
payload, supports filtered queries, and round-trips through JSON Lines
for offline analysis.

The simulation driver emits into a log passed to
:meth:`Simulation.run(event_log=...) <repro.cloudsim.simulation.Simulation.run>`;
schedulers and tests may also emit their own events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.errors import ConfigurationError


class EventKind(str, Enum):
    """Event taxonomy."""

    MIGRATION_STARTED = "migration_started"
    MIGRATION_COMPLETED = "migration_completed"
    MIGRATION_REJECTED = "migration_rejected"
    HOST_OVERLOADED = "host_overloaded"
    HOST_SLEPT = "host_slept"
    HOST_WOKEN = "host_woken"
    HOST_FAILED = "host_failed"
    HOST_REPAIRED = "host_repaired"
    VM_DISPLACED = "vm_displaced"
    # VM lifecycle (service-mode churn; see repro.service).
    VM_CREATED = "vm_created"
    VM_RESIZED = "vm_resized"
    VM_DELETED = "vm_deleted"
    CUSTOM = "custom"


@dataclass(frozen=True)
class Event:
    """One logged event: a step, a kind, and a flat payload."""

    step: int
    kind: EventKind
    payload: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"step": self.step, "kind": self.kind.value, **self.payload},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad event line: {exc}") from exc
        if "step" not in data or "kind" not in data:
            raise ConfigurationError("event line lacks step/kind")
        step = int(data.pop("step"))
        kind = EventKind(data.pop("kind"))
        return cls(step=step, kind=kind, payload=data)


class EventLog:
    """Append-only in-memory event store with filtered queries."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def emit(
        self, step: int, kind: EventKind, **payload: object
    ) -> Event:
        """Record an event and return it."""
        event = Event(step=step, kind=kind, payload=dict(payload))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def query(
        self,
        kind: Optional[EventKind] = None,
        step: Optional[int] = None,
        vm_id: Optional[int] = None,
        pm_id: Optional[int] = None,
    ) -> List[Event]:
        """Events matching every given filter."""
        matches = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if step is not None and event.step != step:
                continue
            if vm_id is not None and event.payload.get("vm_id") != vm_id:
                continue
            if pm_id is not None and event.payload.get("pm_id") != pm_id:
                continue
            matches.append(event)
        return matches

    def counts(self) -> Dict[EventKind, int]:
        """Event count per kind."""
        totals: Dict[EventKind, int] = {}
        for event in self._events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def save_jsonl(self, path: str) -> None:
        """Write the log as JSON Lines."""
        with open(path, "w") as handle:
            for event in self._events:
                handle.write(event.to_json())
                handle.write("\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "EventLog":
        """Load a log written by :meth:`save_jsonl`."""
        log = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log._events.append(Event.from_json(line))
        return log
