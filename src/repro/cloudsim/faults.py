"""Host-failure injection.

Real fleets lose hosts; a credible scheduler must cope with the fleet
shrinking under it.  :class:`FaultInjector` drives scripted or random
host failures and repairs through the simulation:

* on **failure**, the host's VMs crash off it and are emergency-replaced
  (first-fit over surviving hosts) — each displaced VM is charged a full
  observation interval of downtime (crash-restart, not live migration);
  VMs that fit nowhere stay unplaced (fully down) until capacity returns;
* while a host is **down**, it is excluded from placement: schedulers'
  migrations into it are rejected by the engine's capacity checks since
  the host is marked failed;
* on **repair**, the host rejoins empty and awake.

The injector composes with any scheduler; the integration tests assert
that the simulator's invariants (RAM capacity, placement consistency)
survive failures and that schedulers resume normal operation afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.errors import CapacityError, ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """A scripted fault: host ``pm_id`` fails at ``fail_step`` and is
    repaired at ``repair_step`` (exclusive; ``None`` = never)."""

    pm_id: int
    fail_step: int
    repair_step: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fail_step < 0:
            raise ConfigurationError("fail_step must be >= 0")
        if self.repair_step is not None and self.repair_step <= self.fail_step:
            raise ConfigurationError("repair must come after the failure")


@dataclass
class FaultReport:
    """What the injector did at one step."""

    failed_pms: List[int] = field(default_factory=list)
    repaired_pms: List[int] = field(default_factory=list)
    displaced_vms: List[int] = field(default_factory=list)
    stranded_vms: List[int] = field(default_factory=list)

    @property
    def any_activity(self) -> bool:
        return bool(
            self.failed_pms
            or self.repaired_pms
            or self.displaced_vms
            or self.stranded_vms
        )


class FaultInjector:
    """Applies scripted (or random) host failures to a data center.

    Args:
        events: scripted failures.  For random injection use
            :meth:`random_schedule`.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self._events = list(events)
        seen: Dict[int, List[FaultEvent]] = {}
        for event in self._events:
            seen.setdefault(event.pm_id, []).append(event)
        for pm_id, pm_events in seen.items():
            pm_events.sort(key=lambda e: e.fail_step)
            for before, after in zip(pm_events, pm_events[1:]):
                if before.repair_step is None or (
                    after.fail_step < before.repair_step
                ):
                    raise ConfigurationError(
                        f"overlapping fault events for PM {pm_id}"
                    )
        self._down: Set[int] = set()
        #: VMs with no home, waiting for capacity (VM id order retried).
        self._stranded: Set[int] = set()

    @classmethod
    def random_schedule(
        cls,
        num_pms: int,
        num_steps: int,
        failure_probability: float = 0.001,
        mean_repair_steps: float = 12.0,
        seed: int = 0,
    ) -> "FaultInjector":
        """Draw failures per host-step with geometric repair times."""
        if not 0 <= failure_probability <= 1:
            raise ConfigurationError("failure probability must be in [0, 1]")
        if mean_repair_steps < 1:
            raise ConfigurationError("mean repair must be >= 1 step")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for pm_id in range(num_pms):
            step = 0
            while step < num_steps:
                if rng.random() < failure_probability:
                    duration = 1 + int(
                        rng.geometric(1.0 / mean_repair_steps)
                    )
                    events.append(
                        FaultEvent(
                            pm_id=pm_id,
                            fail_step=step,
                            repair_step=min(step + duration, num_steps + 1),
                        )
                    )
                    step += duration
                step += 1
        return cls(events)

    @property
    def down_pm_ids(self) -> Set[int]:
        return set(self._down)

    @property
    def stranded_vm_ids(self) -> Set[int]:
        return set(self._stranded)

    def is_down(self, pm_id: int) -> bool:
        return pm_id in self._down

    def apply_step(self, datacenter: Datacenter, step: int) -> FaultReport:
        """Apply this step's failures/repairs; returns what happened.

        Call once per interval *before* the scheduler decides, so the
        scheduler observes the post-fault fleet.
        """
        report = FaultReport()
        for event in self._events:
            if event.repair_step == step and event.pm_id in self._down:
                self._down.discard(event.pm_id)
                datacenter.pm(event.pm_id).wake()
                report.repaired_pms.append(event.pm_id)
        for event in self._events:
            if event.fail_step == step and event.pm_id not in self._down:
                self._down.add(event.pm_id)
                report.failed_pms.append(event.pm_id)
                self._evacuate(datacenter, event.pm_id, report)
        self._retry_stranded(datacenter, report)
        return report

    def _evacuate(
        self, datacenter: Datacenter, pm_id: int, report: FaultReport
    ) -> None:
        for vm_id in sorted(datacenter.vms_on(pm_id)):
            datacenter.remove(vm_id)
            if self._emergency_place(datacenter, vm_id):
                report.displaced_vms.append(vm_id)
            else:
                self._stranded.add(vm_id)
                report.stranded_vms.append(vm_id)
        # A failed host cannot serve anything; park it asleep so it draws
        # no power and trips no placements.
        datacenter.pm(pm_id).sleep()

    def _emergency_place(self, datacenter: Datacenter, vm_id: int) -> bool:
        for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- cold path: runs only when a fault strands a VM
            if pm.pm_id in self._down:
                continue
            try:
                datacenter.place(vm_id, pm.pm_id)
                return True
            except CapacityError:
                continue
        return False

    def _retry_stranded(
        self, datacenter: Datacenter, report: FaultReport
    ) -> None:
        for vm_id in sorted(self._stranded):
            if self._emergency_place(datacenter, vm_id):
                self._stranded.discard(vm_id)
                report.displaced_vms.append(vm_id)

    def filter_migrations(self, migrations, datacenter: Datacenter):
        """Drop scheduler migrations that target a failed host."""
        return [
            migration
            for migration in migrations
            if migration.dest_pm_id not in self._down
        ]


class FaultTolerantScheduler:
    """Wrapper composing a fault injector with any scheduler.

    Applies the step's faults before delegating and filters decisions
    targeting failed hosts.  A VM stranded with no host is invisible to
    the SLA accountant while down (it sits on no host); its outage is
    visible in the injector's :class:`FaultReport` stream instead.
    """

    def __init__(self, scheduler, injector: FaultInjector) -> None:
        self.scheduler = scheduler
        self.injector = injector
        self.name = f"{scheduler.name}+faults"
        self.reports: List[FaultReport] = []

    def decide(self, observation):
        report = self.injector.apply_step(
            observation.datacenter, observation.step
        )
        self.reports.append(report)
        migrations = self.scheduler.decide(observation)
        return self.injector.filter_migrations(
            migrations, observation.datacenter
        )
