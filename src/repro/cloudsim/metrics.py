"""Per-step and aggregate simulation metrics.

Collects exactly the series the paper's figures plot — per-step operation
cost (Figs 2a/3a/4a/5a), cumulative migrations (2b/3b/4b/5b), active hosts
(2c/3c/4c/5c), and per-step scheduler execution time (2d/3d/4d/5d) — and
the Table 2/3 aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class StepMetrics:
    """Measurements for one observation interval."""

    step: int
    energy_cost_usd: float
    sla_cost_usd: float
    num_migrations_started: int
    num_migrations_rejected: int
    num_active_hosts: int
    scheduler_seconds: float
    mean_host_utilization: float
    num_overloaded_hosts: int

    @property
    def total_cost_usd(self) -> float:
        return self.energy_cost_usd + self.sla_cost_usd


@dataclass
class MetricsCollector:
    """Accumulates :class:`StepMetrics` and derives the paper's aggregates."""

    steps: List[StepMetrics] = field(default_factory=list)

    def record(self, metrics: StepMetrics) -> None:
        self.steps.append(metrics)

    # -- Table 2/3 aggregates ------------------------------------------
    @property
    def total_cost_usd(self) -> float:
        """Total operation cost over the run (Table row 1)."""
        return sum(s.total_cost_usd for s in self.steps)

    @property
    def total_energy_cost_usd(self) -> float:
        return sum(s.energy_cost_usd for s in self.steps)

    @property
    def total_sla_cost_usd(self) -> float:
        return sum(s.sla_cost_usd for s in self.steps)

    @property
    def total_migrations(self) -> int:
        """#VM migrations (Table row 2)."""
        return sum(s.num_migrations_started for s in self.steps)

    @property
    def mean_active_hosts(self) -> float:
        """Average #active hosts (Table row 3)."""
        if not self.steps:
            return 0.0
        return sum(s.num_active_hosts for s in self.steps) / len(self.steps)

    @property
    def mean_scheduler_seconds(self) -> float:
        """Average per-step execution time (Table row 4)."""
        if not self.steps:
            return 0.0
        return sum(s.scheduler_seconds for s in self.steps) / len(self.steps)

    @property
    def mean_scheduler_milliseconds(self) -> float:
        return self.mean_scheduler_seconds * 1000.0

    # -- Figure series --------------------------------------------------
    def per_step_cost_series(self) -> List[float]:
        """Figure (a) series: per-step operation cost in USD."""
        return [s.total_cost_usd for s in self.steps]

    def cumulative_migration_series(self) -> List[int]:
        """Figure (b) series: cumulative #migrations."""
        series, running = [], 0
        for s in self.steps:
            running += s.num_migrations_started
            series.append(running)
        return series

    def active_host_series(self) -> List[int]:
        """Figure (c) series: #active hosts per step."""
        return [s.num_active_hosts for s in self.steps]

    def scheduler_time_series_ms(self) -> List[float]:
        """Figure (d) series: per-step scheduler time in milliseconds."""
        return [s.scheduler_seconds * 1000.0 for s in self.steps]

    # -- Convergence ----------------------------------------------------
    def convergence_step(
        self, window: int = 20, tolerance: float = 0.10
    ) -> int:
        """First step after which the windowed mean per-step cost stays
        within ``tolerance`` (relative) of the final windowed mean.

        Reproduces the paper's "takes ~K steps to converge" reading of
        Figures 2(a)–5(a).  Returns the last step when the series never
        settles.
        """
        costs = self.per_step_cost_series()
        if len(costs) <= window:
            return len(costs)
        means = _rolling_mean(costs, window)
        final = means[-1]
        if abs(final) <= 1e-12:
            # A (numerically) zero final mean makes the relative band
            # meaningless: a cost-free run is converged from step 0.
            return 0
        for index, value in enumerate(means):
            tail = means[index:]
            if all(abs(v - final) <= tolerance * abs(final) for v in tail):
                return index
        return len(costs)


def _rolling_mean(values: Sequence[float], window: int) -> List[float]:
    means: List[float] = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
            means.append(running / window)
        else:
            means.append(running / (index + 1))
    return means
