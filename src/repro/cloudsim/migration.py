"""Live-migration engine.

Executes migration decisions against the :class:`Datacenter`, tracks which
VMs are in flight (a migration of ``TM = M/B`` seconds can span several
observation intervals), charges the CPU overhead of the copy process, and
reports per-VM migration downtime to the SLA accountant using the paper's
``alpha`` rule: time during migration when delivered CPU is below
``alpha * demanded`` counts as downtime (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.cloudsim.datacenter import Datacenter
from repro.errors import CapacityError, MigrationError


@dataclass(frozen=True)
class Migration:
    """A single migration decision: move VM ``vm_id`` to PM ``dest_pm_id``."""

    vm_id: int
    dest_pm_id: int


@dataclass
class _InFlight:
    vm_id: int
    source_pm_id: int
    dest_pm_id: int
    remaining_seconds: float
    total_seconds: float
    #: Stop-and-copy residue charged when the transfer completes
    #: (pre-copy model only; 0 under the single-shot model).
    final_downtime_seconds: float = 0.0


@dataclass(frozen=True)
class MigrationOutcome:
    """What happened when a batch of migrations was applied this step.

    Attributes:
        started: migrations accepted and started this step.
        rejected: migrations refused (destination full / VM already moving).
        completed: VM ids whose migration finished during this step.
        downtime_seconds: per-VM downtime charged this step by the alpha
            rule.
    """

    started: tuple[Migration, ...]
    rejected: tuple[Migration, ...]
    completed: tuple[int, ...]
    downtime_seconds: Dict[int, float]


class MigrationEngine:
    """Applies migration decisions and models their cost over time.

    The placement map is updated at migration *start* (pre-copy live
    migration leaves the VM running; the switch-over is what produces the
    brief downtime), while CPU overhead and downtime accrue for the whole
    transfer window.

    Args:
        datacenter: the placement substrate to mutate.
        overhead_fraction: CPU share lost by a VM while its pages are
            being copied (CloudSim default: 10 %).
        alpha: downtime threshold — delivered CPU below ``alpha * demand``
            during migration counts as downtime.
    """

    def __init__(
        self,
        datacenter: Datacenter,
        overhead_fraction: float = 0.10,
        alpha: float = 0.30,
        topology=None,
        precopy=None,
    ) -> None:
        if not 0.0 <= overhead_fraction < 1.0:
            raise MigrationError("overhead fraction must be in [0, 1)")
        if not 0.0 <= alpha <= 1.0:
            raise MigrationError("alpha must be in [0, 1]")
        self._dc = datacenter
        self._overhead = overhead_fraction
        self._alpha = alpha
        self._topology = topology
        #: Optional PrecopyModel: iterative dirty-page transfer timing
        #: with an explicit stop-and-copy downtime at completion.
        self._precopy = precopy
        self._in_flight: Dict[int, _InFlight] = {}
        self.total_migrations = 0
        #: Total bytes-times-hops moved, for network-traffic cost modules.
        self.total_gb_hops = 0.0

    @property
    def in_flight_vm_ids(self) -> Set[int]:
        """Ids of the VMs currently being migrated."""
        return set(self._in_flight)

    def is_migrating(self, vm_id: int) -> bool:
        return vm_id in self._in_flight

    def cancel(self, vm_id: int) -> bool:
        """Abort an in-flight migration (the VM is being deleted).

        The placement map was already updated at start, so no placement
        rollback happens here — the caller removes the VM from whatever
        host it occupies.  No further overhead or downtime accrues, and
        no completion event will be reported.  Returns whether a
        transfer was actually in flight.
        """
        return self._in_flight.pop(vm_id, None) is not None

    def restore_flight(
        self,
        vm_id: int,
        source_pm_id: int,
        dest_pm_id: int,
        remaining_seconds: float,
        total_seconds: float,
        final_downtime_seconds: float = 0.0,
    ) -> None:
        """Re-register an in-flight transfer from a checkpoint.

        Callers must restore flights in their original insertion order:
        :meth:`advance` iterates the in-flight dict, and the resulting
        downtime-report order feeds the SLA accountant's first-seen
        record order, which serialized results depend on.
        """
        if vm_id in self._in_flight:
            raise MigrationError(f"VM {vm_id} is already in flight")
        self._in_flight[vm_id] = _InFlight(
            vm_id=vm_id,
            source_pm_id=source_pm_id,
            dest_pm_id=dest_pm_id,
            remaining_seconds=remaining_seconds,
            total_seconds=total_seconds,
            final_downtime_seconds=final_downtime_seconds,
        )

    def start(self, migrations: Iterable[Migration]) -> MigrationOutcome:
        """Begin a batch of migrations, skipping infeasible ones.

        A migration is rejected (not raised) when the VM is already in
        flight, the destination has insufficient RAM, or the destination
        equals the current host.  Rejections are reported so schedulers
        can learn from them.
        """
        started: List[Migration] = []
        rejected: List[Migration] = []
        for mig in migrations:
            if mig.vm_id in self._in_flight:
                rejected.append(mig)
                continue
            source = self._dc.host_of(mig.vm_id)
            if source is None or source == mig.dest_pm_id:
                rejected.append(mig)
                continue
            try:
                self._dc.move(mig.vm_id, mig.dest_pm_id)
            except CapacityError:
                rejected.append(mig)
                continue
            # TM = M / B (Section 3.3) with B the host network bandwidth:
            # the paper's "migration time of a VM of 0.5 GB RAM is at
            # least 4000 ms" corresponds to the 1 Gbps host link, not the
            # VM's own traffic allocation.  With a topology attached, B
            # is the path bandwidth instead (fat-tree cross-pod paths are
            # slower than rack-local ones).
            vm = self._dc.vm(mig.vm_id)
            if self._topology is not None:
                bandwidth = self._topology.path_bandwidth_mbps(
                    source, mig.dest_pm_id
                )
                self.total_gb_hops += (
                    vm.ram_mb
                    / 1024.0
                    * self._topology.hop_count(source, mig.dest_pm_id)
                )
            else:
                bandwidth = min(
                    self._dc.pm(source).bandwidth_mbps,
                    self._dc.pm(mig.dest_pm_id).bandwidth_mbps,
                )
            if self._precopy is not None:
                outcome = self._precopy.transfer(vm.ram_mb, bandwidth)
                duration = outcome.total_seconds
                final_downtime = outcome.downtime_seconds
            else:
                duration = vm.ram_mb * 8.0 / bandwidth
                final_downtime = 0.0
            self._in_flight[mig.vm_id] = _InFlight(
                vm_id=mig.vm_id,
                source_pm_id=source,
                dest_pm_id=mig.dest_pm_id,
                remaining_seconds=duration,
                total_seconds=duration,
                final_downtime_seconds=final_downtime,
            )
            self.total_migrations += 1
            started.append(mig)
        return MigrationOutcome(
            started=tuple(started),
            rejected=tuple(rejected),
            completed=(),
            downtime_seconds={},
        )

    def advance(self, interval_seconds: float) -> MigrationOutcome:
        """Advance all in-flight migrations by one observation interval.

        Must be called *after* :meth:`Datacenter.share_cpu` so that
        delivered utilizations reflect the current placement.  Charges
        the migration CPU overhead, accrues alpha-rule downtime, and
        retires migrations whose transfer completed within the interval.
        """
        if interval_seconds <= 0:
            raise MigrationError("interval must be > 0")
        completed: List[int] = []
        downtime: Dict[int, float] = {}
        self._dc.apply_migration_overhead(self._in_flight, self._overhead)
        for vm_id, flight in list(self._in_flight.items()):
            vm = self._dc.vm(vm_id)
            active_window = min(flight.remaining_seconds, interval_seconds)
            demanded = vm.demanded_utilization
            delivered = vm.delivered_utilization
            if demanded > 0 and delivered < self._alpha * demanded:
                # Severe degradation: the whole transfer window counts as
                # downtime (the alpha rule of Section 3.3).
                downtime[vm_id] = active_window
            else:
                # The copy process itself steals ``overhead`` of the VM's
                # CPU for the transfer window; CloudSim charges this
                # degradation-due-to-migration against the SLA, which is
                # why the paper stresses minimizing migration counts.
                downtime[vm_id] = self._overhead * active_window
            flight.remaining_seconds -= interval_seconds
            if flight.remaining_seconds <= 0:
                completed.append(vm_id)
                if flight.final_downtime_seconds > 0.0:
                    # The stop-and-copy residue of the pre-copy model.
                    downtime[vm_id] = (
                        downtime.get(vm_id, 0.0)
                        + flight.final_downtime_seconds
                    )
                del self._in_flight[vm_id]
        return MigrationOutcome(
            started=(),
            rejected=(),
            completed=tuple(completed),
            downtime_seconds=downtime,
        )
