"""VMM-style utilization monitoring.

The paper's global resource manager receives workload dynamics from the
per-host VMMs.  :class:`UtilizationMonitor` plays that role: it keeps a
bounded history of per-VM and per-host utilization samples, which the MMT
detectors (IQR/MAD/LR/LRR) and the learning schedulers consume.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.errors import ConfigurationError


class UtilizationMonitor:
    """Rolling history of demanded utilization per VM and per host.

    When the observed datacenter exposes a struct-of-arrays mirror, one
    observation is two vector copies into ``(history_length, N)`` /
    ``(history_length, M)`` ring buffers; per-entity histories are read
    back as ring columns.  Observing a plain object datacenter (the
    retained reference implementation) falls back to the original
    dict-of-deques bookkeeping.  The sampled quantities are identical —
    ``vm.demanded_utilization`` and the host's demanded utilization —
    so both storages return the same values bit for bit.

    Args:
        history_length: number of most-recent samples retained per entity.
            The Beloglazov heuristics use windows of 10–12 samples.
    """

    def __init__(self, history_length: int = 12) -> None:
        if history_length < 1:
            raise ConfigurationError("history_length must be >= 1")
        self._length = history_length
        self._vm_history: Dict[int, Deque[float]] = {}
        self._host_history: Dict[int, Deque[float]] = {}
        self._steps_observed = 0
        # Ring-buffer storage (allocated on the first array observation).
        self._vm_ring: Optional[np.ndarray] = None
        self._host_ring: Optional[np.ndarray] = None
        self._ring_filled = 0
        self._ring_pos = 0

    @property
    def history_length(self) -> int:
        return self._length

    @property
    def steps_observed(self) -> int:
        return self._steps_observed

    def observe(self, datacenter: Datacenter) -> None:
        """Record one sample for every VM and every host."""
        arrays = getattr(datacenter, "arrays", None)
        if (
            arrays is not None
            and not self._vm_history
            and (
                self._vm_ring is None
                or self._vm_ring.shape[1] == arrays.num_vms
            )
        ):
            if self._vm_ring is None:
                self._vm_ring = np.zeros(
                    (self._length, arrays.num_vms), dtype=np.float64
                )
                self._host_ring = np.zeros(
                    (self._length, arrays.num_pms), dtype=np.float64
                )
            self._vm_ring[self._ring_pos] = arrays.vm_demand
            self._host_ring[self._ring_pos] = arrays.pm_demand_utilization()
            self._ring_pos = (self._ring_pos + 1) % self._length
            self._ring_filled = min(self._ring_filled + 1, self._length)
        else:
            self._demote_ring()
            for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- compat path for object-model datacenters
                self._vm_history.setdefault(
                    vm.vm_id, deque(maxlen=self._length)
                ).append(vm.demanded_utilization)
            for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- compat path for object-model datacenters
                self._host_history.setdefault(
                    pm.pm_id, deque(maxlen=self._length)
                ).append(datacenter.demanded_utilization(pm.pm_id))
        self._steps_observed += 1

    def _chronological_rows(self) -> np.ndarray:
        """Ring row indices oldest-first."""
        if self._ring_filled < self._length:
            return np.arange(self._ring_filled, dtype=np.int64)
        return np.concatenate(
            [
                np.arange(self._ring_pos, self._length, dtype=np.int64),
                np.arange(self._ring_pos, dtype=np.int64),
            ]
        )

    def _demote_ring(self) -> None:
        """Fold ring-buffer samples back into deques (datacenter switch)."""
        if self._vm_ring is None:
            return
        rows = self._chronological_rows()
        for vm_id in range(self._vm_ring.shape[1]):
            history = deque(self._vm_ring[rows, vm_id].tolist(), maxlen=self._length)
            self._vm_history[vm_id] = history
        assert self._host_ring is not None
        for pm_id in range(self._host_ring.shape[1]):
            history = deque(self._host_ring[rows, pm_id].tolist(), maxlen=self._length)
            self._host_history[pm_id] = history
        self._vm_ring = None
        self._host_ring = None
        self._ring_filled = 0
        self._ring_pos = 0

    def vm_history(self, vm_id: int) -> List[float]:
        """Most-recent demanded-utilization samples for a VM (oldest first)."""
        if self._vm_ring is not None:
            if not 0 <= vm_id < self._vm_ring.shape[1]:
                return []
            return self._vm_ring[self._chronological_rows(), vm_id].tolist()
        return list(self._vm_history.get(vm_id, ()))

    def host_history(self, pm_id: int) -> List[float]:
        """Most-recent demanded-utilization samples for a host."""
        if self._host_ring is not None:
            if not 0 <= pm_id < self._host_ring.shape[1]:
                return []
            return self._host_ring[self._chronological_rows(), pm_id].tolist()
        return list(self._host_history.get(pm_id, ()))

    def host_histories(self) -> Dict[int, List[float]]:
        """Snapshot of all host histories."""
        if self._host_ring is not None:
            ordered = self._host_ring[self._chronological_rows()]
            return {
                pm_id: ordered[:, pm_id].tolist()
                for pm_id in range(self._host_ring.shape[1])
            }
        return {pm_id: list(h) for pm_id, h in self._host_history.items()}

    def last_host_utilization(self, pm_id: int, default: float = 0.0) -> float:
        if self._host_ring is not None:
            if self._ring_filled == 0 or not 0 <= pm_id < self._host_ring.shape[1]:
                return default
            last = (self._ring_pos - 1) % self._length
            return float(self._host_ring[last, pm_id])
        history = self._host_history.get(pm_id)
        if not history:
            return default
        return history[-1]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; 0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def interquartile_range(values: Sequence[float]) -> float:
    """IQR via the inclusive quartile method; 0 for fewer than 2 samples."""
    if len(values) < 2:
        return 0.0
    ordered = sorted(values)
    return _quantile(ordered, 0.75) - _quantile(ordered, 0.25)


def median_absolute_deviation(values: Sequence[float]) -> float:
    """MAD about the median; 0 for an empty sequence."""
    if not values:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    frac = position - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac
