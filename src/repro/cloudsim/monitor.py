"""VMM-style utilization monitoring.

The paper's global resource manager receives workload dynamics from the
per-host VMMs.  :class:`UtilizationMonitor` plays that role: it keeps a
bounded history of per-VM and per-host utilization samples, which the MMT
detectors (IQR/MAD/LR/LRR) and the learning schedulers consume.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.cloudsim.datacenter import Datacenter
from repro.errors import ConfigurationError


class UtilizationMonitor:
    """Rolling history of demanded utilization per VM and per host.

    Args:
        history_length: number of most-recent samples retained per entity.
            The Beloglazov heuristics use windows of 10–12 samples.
    """

    def __init__(self, history_length: int = 12) -> None:
        if history_length < 1:
            raise ConfigurationError("history_length must be >= 1")
        self._length = history_length
        self._vm_history: Dict[int, Deque[float]] = {}
        self._host_history: Dict[int, Deque[float]] = {}
        self._steps_observed = 0

    @property
    def history_length(self) -> int:
        return self._length

    @property
    def steps_observed(self) -> int:
        return self._steps_observed

    def observe(self, datacenter: Datacenter) -> None:
        """Record one sample for every VM and every host."""
        for vm in datacenter.vms:
            self._vm_history.setdefault(
                vm.vm_id, deque(maxlen=self._length)
            ).append(vm.demanded_utilization)
        for pm in datacenter.pms:
            self._host_history.setdefault(
                pm.pm_id, deque(maxlen=self._length)
            ).append(datacenter.demanded_utilization(pm.pm_id))
        self._steps_observed += 1

    def vm_history(self, vm_id: int) -> List[float]:
        """Most-recent demanded-utilization samples for a VM (oldest first)."""
        return list(self._vm_history.get(vm_id, ()))

    def host_history(self, pm_id: int) -> List[float]:
        """Most-recent demanded-utilization samples for a host."""
        return list(self._host_history.get(pm_id, ()))

    def host_histories(self) -> Dict[int, List[float]]:
        """Snapshot of all host histories."""
        return {pm_id: list(h) for pm_id, h in self._host_history.items()}

    def last_host_utilization(self, pm_id: int, default: float = 0.0) -> float:
        history = self._host_history.get(pm_id)
        if not history:
            return default
        return history[-1]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; 0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def interquartile_range(values: Sequence[float]) -> float:
    """IQR via the inclusive quartile method; 0 for fewer than 2 samples."""
    if len(values) < 2:
        return 0.0
    ordered = sorted(values)
    return _quantile(ordered, 0.75) - _quantile(ordered, 0.25)


def median_absolute_deviation(values: Sequence[float]) -> float:
    """MAD about the median; 0 for an empty sequence."""
    if not values:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    frac = position - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac
