"""Data-center network topologies (the paper's Section-7 extension).

The paper's conclusion names leveraging network topology — fat-trees in
particular — as the planned extension, arguing network awareness "can be
seamlessly accommodated without modifying [Megh] algorithmically".  This
module provides that substrate: topologies map a PM pair to an effective
migration-path bandwidth and hop count, and the migration engine consumes
them so that cross-pod migrations take longer (and therefore degrade VMs
longer) than rack-local ones.  Megh then learns to prefer nearby
destinations purely from the cost signal.

Implemented topologies:

* :class:`FlatNetwork` — every pair connected at full host-link speed
  (the paper's baseline assumption);
* :class:`StarNetwork` — one core switch, per-host uplinks;
* :class:`FatTreeTopology` — the classic k-ary fat-tree of Leiserson
  (paper reference [49]): hosts grouped under edge switches inside pods,
  with configurable per-level oversubscription.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class NetworkTopology(Protocol):
    """Maps host pairs to migration-path properties."""

    def path_bandwidth_mbps(self, src_pm: int, dst_pm: int) -> float:
        """Effective bandwidth of the migration path, in Mbit/s."""
        ...

    def hop_count(self, src_pm: int, dst_pm: int) -> int:
        """Switch hops between the hosts (0 for the same host)."""
        ...


@dataclass(frozen=True)
class FlatNetwork:
    """Idealized non-blocking fabric: full link speed between any pair."""

    link_bandwidth_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.link_bandwidth_mbps <= 0:
            raise ConfigurationError("link bandwidth must be > 0")

    def path_bandwidth_mbps(self, src_pm: int, dst_pm: int) -> float:
        if src_pm == dst_pm:
            return float("inf")
        return self.link_bandwidth_mbps

    def hop_count(self, src_pm: int, dst_pm: int) -> int:
        return 0 if src_pm == dst_pm else 1


@dataclass(frozen=True)
class StarNetwork:
    """All hosts hang off one core switch.

    The path crosses two host uplinks; its bandwidth is the uplink speed
    (the core is assumed non-blocking).
    """

    uplink_bandwidth_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.uplink_bandwidth_mbps <= 0:
            raise ConfigurationError("uplink bandwidth must be > 0")

    def path_bandwidth_mbps(self, src_pm: int, dst_pm: int) -> float:
        if src_pm == dst_pm:
            return float("inf")
        return self.uplink_bandwidth_mbps

    def hop_count(self, src_pm: int, dst_pm: int) -> int:
        return 0 if src_pm == dst_pm else 2


class FatTreeTopology:
    """A k-ary fat-tree with per-level oversubscription.

    Hosts are assigned to positions in pm_id order: ``k/2`` hosts per
    edge switch, ``k/2`` edge switches per pod, ``k`` pods — so up to
    ``k^3 / 4`` hosts.  Path classes and their effective bandwidths:

    * same edge switch (2 hops): full edge link speed;
    * same pod (4 hops): edge speed divided by the edge-level
      oversubscription factor;
    * across pods (6 hops): divided by edge- times aggregation-level
      oversubscription.

    Args:
        k: fat-tree arity (even, >= 2).
        edge_bandwidth_mbps: host-to-edge link speed.
        edge_oversubscription: ratio of downlink to uplink capacity at
            edge switches (1.0 = non-blocking, Leiserson's ideal).
        aggregation_oversubscription: same at the aggregation level.
    """

    def __init__(
        self,
        k: int = 4,
        edge_bandwidth_mbps: float = 1000.0,
        edge_oversubscription: float = 1.0,
        aggregation_oversubscription: float = 1.0,
    ) -> None:
        if k < 2 or k % 2 != 0:
            raise ConfigurationError("fat-tree arity k must be even and >= 2")
        if edge_bandwidth_mbps <= 0:
            raise ConfigurationError("edge bandwidth must be > 0")
        if edge_oversubscription < 1.0 or aggregation_oversubscription < 1.0:
            raise ConfigurationError("oversubscription factors must be >= 1")
        self.k = k
        self.edge_bandwidth_mbps = edge_bandwidth_mbps
        self.edge_oversubscription = edge_oversubscription
        self.aggregation_oversubscription = aggregation_oversubscription

    @property
    def hosts_per_edge(self) -> int:
        return self.k // 2

    @property
    def hosts_per_pod(self) -> int:
        return (self.k // 2) ** 2

    @property
    def max_hosts(self) -> int:
        """Capacity of the tree: ``k^3 / 4`` hosts."""
        return self.k**3 // 4

    def _check_host(self, pm_id: int) -> None:
        if not 0 <= pm_id < self.max_hosts:
            raise ConfigurationError(
                f"pm_id {pm_id} exceeds the k={self.k} fat-tree capacity "
                f"of {self.max_hosts} hosts"
            )

    def edge_of(self, pm_id: int) -> int:
        """Global index of the host's edge switch."""
        self._check_host(pm_id)
        return pm_id // self.hosts_per_edge

    def pod_of(self, pm_id: int) -> int:
        """Index of the host's pod."""
        self._check_host(pm_id)
        return pm_id // self.hosts_per_pod

    def hop_count(self, src_pm: int, dst_pm: int) -> int:
        self._check_host(src_pm)
        self._check_host(dst_pm)
        if src_pm == dst_pm:
            return 0
        if self.edge_of(src_pm) == self.edge_of(dst_pm):
            return 2  # up to the edge switch and down
        if self.pod_of(src_pm) == self.pod_of(dst_pm):
            return 4  # edge -> aggregation -> edge
        return 6  # edge -> aggregation -> core -> aggregation -> edge

    def path_bandwidth_mbps(self, src_pm: int, dst_pm: int) -> float:
        hops = self.hop_count(src_pm, dst_pm)
        if hops == 0:
            return float("inf")
        bandwidth = self.edge_bandwidth_mbps
        if hops >= 4:
            bandwidth /= self.edge_oversubscription
        if hops >= 6:
            bandwidth /= self.aggregation_oversubscription
        return bandwidth


def migration_seconds(
    topology: NetworkTopology, ram_mb: float, src_pm: int, dst_pm: int
) -> float:
    """Live-migration transfer time over the topology path (``TM = M/B``)."""
    if ram_mb <= 0:
        raise ConfigurationError("ram must be > 0")
    bandwidth = topology.path_bandwidth_mbps(src_pm, dst_pm)
    if bandwidth == float("inf"):
        return 0.0
    return ram_mb * 8.0 / bandwidth


def traffic_cost_usd(
    topology: NetworkTopology,
    ram_mb: float,
    src_pm: int,
    dst_pm: int,
    usd_per_gb_hop: float,
) -> float:
    """Optional network-traffic cost: bytes moved x hops x price.

    The paper's cost model is modular ("one can build cost models for
    these resources and add them as additional modules"); this is such a
    module for migration traffic.
    """
    if usd_per_gb_hop < 0:
        raise ConfigurationError("price must be >= 0")
    gigabytes = ram_mb / 1024.0
    return gigabytes * topology.hop_count(src_pm, dst_pm) * usd_per_gb_hop
