"""Physical machine (host) model.

A :class:`PhysicalMachine` aggregates CPU capacity (the paper folds all
cores of a host into one logical CPU with their cumulative MIPS), RAM, and
a power model.  Placement bookkeeping lives in
:class:`repro.cloudsim.datacenter.Datacenter`; the PM itself only knows its
capacities and power curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloudsim.power import PowerModel
from repro.errors import ConfigurationError


@dataclass
class PhysicalMachine:
    """A host in the data center.

    Attributes:
        pm_id: unique integer identifier, dense in ``[0, M)``.
        mips: cumulative CPU capacity of all cores.
        ram_mb: RAM capacity in megabytes.
        bandwidth_mbps: network bandwidth in megabits per second.
        power_model: maps CPU utilization to watts.
        asleep: a sleeping host consumes no power and hosts no VMs.
    """

    pm_id: int
    mips: float
    ram_mb: float
    bandwidth_mbps: float
    power_model: PowerModel
    asleep: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.pm_id < 0:
            raise ConfigurationError("pm_id must be >= 0")
        if self.mips <= 0:
            raise ConfigurationError("PM mips must be > 0")
        if self.ram_mb <= 0:
            raise ConfigurationError("PM ram must be > 0")
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError("PM bandwidth must be > 0")

    def power(self, utilization: float) -> float:
        """Instantaneous power draw at ``utilization``; 0 W while asleep."""
        if self.asleep:
            return 0.0
        return self.power_model.power(utilization)

    def sleep(self) -> None:
        """Put the host into its zero-power sleep state."""
        self.asleep = True

    def wake(self) -> None:
        """Wake the host so it can serve VMs again."""
        self.asleep = False
