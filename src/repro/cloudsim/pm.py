"""Physical machine (host) model.

A :class:`PhysicalMachine` aggregates CPU capacity (the paper folds all
cores of a host into one logical CPU with their cumulative MIPS), RAM, and
a power model.  Placement bookkeeping lives in
:class:`repro.cloudsim.datacenter.Datacenter`; the PM itself only knows its
capacities and power curve.

Like :class:`~repro.cloudsim.vm.VirtualMachine`, a PM owned by a
datacenter is *bound* to the shared
:class:`~repro.cloudsim.soa.DatacenterArrays`: its ``asleep`` flag then
lives in the ``pm_asleep`` vector so the vectorized power evaluation and
the object API always agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cloudsim.power import PowerModel
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cloudsim.soa import DatacenterArrays


class PhysicalMachine:
    """A host in the data center.

    Attributes:
        pm_id: unique integer identifier, dense in ``[0, M)``.
        mips: cumulative CPU capacity of all cores.
        ram_mb: RAM capacity in megabytes.
        bandwidth_mbps: network bandwidth in megabits per second.
        power_model: maps CPU utilization to watts.
        asleep: a sleeping host consumes no power and hosts no VMs.
    """

    def __init__(
        self,
        pm_id: int,
        mips: float,
        ram_mb: float,
        bandwidth_mbps: float,
        power_model: PowerModel,
        asleep: bool = False,
    ) -> None:
        if pm_id < 0:
            raise ConfigurationError("pm_id must be >= 0")
        if mips <= 0:
            raise ConfigurationError("PM mips must be > 0")
        if ram_mb <= 0:
            raise ConfigurationError("PM ram must be > 0")
        if bandwidth_mbps <= 0:
            raise ConfigurationError("PM bandwidth must be > 0")
        self.pm_id = pm_id
        self.mips = mips
        self.ram_mb = ram_mb
        self.bandwidth_mbps = bandwidth_mbps
        self.power_model = power_model
        self._arrays: Optional["DatacenterArrays"] = None
        self._index = -1
        self._asleep = asleep

    def _bind(self, arrays: "DatacenterArrays", index: int) -> None:
        """Move this PM's dynamic state into a datacenter's arrays."""
        arrays.pm_mips[index] = self.mips
        arrays.pm_ram_mb[index] = self.ram_mb
        arrays.pm_bandwidth_mbps[index] = self.bandwidth_mbps
        arrays.pm_asleep[index] = self._asleep
        self._arrays = arrays
        self._index = index

    def __repr__(self) -> str:
        return (
            f"PhysicalMachine(pm_id={self.pm_id}, mips={self.mips}, "
            f"ram_mb={self.ram_mb}, bandwidth_mbps={self.bandwidth_mbps}, "
            f"power_model={self.power_model!r}, asleep={self.asleep})"
        )

    @property
    def asleep(self) -> bool:
        arrays = self._arrays
        if arrays is None:
            return self._asleep
        return bool(arrays.pm_asleep[self._index])

    @asleep.setter
    def asleep(self, value: bool) -> None:
        arrays = self._arrays
        if arrays is None:
            self._asleep = value
        else:
            arrays.pm_asleep[self._index] = value

    def power(self, utilization: float) -> float:
        """Instantaneous power draw at ``utilization``; 0 W while asleep."""
        if self.asleep:
            return 0.0
        return self.power_model.power(utilization)

    def sleep(self) -> None:
        """Put the host into its zero-power sleep state."""
        self.asleep = True

    def wake(self) -> None:
        """Wake the host so it can serve VMs again."""
        self.asleep = False
