"""Host power models.

The paper (Table 1) uses SPECpower_ssj2008 measurements for two server
generations.  :class:`SpecPowerModel` interpolates linearly between the
published 10 %-granularity measurements, exactly as CloudSim's
``PowerModelSpecPower`` does.  :class:`LinearPowerModel` is the classic
idle + proportional model, useful for ablations and synthetic hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError


class PowerModel(Protocol):
    """Maps a CPU utilization fraction in ``[0, 1]`` to power in watts.

    Models may additionally provide ``power_batch(utilizations)``
    returning a vector of draws bit-identical to calling ``power`` on
    each element; the vectorized energy accounting uses it when present
    and falls back to the scalar method otherwise.
    """

    def power(self, utilization: float) -> float:
        """Return the instantaneous power draw at the given utilization."""
        ...

    @property
    def max_power(self) -> float:
        """Power draw at 100 % utilization."""
        ...


def _clamp_unit(value: float) -> float:
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


@dataclass(frozen=True)
class SpecPowerModel:
    """Piecewise-linear interpolation of a SPECpower measurement row.

    Args:
        name: human-readable server model name.
        watts: power at 0 %, 10 %, ..., 100 % utilization (11 values).
    """

    name: str
    watts: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.watts) != 11:
            raise ConfigurationError(
                f"SpecPowerModel needs 11 measurements (0%..100%), "
                f"got {len(self.watts)}"
            )
        if any(w < 0 for w in self.watts):
            raise ConfigurationError("power measurements must be >= 0")

    def power(self, utilization: float) -> float:
        """Interpolate the SPEC table at ``utilization`` in ``[0, 1]``."""
        u = _clamp_unit(utilization) * 10.0
        low = int(u)
        if low >= 10:
            return self.watts[10]
        frac = u - low
        return self.watts[low] * (1.0 - frac) + self.watts[low + 1] * frac

    @cached_property
    def _watts_array(self) -> np.ndarray:
        return np.asarray(self.watts, dtype=np.float64)

    def power_batch(self, utilizations: np.ndarray) -> np.ndarray:
        """Vectorized ``power``; bit-identical to the scalar formula.

        Same operation sequence as :meth:`power` — clamp, scale by 10,
        truncate, interpolate — applied elementwise, so each output
        equals the scalar call on the same input down to the last bit.
        """
        u = np.clip(np.asarray(utilizations, dtype=np.float64), 0.0, 1.0) * 10.0
        low = u.astype(np.int64)
        watts = self._watts_array
        out = np.empty_like(u)
        saturated = low >= 10
        out[saturated] = watts[10]
        rest = ~saturated
        low_rest = low[rest]
        frac = u[rest] - low_rest
        out[rest] = (
            watts[low_rest] * (1.0 - frac) + watts[low_rest + 1] * frac
        )
        return out

    @property
    def idle_power(self) -> float:
        """Power draw of an empty-but-awake host."""
        return self.watts[0]

    @property
    def max_power(self) -> float:
        return self.watts[10]


@dataclass(frozen=True)
class LinearPowerModel:
    """``P(u) = idle + (peak - idle) * u`` — the textbook linear model."""

    idle_watts: float
    peak_watts: float

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.peak_watts < self.idle_watts:
            raise ConfigurationError(
                "need 0 <= idle_watts <= peak_watts for a linear power model"
            )

    def power(self, utilization: float) -> float:
        u = _clamp_unit(utilization)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    def power_batch(self, utilizations: np.ndarray) -> np.ndarray:
        """Vectorized ``power``; bit-identical to the scalar formula."""
        u = np.clip(np.asarray(utilizations, dtype=np.float64), 0.0, 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    @property
    def idle_power(self) -> float:
        return self.idle_watts

    @property
    def max_power(self) -> float:
        return self.peak_watts


#: HP ProLiant ML110 G4 SPECpower row (Table 1 of the paper).
HP_PROLIANT_G4 = SpecPowerModel(
    name="HP ProLiant ML110 G4",
    watts=(86.0, 89.4, 92.6, 96.0, 99.5, 102.0, 106.0, 108.0, 112.0, 114.0, 117.0),
)

#: HP ProLiant ML110 G5 SPECpower row (Table 1 of the paper).
HP_PROLIANT_G5 = SpecPowerModel(
    name="HP ProLiant ML110 G5",
    watts=(93.7, 97.0, 101.0, 105.0, 110.0, 116.0, 121.0, 125.0, 129.0, 133.0, 135.0),
)


def energy_joules(
    power_model: PowerModel, utilization: float, duration_seconds: float
) -> float:
    """Energy consumed holding ``utilization`` for ``duration_seconds``."""
    if duration_seconds < 0:
        raise ConfigurationError("duration must be >= 0")
    return power_model.power(utilization) * duration_seconds


def average_power(
    power_model: PowerModel, utilizations: Sequence[float]
) -> float:
    """Mean power draw over a sequence of utilization samples."""
    if not utilizations:
        return 0.0
    return sum(power_model.power(u) for u in utilizations) / len(utilizations)
