"""Pre-copy live-migration model.

The paper (following Clark et al., its reference [4]) models migration
time as a single transfer ``TM = M/B``.  Real pre-copy live migration is
iterative: the full RAM is copied while the VM keeps dirtying pages, then
successively smaller dirty sets are copied, and a final brief
*stop-and-copy* round transfers the residue — that residue transfer is
the true downtime.  This module implements that model; the migration
engine can use it instead of the single-shot transfer
(``SimulationConfig.datacenter`` is untouched — pass a
:class:`PrecopyModel` to :class:`~repro.cloudsim.migration.MigrationEngine`).

With dirty rate ``D`` (MB/s) and bandwidth ``B`` (MB/s), round ``i``'s
transfer size is ``M * (D/B)^i``: convergent when ``D < B``, divergent
otherwise (the model then forces stop-and-copy after ``max_rounds``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PrecopyOutcome:
    """Result of a modelled pre-copy migration."""

    total_seconds: float
    downtime_seconds: float
    rounds: int
    residual_mb: float


@dataclass(frozen=True)
class PrecopyModel:
    """Iterative pre-copy transfer model.

    Attributes:
        dirty_rate_mbps: page-dirtying rate in megabits per second
            (applied while the VM runs during the copy rounds).
        stop_threshold_mb: residue small enough to stop-and-copy.
        max_rounds: forced stop-and-copy after this many rounds (keeps
            divergent migrations bounded).
    """

    dirty_rate_mbps: float = 100.0
    stop_threshold_mb: float = 8.0
    max_rounds: int = 30

    def __post_init__(self) -> None:
        if self.dirty_rate_mbps < 0:
            raise ConfigurationError("dirty rate must be >= 0")
        if self.stop_threshold_mb <= 0:
            raise ConfigurationError("stop threshold must be > 0")
        if self.max_rounds < 1:
            raise ConfigurationError("max rounds must be >= 1")

    def transfer(
        self, ram_mb: float, bandwidth_mbps: float
    ) -> PrecopyOutcome:
        """Model one migration; returns timing and the downtime residue."""
        if ram_mb <= 0:
            raise ConfigurationError("ram must be > 0")
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        bandwidth_mb_per_s = bandwidth_mbps / 8.0
        dirty_mb_per_s = self.dirty_rate_mbps / 8.0
        remaining = ram_mb
        total_seconds = 0.0
        rounds = 0
        while rounds < self.max_rounds and remaining > self.stop_threshold_mb:
            round_seconds = remaining / bandwidth_mb_per_s
            total_seconds += round_seconds
            rounds += 1
            dirtied = dirty_mb_per_s * round_seconds
            remaining = min(ram_mb, dirtied)
            if dirty_mb_per_s >= bandwidth_mb_per_s:
                # Divergent: further rounds cannot shrink the residue.
                break
        downtime = remaining / bandwidth_mb_per_s
        total_seconds += downtime
        return PrecopyOutcome(
            total_seconds=total_seconds,
            downtime_seconds=downtime,
            rounds=rounds,
            residual_mb=remaining,
        )

    def convergence_ratio(self, bandwidth_mbps: float) -> float:
        """``D/B`` — below 1 the rounds shrink geometrically."""
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        return self.dirty_rate_mbps / bandwidth_mbps
