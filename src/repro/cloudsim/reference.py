"""The retained pre-rewrite (pure-object) datacenter — the oracle.

This is the ``Datacenter`` implementation as it existed before the
struct-of-arrays rewrite: placement in a ``dict``/``set`` index, every
per-PM aggregate re-summed from the hosted VMs on each query, CPU
sharing as a per-host Python loop.  It is kept for two purposes:

* the differential oracle tests
  (``tests/cloudsim/test_vectorized_equivalence.py``) drive it and the
  vectorized :class:`~repro.cloudsim.datacenter.Datacenter` through the
  same operation sequences and assert every query agrees bit-for-bit;
* ``benchmarks/bench_sim_step.py --backend reference`` measures the
  pre-rewrite pipeline for honest before/after numbers.

The only deliberate difference from the historical code: per-host sums
iterate the hosted VMs in **ascending id order** (``sorted``), the
canonical accumulation order the vectorized backend uses.  The golden
decision-trace fixtures reproduce bit-for-bit under both orders, so
this is an equivalence-preserving normalization, and it is what makes
"bit-for-bit equal to the SoA backend" a meaningful contract.

Being the cold oracle, its per-entity loops are exempt from the
MEGH009 hot-loop lint rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.vm import VirtualMachine
from repro.errors import CapacityError, UnknownEntityError

__all__ = ["ReferenceDatacenter"]


class ReferenceDatacenter:
    """Pure-object placement map — same API and semantics as
    :class:`~repro.cloudsim.datacenter.Datacenter`, no arrays.

    VMs and PMs keep their dynamic state on themselves (they are never
    bound to a :class:`~repro.cloudsim.soa.DatacenterArrays`), so this
    class exercises the scalar code paths of the entity objects and the
    compatibility paths of the per-step pipeline (monitor, SLA
    accountant, cost models, ``observe_state``).
    """

    def __init__(
        self,
        pms: Sequence[PhysicalMachine],
        vms: Sequence[VirtualMachine],
        migration_overhead_fraction: float = 0.10,
    ) -> None:
        self._pms: List[PhysicalMachine] = list(pms)
        self._vms: List[VirtualMachine] = list(vms)
        self._check_dense_ids()
        self._host_of: Dict[int, int] = {}
        self._vms_on: Dict[int, Set[int]] = {pm.pm_id: set() for pm in self._pms}
        self.migration_overhead_fraction = migration_overhead_fraction

    def _check_dense_ids(self) -> None:
        pm_ids = sorted(pm.pm_id for pm in self._pms)
        vm_ids = sorted(vm.vm_id for vm in self._vms)
        if pm_ids != list(range(len(self._pms))):
            raise UnknownEntityError("PM ids must be dense 0..M-1")
        if vm_ids != list(range(len(self._vms))):
            raise UnknownEntityError("VM ids must be dense 0..N-1")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pms(self) -> int:
        return len(self._pms)

    @property
    def num_vms(self) -> int:
        return len(self._vms)

    @property
    def pms(self) -> Sequence[PhysicalMachine]:
        return tuple(self._pms)

    @property
    def vms(self) -> Sequence[VirtualMachine]:
        return tuple(self._vms)

    def pm(self, pm_id: int) -> PhysicalMachine:
        if not 0 <= pm_id < len(self._pms):
            raise UnknownEntityError(f"no PM with id {pm_id}")
        return self._pms[pm_id]

    def vm(self, vm_id: int) -> VirtualMachine:
        if not 0 <= vm_id < len(self._vms):
            raise UnknownEntityError(f"no VM with id {vm_id}")
        return self._vms[vm_id]

    def host_of(self, vm_id: int) -> Optional[int]:
        self.vm(vm_id)
        return self._host_of.get(vm_id)

    def vms_on(self, pm_id: int) -> Set[int]:
        self.pm(pm_id)
        return set(self._vms_on[pm_id])

    def placement(self) -> Dict[int, int]:
        return dict(self._host_of)

    def is_placed(self, vm_id: int) -> bool:
        return vm_id in self._host_of

    # ------------------------------------------------------------------
    # Capacity accounting (re-summed per query, ascending id order)
    # ------------------------------------------------------------------
    def ram_used_mb(self, pm_id: int) -> float:
        return sum(self._vms[j].ram_mb for j in sorted(self._vms_on[pm_id]))

    def ram_free_mb(self, pm_id: int) -> float:
        return self.pm(pm_id).ram_mb - self.ram_used_mb(pm_id)

    def demanded_mips(self, pm_id: int) -> float:
        return sum(
            self._vms[j].demanded_mips for j in sorted(self._vms_on[pm_id])
        )

    def demanded_utilization(self, pm_id: int) -> float:
        return self.demanded_mips(pm_id) / self.pm(pm_id).mips

    def delivered_utilization(self, pm_id: int) -> float:
        delivered = sum(
            self._vms[j].delivered_mips for j in sorted(self._vms_on[pm_id])
        )
        return min(1.0, delivered / self.pm(pm_id).mips)

    def fits(self, vm_id: int, pm_id: int) -> bool:
        vm = self.vm(vm_id)
        if self.host_of(vm_id) == pm_id:
            return True
        return vm.ram_mb <= self.ram_free_mb(pm_id)

    def active_pm_ids(self) -> List[int]:
        return [pm_id for pm_id, vms in self._vms_on.items() if vms]

    def num_active_hosts(self) -> int:
        return len(self.active_pm_ids())

    # ------------------------------------------------------------------
    # Placement mutation
    # ------------------------------------------------------------------
    def place(self, vm_id: int, pm_id: int) -> None:
        vm = self.vm(vm_id)
        pm = self.pm(pm_id)
        if vm_id in self._host_of:
            raise CapacityError(
                f"VM {vm_id} is already placed on PM {self._host_of[vm_id]}"
            )
        if vm.ram_mb > self.ram_free_mb(pm_id):
            raise CapacityError(
                f"VM {vm_id} ({vm.ram_mb} MB) does not fit on PM {pm_id} "
                f"({self.ram_free_mb(pm_id)} MB free)"
            )
        pm.wake()
        self._host_of[vm_id] = pm_id
        self._vms_on[pm_id].add(vm_id)

    def remove(self, vm_id: int) -> int:
        if vm_id not in self._host_of:
            raise UnknownEntityError(f"VM {vm_id} is not placed")
        pm_id = self._host_of.pop(vm_id)
        self._vms_on[pm_id].discard(vm_id)
        return pm_id

    def move(self, vm_id: int, dest_pm_id: int) -> int:
        source = self.host_of(vm_id)
        if source is None:
            raise UnknownEntityError(f"VM {vm_id} is not placed")
        if source == dest_pm_id:
            return source
        if not self.fits(vm_id, dest_pm_id):
            raise CapacityError(
                f"VM {vm_id} does not fit on PM {dest_pm_id}"
            )
        self.remove(vm_id)
        self.place(vm_id, dest_pm_id)
        return source

    def sleep_idle_hosts(self) -> List[int]:
        slept = []
        for pm in self._pms:
            if not self._vms_on[pm.pm_id] and not pm.asleep:
                pm.sleep()
                slept.append(pm.pm_id)
        return slept

    # ------------------------------------------------------------------
    # CPU sharing
    # ------------------------------------------------------------------
    def share_cpu(self, migrating_vm_ids: Iterable[int] = ()) -> None:
        migrating = set(migrating_vm_ids)
        for pm in self._pms:
            hosted = self._vms_on[pm.pm_id]
            if not hosted:
                continue
            total_demand = sum(
                self._vms[j].demanded_mips for j in sorted(hosted)
            )
            if total_demand <= pm.mips or total_demand <= 0.0:
                scale = 1.0
            else:
                scale = pm.mips / total_demand
            for j in hosted:
                vm = self._vms[j]
                delivered = vm.demanded_utilization * scale
                vm.delivered_utilization = delivered
        # Unplaced VMs receive nothing.
        for vm in self._vms:
            if vm.vm_id not in self._host_of:
                vm.delivered_utilization = 0.0
        if migrating:
            self.apply_migration_overhead(migrating)

    def apply_migration_overhead(
        self, vm_ids: Iterable[int], overhead_fraction: Optional[float] = None
    ) -> None:
        if overhead_fraction is None:
            overhead_fraction = self.migration_overhead_fraction
        for vm_id in vm_ids:
            vm = self.vm(vm_id)
            vm.delivered_utilization *= 1.0 - overhead_fraction

    def is_overloaded(self, pm_id: int, beta: float) -> bool:
        return self.demanded_utilization(pm_id) > beta

    def bandwidth_demanded_mbps(self, pm_id: int) -> float:
        return sum(
            self._vms[j].demanded_bandwidth_mbps
            for j in sorted(self._vms_on[pm_id])
        )

    def bandwidth_demanded_utilization(self, pm_id: int) -> float:
        return self.bandwidth_demanded_mbps(pm_id) / self.pm(pm_id).bandwidth_mbps

    def is_bandwidth_overloaded(self, pm_id: int, threshold: float) -> bool:
        return self.bandwidth_demanded_utilization(pm_id) > threshold

    def overloaded_pm_ids(
        self, beta: float, bandwidth_threshold: Optional[float] = None
    ) -> List[int]:
        overloaded = []
        for pm in self._pms:
            if not self._vms_on[pm.pm_id]:
                continue
            if self.is_overloaded(pm.pm_id, beta) or (
                bandwidth_threshold is not None
                and self.is_bandwidth_overloaded(
                    pm.pm_id, bandwidth_threshold
                )
            ):
                overloaded.append(pm.pm_id)
        return overloaded
