"""Simulation driver: replays a workload against a scheduler.

Each observation interval (``tau`` seconds, 300 by default):

1. the workload sets every VM's demanded utilization;
2. the monitor records histories (the VMM feed of Section 3.1);
3. the scheduler is invoked (and timed) on an :class:`Observation`;
4. its migrations start — the migration engine rejects infeasible ones;
5. CPU is shared, migration overhead charged, in-flight transfers advance;
6. SLA counters and the Eq. (6) step cost are updated;
7. idle hosts go to sleep.

The loop mirrors CloudSim's power-aware example driver, which the paper's
experiments are built on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.metrics import MetricsCollector, StepMetrics
from repro.cloudsim.migration import MigrationEngine
from repro.cloudsim.monitor import UtilizationMonitor
from repro.cloudsim.sla import SlaAccountant
from repro.config import SimulationConfig
from repro.costs.model import OperationCostModel
from repro.errors import ConfigurationError, SchedulerError
from repro.mdp.interfaces import Observation, Scheduler
from repro.mdp.state import observe_state
from repro.workloads.base import Workload


@dataclass
class SimulationResult:
    """Everything measured during a run."""

    scheduler_name: str
    metrics: MetricsCollector
    sla: SlaAccountant
    config: SimulationConfig
    num_pms: int
    num_vms: int

    @property
    def total_cost_usd(self) -> float:
        return self.metrics.total_cost_usd

    @property
    def total_migrations(self) -> int:
        return self.metrics.total_migrations

    @property
    def mean_active_hosts(self) -> float:
        return self.metrics.mean_active_hosts

    @property
    def mean_scheduler_ms(self) -> float:
        return self.metrics.mean_scheduler_milliseconds

    def to_dict(self) -> dict:
        """JSON-compatible dict capturing the full run (exact round trip).

        Delegates to :mod:`repro.engine.serialize`; ``from_dict`` inverts
        it bit-for-bit, including every per-step metric and SLA window
        entry.  Derived aggregates are recomputed, never stored.
        """
        from repro.engine.serialize import result_to_dict

        return result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result previously flattened with :meth:`to_dict`."""
        from repro.engine.serialize import result_from_dict

        return result_from_dict(data)

    def summary(self) -> str:
        """Table-2-style one-block summary of the run."""
        lines = [
            f"scheduler        : {self.scheduler_name}",
            f"fleet            : {self.num_pms} PMs / {self.num_vms} VMs, "
            f"{len(self.metrics.steps)} steps",
            f"total cost (USD) : {self.total_cost_usd:.2f}",
            f"  energy (USD)   : {self.metrics.total_energy_cost_usd:.2f}",
            f"  SLA (USD)      : {self.metrics.total_sla_cost_usd:.2f}",
            f"#VM migrations   : {self.total_migrations}",
            f"avg active hosts : {self.mean_active_hosts:.1f}",
            f"exec time (ms)   : {self.mean_scheduler_ms:.3f}",
            f"SLA violation    : {self.sla.overall_sla_violation():.5%}",
        ]
        return "\n".join(lines)


class Simulation:
    """Binds a workload to a data center and runs schedulers against it.

    Args:
        datacenter: the (already initially-placed) data center.
        workload: per-VM utilization trace; must cover every VM.
        config: simulation parameters.
        monitor_history: samples kept per entity for the VMM histories.
    """

    def __init__(
        self,
        datacenter: Datacenter,
        workload: Workload,
        config: Optional[SimulationConfig] = None,
        monitor_history: int = 12,
        topology=None,
        dynamic_provisioning: bool = False,
    ) -> None:
        self.config = config or SimulationConfig()
        if workload.num_vms < datacenter.num_vms:
            raise ConfigurationError(
                f"workload covers {workload.num_vms} VMs but the data center "
                f"has {datacenter.num_vms}"
            )
        if workload.num_steps < self.config.num_steps:
            raise ConfigurationError(
                f"workload has {workload.num_steps} steps but the run needs "
                f"{self.config.num_steps}"
            )
        self.datacenter = datacenter
        self.workload = workload
        self.topology = topology
        #: With dynamic provisioning, a VM that goes inactive is
        #: deprovisioned (its RAM reservation freed) and re-placed
        #: first-fit when its next task arrives — task-based traces then
        #: exercise the provisioning path instead of holding idle
        #: reservations.
        self.dynamic_provisioning = dynamic_provisioning
        #: VMs awaiting capacity under dynamic provisioning, in arrival
        #: order; the companion set makes membership checks O(1).
        self.pending_vm_ids: list[int] = []
        self._pending_set: set[int] = set()
        self.monitor = UtilizationMonitor(history_length=monitor_history)
        self._initial_placement = datacenter.placement()

    def reset(self) -> None:
        """Restore the initial placement so another scheduler can run."""
        for vm in self.datacenter.vms:  # meghlint: ignore[MEGH009] -- cold path: runs once per scheduler, not per step
            if self.datacenter.is_placed(vm.vm_id):
                self.datacenter.remove(vm.vm_id)
            vm.set_active(True)
            vm.set_demand(0.0)
            vm.delivered_utilization = 0.0
        for pm in self.datacenter.pms:  # meghlint: ignore[MEGH009] -- cold path: runs once per scheduler, not per step
            pm.wake()
        for vm_id, pm_id in self._initial_placement.items():
            self.datacenter.place(vm_id, pm_id)
        self.pending_vm_ids = []
        self._pending_set = set()
        self.monitor = UtilizationMonitor(
            history_length=self.monitor.history_length
        )

    def run(
        self,
        scheduler: Scheduler,
        num_steps: Optional[int] = None,
        cost_model: Optional[OperationCostModel] = None,
        event_log=None,
        validate_every_step: Optional[bool] = None,
    ) -> SimulationResult:
        """Run the scheduler for ``num_steps`` intervals (default: config).

        ``cost_model`` swaps in an alternative
        :class:`~repro.costs.model.OperationCostModel` (e.g. one built on
        time-of-use electricity or tiered VM pricing from
        :mod:`repro.costs.dynamic`); it must be freshly constructed, as
        cost models accumulate state over a run.

        ``event_log`` (an :class:`~repro.cloudsim.events.EventLog`)
        receives structured migration/overload/sleep events for offline
        analysis.

        ``validate_every_step`` runs the
        :mod:`repro.cloudsim.validation` invariant checks after every
        interval — slow, but catches scheduler/engine bugs at the step
        that introduced them.  The default (``None``) follows the
        runtime-contract toggle (:func:`repro.core.contracts
        .contracts_enabled`): on in the test suite, off in benchmarks.
        """
        if validate_every_step is None:
            from repro.core.contracts import contracts_enabled

            validate_every_step = contracts_enabled()
        steps = num_steps if num_steps is not None else self.config.num_steps
        if steps > self.workload.num_steps:
            raise ConfigurationError(
                f"requested {steps} steps but the workload has only "
                f"{self.workload.num_steps}"
            )
        dc_config = self.config.datacenter
        interval = self.config.interval_seconds
        # Direct share_cpu(migrating_vm_ids) calls on the datacenter use
        # its configured overhead, so keep it in sync with the run config
        # (the engine passes its own overhead explicitly).
        self.datacenter.migration_overhead_fraction = (
            dc_config.migration_overhead_fraction
        )
        engine = MigrationEngine(
            self.datacenter,
            overhead_fraction=dc_config.migration_overhead_fraction,
            alpha=dc_config.migration_cpu_threshold,
            topology=self.topology,
        )
        bandwidth_threshold = (
            dc_config.bandwidth_overload_threshold
            if dc_config.bandwidth_aware
            else None
        )
        accountant = SlaAccountant(
            beta=dc_config.overload_threshold,
            window_seconds=self.config.costs.sla_billing_window_seconds,
            interval_seconds=interval,
            bandwidth_threshold=bandwidth_threshold,
        )
        if cost_model is None:
            cost_model = OperationCostModel(self.config.costs)
        collector = MetricsCollector()
        last_cost = 0.0

        for step in range(steps):
            self._apply_workload(step)
            self.monitor.observe(self.datacenter)
            observation = Observation(
                step=step,
                state=observe_state(self.datacenter, step),
                datacenter=self.datacenter,
                monitor=self.monitor,
                last_step_cost_usd=last_cost,
                interval_seconds=interval,
            )
            started = time.perf_counter()
            migrations = scheduler.decide(observation)
            scheduler_seconds = time.perf_counter() - started
            if migrations is None:
                raise SchedulerError(
                    f"{scheduler.name} returned None instead of a list"
                )
            outcome = engine.start(migrations)
            self.datacenter.share_cpu()
            advance = engine.advance(interval)
            accountant.observe_step(
                self.datacenter, interval, advance.downtime_seconds
            )
            step_cost = cost_model.step_cost(
                self.datacenter, accountant, interval
            )
            active_hosts = self.datacenter.num_active_hosts()
            slept = (
                self.datacenter.sleep_idle_hosts()
                if dc_config.sleep_idle_hosts
                else []
            )
            overloaded_ids = self.datacenter.overloaded_pm_ids(
                dc_config.overload_threshold, bandwidth_threshold
            )
            overloaded = len(overloaded_ids)
            if event_log is not None:
                self._emit_events(
                    event_log, step, outcome, advance, overloaded_ids, slept
                )
            if validate_every_step:
                from repro.cloudsim.validation import check_invariants

                check_invariants(self.datacenter)
            mean_util = self._mean_active_host_utilization()
            collector.record(
                StepMetrics(
                    step=step,
                    energy_cost_usd=step_cost.energy_usd,
                    sla_cost_usd=step_cost.sla_usd,
                    num_migrations_started=len(outcome.started),
                    num_migrations_rejected=len(outcome.rejected),
                    num_active_hosts=active_hosts,
                    scheduler_seconds=scheduler_seconds,
                    mean_host_utilization=mean_util,
                    num_overloaded_hosts=overloaded,
                )
            )
            last_cost = step_cost.total_usd

        return SimulationResult(
            scheduler_name=scheduler.name,
            metrics=collector,
            sla=accountant,
            config=self.config,
            num_pms=self.datacenter.num_pms,
            num_vms=self.datacenter.num_vms,
        )

    @staticmethod
    def _emit_events(
        event_log, step, outcome, advance, overloaded_ids, slept
    ) -> None:
        from repro.cloudsim.events import EventKind

        for migration in outcome.started:
            event_log.emit(
                step,
                EventKind.MIGRATION_STARTED,
                vm_id=migration.vm_id,
                pm_id=migration.dest_pm_id,
            )
        for migration in outcome.rejected:
            event_log.emit(
                step,
                EventKind.MIGRATION_REJECTED,
                vm_id=migration.vm_id,
                pm_id=migration.dest_pm_id,
            )
        for vm_id in advance.completed:
            event_log.emit(step, EventKind.MIGRATION_COMPLETED, vm_id=vm_id)
        for pm_id in overloaded_ids:
            event_log.emit(step, EventKind.HOST_OVERLOADED, pm_id=pm_id)
        for pm_id in slept:
            event_log.emit(step, EventKind.HOST_SLEPT, pm_id=pm_id)

    def _apply_workload(self, step: int) -> None:
        arrays = getattr(self.datacenter, "arrays", None)
        step_source = getattr(self.workload, "step_slice", None)
        if arrays is not None and step_source is not None:
            # Batched path: one vector write per quantity.  The workload
            # matrices were range-validated at construction, so the
            # per-value checks of set_demand/set_bandwidth_demand are
            # not repeated here.
            active, utilization, bandwidth = step_source(step)
            num_vms = arrays.num_vms
            active = active[:num_vms]
            arrays.vm_active[:] = active
            inactive = ~active
            np.copyto(
                arrays.vm_demand, utilization[:num_vms], where=active
            )
            arrays.vm_demand[inactive] = 0.0
            arrays.vm_delivered[inactive] = 0.0
            if bandwidth is not None:
                np.copyto(
                    arrays.vm_bw_demand, bandwidth[:num_vms], where=active
                )
            arrays.vm_bw_demand[inactive] = 0.0
            arrays.mark_activity_dirty()
        else:
            bandwidth_source = getattr(
                self.workload, "bandwidth_utilization", None
            )
            for vm in self.datacenter.vms:  # meghlint: ignore[MEGH009] -- compat path for workloads without step_slice
                active = self.workload.is_active(vm.vm_id, step)
                vm.set_active(active)
                if active:
                    vm.set_demand(self.workload.utilization(vm.vm_id, step))
                    if bandwidth_source is not None:
                        vm.set_bandwidth_demand(
                            bandwidth_source(vm.vm_id, step)
                        )
        if self.dynamic_provisioning:
            self._provision(step)

    def _provision(self, step: int) -> None:
        """Deprovision idle VMs; first-fit newly active (or waiting) ones.

        The pending queue preserves arrival order (FIFO), with a
        companion set for O(1) membership tests.
        """
        del step
        arrays = getattr(self.datacenter, "arrays", None)
        if arrays is not None:
            placed = arrays.host_of >= 0
            active = arrays.vm_active
            for vm_id in np.flatnonzero(~active & placed):
                self.datacenter.remove(int(vm_id))
            for vm_id in np.flatnonzero(active & ~placed):
                key = int(vm_id)
                if key not in self._pending_set:
                    self.pending_vm_ids.append(key)
                    self._pending_set.add(key)
        else:
            for vm in self.datacenter.vms:  # meghlint: ignore[MEGH009] -- compat path for object-model datacenters
                placed = self.datacenter.is_placed(vm.vm_id)
                if not vm.is_active and placed:
                    self.datacenter.remove(vm.vm_id)
                elif vm.is_active and not placed:
                    if vm.vm_id not in self._pending_set:
                        self.pending_vm_ids.append(vm.vm_id)
                        self._pending_set.add(vm.vm_id)
        still_pending: list[int] = []
        for vm_id in self.pending_vm_ids:
            vm = self.datacenter.vm(vm_id)
            if not vm.is_active:
                continue  # the task ended while waiting
            if not self._first_fit(vm_id):
                still_pending.append(vm_id)
        self.pending_vm_ids = still_pending
        self._pending_set = set(still_pending)

    def _first_fit(self, vm_id: int) -> bool:
        datacenter = self.datacenter
        arrays = getattr(datacenter, "arrays", None)
        if arrays is not None:
            ram_free = arrays.pm_ram_free_mb()
            candidates = np.flatnonzero(
                datacenter.vm(vm_id).ram_mb <= ram_free
            )
            if candidates.size == 0:
                return False
            datacenter.place(vm_id, int(candidates[0]))
            return True
        for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- compat path for object-model datacenters
            if datacenter.fits(vm_id, pm.pm_id):
                datacenter.place(vm_id, pm.pm_id)
                return True
        return False

    def _mean_active_host_utilization(self) -> float:
        arrays = getattr(self.datacenter, "arrays", None)
        if arrays is not None:
            active_ids = np.flatnonzero(arrays.active_pm_mask())
            if active_ids.size == 0:
                return 0.0
            capped = np.minimum(
                1.0, arrays.pm_demand_utilization()[active_ids]
            )
            # Left-to-right total (cumsum) in host-id order, matching
            # the object path's accumulation bit for bit.
            return float(np.cumsum(capped)[-1]) / active_ids.size
        active = self.datacenter.active_pm_ids()
        if not active:
            return 0.0
        total = sum(
            min(1.0, self.datacenter.demanded_utilization(pm_id))
            for pm_id in active
        )
        return total / len(active)
