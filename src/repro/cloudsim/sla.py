"""SLA accounting (Section 3.3).

Tracks, per host, the active time ``T_a`` and overload time ``T_o`` (Eq. 4)
and, per VM, the requested-service time ``T_r`` and the downtime from both
live migration (Eq. 5) and overloaded hosts — the paper counts the whole
overloading time of a host against every VM operating on it.

Violation tiers are evaluated on the downtime percentage over a trailing
*billing window* (default one day).  Real SLAs (Amazon/Google/Azure) are
settled per billing period; a cumulative-from-genesis percentage would let
one bad minute at boot dominate a month of good service.  Cumulative
counters are still kept for reporting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping, Optional, Tuple

from repro.cloudsim.datacenter import Datacenter
from repro.errors import ConfigurationError

#: Default billing window: two hours of 5-minute intervals.  Short enough
#: that one overload blip is billed proportionately (not for a whole day),
#: long enough that sustained churn or chronic overload keeps paying.
DEFAULT_WINDOW_SECONDS = 7200.0


@dataclass
class HostSlaRecord:
    """Per-host SLA counters."""

    active_seconds: float = 0.0
    overload_seconds: float = 0.0

    @property
    def overload_fraction(self) -> float:
        """``O_i(t) = T_o / T_a`` (Eq. 4); 0 when never active."""
        if self.active_seconds <= 0.0:
            return 0.0
        return self.overload_seconds / self.active_seconds


@dataclass
class VmSlaRecord:
    """Per-VM SLA counters: cumulative plus a trailing billing window."""

    window_steps: int = 288
    requested_seconds: float = 0.0
    migration_downtime_seconds: float = 0.0
    overload_downtime_seconds: float = 0.0
    _window: Deque[Tuple[float, float]] = field(default_factory=deque, repr=False)

    def record_step(self, downtime: float, requested: float) -> None:
        """Append one interval's (downtime, requested) to the window."""
        self._window.append((downtime, requested))
        while len(self._window) > self.window_steps:
            self._window.popleft()

    @property
    def total_downtime_seconds(self) -> float:
        return self.migration_downtime_seconds + self.overload_downtime_seconds

    @property
    def cumulative_downtime_fraction(self) -> float:
        """Downtime over the VM's whole lifetime."""
        if self.requested_seconds <= 0.0:
            return 0.0
        return self.total_downtime_seconds / self.requested_seconds

    @property
    def downtime_fraction(self) -> float:
        """Downtime fraction over the trailing billing window.

        This is the quantity the violation tiers of Section 3.3 are keyed
        on; it recovers once service is restored.
        """
        requested = sum(r for _, r in self._window)
        if requested <= 0.0:
            return 0.0
        downtime = sum(d for d, _ in self._window)
        return downtime / requested


@dataclass
class SlaAccountant:
    """Accumulates overload and downtime statistics step by step.

    Args:
        beta: host overload threshold (fraction of capacity).
        window_seconds: billing-window length for the violation tiers.
        interval_seconds: observation interval (defines window length in
            steps; defaults to 300 s).
        bandwidth_threshold: when set, a host whose *network* demand
            exceeds this fraction is overloaded too (multi-resource
            mode, see ``DatacenterConfig.bandwidth_aware``).
    """

    beta: float = 0.70
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    interval_seconds: float = 300.0
    bandwidth_threshold: Optional[float] = None
    hosts: Dict[int, HostSlaRecord] = field(default_factory=dict)
    vms: Dict[int, VmSlaRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.beta <= 1:
            raise ConfigurationError("beta must be in (0, 1]")
        if self.window_seconds <= 0 or self.interval_seconds <= 0:
            raise ConfigurationError("window and interval must be > 0")

    @property
    def window_steps(self) -> int:
        return max(1, int(round(self.window_seconds / self.interval_seconds)))

    def host_record(self, pm_id: int) -> HostSlaRecord:
        return self.hosts.setdefault(pm_id, HostSlaRecord())

    def vm_record(self, vm_id: int) -> VmSlaRecord:
        return self.vms.setdefault(
            vm_id, VmSlaRecord(window_steps=self.window_steps)
        )

    def observe_step(
        self,
        datacenter: Datacenter,
        interval_seconds: float,
        migration_downtime: Mapping[int, float] = (),
    ) -> None:
        """Record one observation interval.

        * every host serving VMs accrues active time, and overload time
          when its demanded utilization exceeds ``beta``;
        * every active VM accrues requested time;
        * VMs on overloaded hosts accrue the full interval as overload
          downtime (Section 3.3 counts the host's whole overloading time
          against each VM on it);
        * per-VM migration downtime (from the migration engine) is added
          as reported.
        """
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        mig: Dict[int, float] = dict(migration_downtime)
        step_downtime: Dict[int, float] = {}
        step_requested: Dict[int, float] = {}
        for pm_id in datacenter.active_pm_ids():
            record = self.host_record(pm_id)
            record.active_seconds += interval_seconds
            overloaded = datacenter.is_overloaded(pm_id, self.beta) or (
                self.bandwidth_threshold is not None
                and datacenter.is_bandwidth_overloaded(
                    pm_id, self.bandwidth_threshold
                )
            )
            if overloaded:
                record.overload_seconds += interval_seconds
            for vm_id in datacenter.vms_on(pm_id):
                vm = datacenter.vm(vm_id)
                if not vm.is_active:
                    continue
                vm_rec = self.vm_record(vm_id)
                vm_rec.requested_seconds += interval_seconds
                step_requested[vm_id] = interval_seconds
                if overloaded:
                    vm_rec.overload_downtime_seconds += interval_seconds
                    step_downtime[vm_id] = (
                        step_downtime.get(vm_id, 0.0) + interval_seconds
                    )
        for vm_id, seconds in mig.items():
            self.vm_record(vm_id).migration_downtime_seconds += seconds
            step_downtime[vm_id] = step_downtime.get(vm_id, 0.0) + seconds
            step_requested.setdefault(vm_id, interval_seconds)
        for vm_id, requested in step_requested.items():
            downtime = min(step_downtime.get(vm_id, 0.0), requested)
            self.vm_record(vm_id).record_step(downtime, requested)

    def downtime_fraction(self, vm_id: int) -> float:
        """Windowed downtime fraction for a VM (0 if never seen)."""
        record = self.vms.get(vm_id)
        return record.downtime_fraction if record else 0.0

    def overall_sla_violation(self) -> float:
        """Mean lifetime downtime fraction across VMs — a QoS summary."""
        if not self.vms:
            return 0.0
        return sum(
            r.cumulative_downtime_fraction for r in self.vms.values()
        ) / len(self.vms)
