"""SLA accounting (Section 3.3).

Tracks, per host, the active time ``T_a`` and overload time ``T_o`` (Eq. 4)
and, per VM, the requested-service time ``T_r`` and the downtime from both
live migration (Eq. 5) and overloaded hosts — the paper counts the whole
overloading time of a host against every VM operating on it.

Violation tiers are evaluated on the downtime percentage over a trailing
*billing window* (default one day).  Real SLAs (Amazon/Google/Azure) are
settled per billing period; a cumulative-from-genesis percentage would let
one bad minute at boot dominate a month of good service.  Cumulative
counters are still kept for reporting.

Vectorized accounting
---------------------
Since the struct-of-arrays rewrite the accountant keeps its counters in
dense NumPy vectors indexed by entity id — cumulative seconds in
``float64[cap]`` vectors, billing windows in ``(cap, W)`` matrices kept
in chronological order (rows shift left when full, exactly like the old
per-record deque's append/evict).  :class:`HostSlaRecord` and
:class:`VmSlaRecord` obtained from an accountant are *bound views* over
those arrays, so the public per-record API is unchanged; records
constructed directly (``VmSlaRecord(window_steps=2)``) stay standalone
scalar/deque objects.

``observe_step`` takes a batched path when the datacenter exposes a
:class:`~repro.cloudsim.soa.DatacenterArrays` mirror: one masked
vector update per counter instead of a Python loop per VM.  Both paths
apply exactly one ``+= interval`` per entity per step and windowed sums
are strict left-to-right accumulations (``np.cumsum``), so every
query is bit-identical between the two.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Default billing window: two hours of 5-minute intervals.  Short enough
#: that one overload blip is billed proportionately (not for a whole day),
#: long enough that sustained churn or chronic overload keeps paying.
DEFAULT_WINDOW_SECONDS = 7200.0

#: Initial per-entity capacity of a standalone accountant's arrays; grown
#: geometrically as larger ids are seen.
_MIN_CAPACITY = 16


class HostSlaRecord:
    """Per-host SLA counters.

    Standalone instances hold plain scalars; records handed out by an
    :class:`SlaAccountant` are views over the accountant's arrays.
    """

    __slots__ = ("_owner", "_row", "_active_s", "_overload_s")

    def __init__(
        self, active_seconds: float = 0.0, overload_seconds: float = 0.0
    ) -> None:
        self._owner: Optional["SlaAccountant"] = None
        self._row = -1
        self._active_s = active_seconds
        self._overload_s = overload_seconds

    @classmethod
    def _bound(cls, owner: "SlaAccountant", row: int) -> "HostSlaRecord":
        record = cls()
        record._owner = owner
        record._row = row
        return record

    def __repr__(self) -> str:
        return (
            f"HostSlaRecord(active_seconds={self.active_seconds}, "
            f"overload_seconds={self.overload_seconds})"
        )

    @property
    def active_seconds(self) -> float:
        if self._owner is None:
            return self._active_s
        return float(self._owner._host_active_s[self._row])

    @active_seconds.setter
    def active_seconds(self, value: float) -> None:
        if self._owner is None:
            self._active_s = value
        else:
            self._owner._host_active_s[self._row] = value

    @property
    def overload_seconds(self) -> float:
        if self._owner is None:
            return self._overload_s
        return float(self._owner._host_overload_s[self._row])

    @overload_seconds.setter
    def overload_seconds(self, value: float) -> None:
        if self._owner is None:
            self._overload_s = value
        else:
            self._owner._host_overload_s[self._row] = value

    @property
    def overload_fraction(self) -> float:
        """``O_i(t) = T_o / T_a`` (Eq. 4); 0 when never active."""
        if self.active_seconds <= 0.0:
            return 0.0
        return self.overload_seconds / self.active_seconds


class VmSlaRecord:
    """Per-VM SLA counters: cumulative plus a trailing billing window.

    Standalone instances keep the window in a deque of
    ``(downtime, requested)`` pairs; accountant-bound instances view one
    row of the accountant's ``(cap, W)`` window matrices, which store
    the same entries in the same chronological order.
    """

    __slots__ = (
        "_owner",
        "_row",
        "_window_steps",
        "_requested_s",
        "_mig_down_s",
        "_over_down_s",
        "_win",
    )

    def __init__(
        self,
        window_steps: int = 288,
        requested_seconds: float = 0.0,
        migration_downtime_seconds: float = 0.0,
        overload_downtime_seconds: float = 0.0,
    ) -> None:
        self._owner: Optional["SlaAccountant"] = None
        self._row = -1
        self._window_steps = window_steps
        self._requested_s = requested_seconds
        self._mig_down_s = migration_downtime_seconds
        self._over_down_s = overload_downtime_seconds
        self._win: Deque[Tuple[float, float]] = deque()

    @classmethod
    def _bound(cls, owner: "SlaAccountant", row: int) -> "VmSlaRecord":
        record = cls(window_steps=owner.window_steps)
        record._owner = owner
        record._row = row
        return record

    def __repr__(self) -> str:
        return (
            f"VmSlaRecord(window_steps={self.window_steps}, "
            f"requested_seconds={self.requested_seconds}, "
            f"migration_downtime_seconds={self.migration_downtime_seconds}, "
            f"overload_downtime_seconds={self.overload_downtime_seconds})"
        )

    # ------------------------------------------------------------------
    # Counter fields (array-backed when bound)
    # ------------------------------------------------------------------
    @property
    def window_steps(self) -> int:
        if self._owner is None:
            return self._window_steps
        return self._owner.window_steps

    @property
    def requested_seconds(self) -> float:
        if self._owner is None:
            return self._requested_s
        return float(self._owner._vm_requested_s[self._row])

    @requested_seconds.setter
    def requested_seconds(self, value: float) -> None:
        if self._owner is None:
            self._requested_s = value
        else:
            self._owner._vm_requested_s[self._row] = value

    @property
    def migration_downtime_seconds(self) -> float:
        if self._owner is None:
            return self._mig_down_s
        return float(self._owner._vm_mig_down_s[self._row])

    @migration_downtime_seconds.setter
    def migration_downtime_seconds(self, value: float) -> None:
        if self._owner is None:
            self._mig_down_s = value
        else:
            self._owner._vm_mig_down_s[self._row] = value

    @property
    def overload_downtime_seconds(self) -> float:
        if self._owner is None:
            return self._over_down_s
        return float(self._owner._vm_over_down_s[self._row])

    @overload_downtime_seconds.setter
    def overload_downtime_seconds(self, value: float) -> None:
        if self._owner is None:
            self._over_down_s = value
        else:
            self._owner._vm_over_down_s[self._row] = value

    # ------------------------------------------------------------------
    # Billing window
    # ------------------------------------------------------------------
    @property
    def _window(self) -> Deque[Tuple[float, float]]:
        """The window as a deque of ``(downtime, requested)`` pairs.

        For bound records this is a chronological *snapshot* of the
        accountant's window row (kept for introspection and the
        serializer round-trip tests); mutate via ``record_step``.
        """
        if self._owner is None:
            return self._win
        return deque(self.window_entries())

    def window_entries(self) -> List[Tuple[float, float]]:
        """Chronological ``(downtime, requested)`` entries, oldest first."""
        if self._owner is None:
            return [(float(d), float(r)) for d, r in self._win]
        owner, row = self._owner, self._row
        n = int(owner._win_len[row])
        return [
            (float(owner._win_down[row, k]), float(owner._win_req[row, k]))
            for k in range(n)
        ]

    def record_step(self, downtime: float, requested: float) -> None:
        """Append one interval's (downtime, requested) to the window."""
        if self._owner is None:
            self._win.append((downtime, requested))
            while len(self._win) > self._window_steps:
                self._win.popleft()
        else:
            self._owner._record_window_single(self._row, downtime, requested)

    @property
    def total_downtime_seconds(self) -> float:
        return self.migration_downtime_seconds + self.overload_downtime_seconds

    @property
    def cumulative_downtime_fraction(self) -> float:
        """Downtime over the VM's whole lifetime."""
        if self.requested_seconds <= 0.0:
            return 0.0
        return self.total_downtime_seconds / self.requested_seconds

    @property
    def downtime_fraction(self) -> float:
        """Downtime fraction over the trailing billing window.

        This is the quantity the violation tiers of Section 3.3 are keyed
        on; it recovers once service is restored.
        """
        if self._owner is not None:
            return float(self._owner._window_fraction_rows(
                np.array([self._row], dtype=np.int64)
            )[0])
        requested = sum(r for _, r in self._win)
        if requested <= 0.0:
            return 0.0
        downtime = sum(d for d, _ in self._win)
        return downtime / requested


class SlaAccountant:
    """Accumulates overload and downtime statistics step by step.

    Args:
        beta: host overload threshold (fraction of capacity).
        window_seconds: billing-window length for the violation tiers.
        interval_seconds: observation interval (defines window length in
            steps; defaults to 300 s).
        bandwidth_threshold: when set, a host whose *network* demand
            exceeds this fraction is overloaded too (multi-resource
            mode, see ``DatacenterConfig.bandwidth_aware``).

    Attributes:
        hosts: per-host records, keyed by PM id, in first-seen order.
        vms: per-VM records, keyed by VM id, in first-seen order.
    """

    def __init__(
        self,
        beta: float = 0.70,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        interval_seconds: float = 300.0,
        bandwidth_threshold: Optional[float] = None,
    ) -> None:
        if not 0 < beta <= 1:
            raise ConfigurationError("beta must be in (0, 1]")
        if window_seconds <= 0 or interval_seconds <= 0:
            raise ConfigurationError("window and interval must be > 0")
        self.beta = beta
        self.window_seconds = window_seconds
        self.interval_seconds = interval_seconds
        self.bandwidth_threshold = bandwidth_threshold
        self.hosts: Dict[int, HostSlaRecord] = {}
        self.vms: Dict[int, VmSlaRecord] = {}
        # Array-backed counters (rows indexed by entity id, grown on
        # demand so a standalone accountant works without a datacenter).
        width = self.window_steps
        self._host_active_s = np.zeros(0, dtype=np.float64)
        self._host_overload_s = np.zeros(0, dtype=np.float64)
        self._vm_requested_s = np.zeros(0, dtype=np.float64)
        self._vm_mig_down_s = np.zeros(0, dtype=np.float64)
        self._vm_over_down_s = np.zeros(0, dtype=np.float64)
        self._win_down = np.zeros((0, width), dtype=np.float64)
        self._win_req = np.zeros((0, width), dtype=np.float64)
        self._win_len = np.zeros(0, dtype=np.int64)
        # Mirrors of dict membership, so the batched path can find the
        # not-yet-tracked entities without a per-id dict probe.
        self._host_seen = np.zeros(0, dtype=bool)
        self._vm_seen = np.zeros(0, dtype=bool)
        # Scratch buffers for the batched observe path.
        self._buf_down = np.zeros(0, dtype=np.float64)
        self._buf_req = np.zeros(0, dtype=np.float64)
        self._buf_in_step = np.zeros(0, dtype=bool)

    @property
    def window_steps(self) -> int:
        return max(1, int(round(self.window_seconds / self.interval_seconds)))

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    @staticmethod
    def _grow_1d(array: np.ndarray, capacity: int) -> np.ndarray:
        grown = np.zeros(capacity, dtype=array.dtype)
        grown[: array.shape[0]] = array
        return grown

    def _ensure_host_capacity(self, size: int) -> None:
        if size <= self._host_active_s.shape[0]:
            return
        capacity = max(size, _MIN_CAPACITY, 2 * self._host_active_s.shape[0])
        self._host_active_s = self._grow_1d(self._host_active_s, capacity)
        self._host_overload_s = self._grow_1d(self._host_overload_s, capacity)
        self._host_seen = self._grow_1d(self._host_seen, capacity)

    def _ensure_vm_capacity(self, size: int) -> None:
        if size <= self._vm_requested_s.shape[0]:
            return
        capacity = max(size, _MIN_CAPACITY, 2 * self._vm_requested_s.shape[0])
        self._vm_requested_s = self._grow_1d(self._vm_requested_s, capacity)
        self._vm_mig_down_s = self._grow_1d(self._vm_mig_down_s, capacity)
        self._vm_over_down_s = self._grow_1d(self._vm_over_down_s, capacity)
        self._win_len = self._grow_1d(self._win_len, capacity)
        self._vm_seen = self._grow_1d(self._vm_seen, capacity)
        width = self._win_down.shape[1]
        for name in ("_win_down", "_win_req"):
            old = getattr(self, name)
            grown = np.zeros((capacity, width), dtype=np.float64)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)
        self._buf_down = np.zeros(capacity, dtype=np.float64)
        self._buf_req = np.zeros(capacity, dtype=np.float64)
        self._buf_in_step = np.zeros(capacity, dtype=bool)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def host_record(self, pm_id: int) -> HostSlaRecord:
        record = self.hosts.get(pm_id)
        if record is None:
            self._ensure_host_capacity(pm_id + 1)
            record = HostSlaRecord._bound(self, pm_id)
            self.hosts[pm_id] = record
            self._host_seen[pm_id] = True
        return record

    def vm_record(self, vm_id: int) -> VmSlaRecord:
        record = self.vms.get(vm_id)
        if record is None:
            self._ensure_vm_capacity(vm_id + 1)
            record = VmSlaRecord._bound(self, vm_id)
            self.vms[vm_id] = record
            self._vm_seen[vm_id] = True
        return record

    def restore_host_record(
        self, pm_id: int, active_seconds: float, overload_seconds: float
    ) -> HostSlaRecord:
        """Recreate a host record from serialized counters."""
        record = self.host_record(pm_id)
        record.active_seconds = active_seconds
        record.overload_seconds = overload_seconds
        return record

    def restore_vm_record(
        self,
        vm_id: int,
        requested_seconds: float,
        migration_downtime_seconds: float,
        overload_downtime_seconds: float,
        window: Iterable[Tuple[float, float]],
    ) -> VmSlaRecord:
        """Recreate a VM record (counters plus billing window)."""
        record = self.vm_record(vm_id)
        record.requested_seconds = requested_seconds
        record.migration_downtime_seconds = migration_downtime_seconds
        record.overload_downtime_seconds = overload_downtime_seconds
        self._win_down[vm_id] = 0.0
        self._win_req[vm_id] = 0.0
        self._win_len[vm_id] = 0
        for downtime, requested in window:
            self._record_window_single(vm_id, downtime, requested)
        return record

    def reset_vm_window(self, vm_id: int) -> None:
        """Clear a VM id's billing window (service mode: occupant left).

        When a churning VM departs, its slot id may later be reused by a
        new arrival; without this, the departed occupant's frozen window
        would keep billing SLA paybacks against an empty slot.  The
        cumulative counters are kept — they aggregate over everything
        the slot ever served.  A never-seen id is a no-op.
        """
        if vm_id < self._win_len.shape[0]:
            self._win_down[vm_id] = 0.0
            self._win_req[vm_id] = 0.0
            self._win_len[vm_id] = 0

    # ------------------------------------------------------------------
    # Window maintenance
    # ------------------------------------------------------------------
    def _record_window_single(
        self, row: int, downtime: float, requested: float
    ) -> None:
        """Append one entry to a single VM's window (scalar path)."""
        width = self._win_down.shape[1]
        n = int(self._win_len[row])
        if n >= width:
            self._win_down[row, :-1] = self._win_down[row, 1:]
            self._win_req[row, :-1] = self._win_req[row, 1:]
            self._win_down[row, width - 1] = downtime
            self._win_req[row, width - 1] = requested
        else:
            self._win_down[row, n] = downtime
            self._win_req[row, n] = requested
            self._win_len[row] = n + 1

    def _record_window_batch(
        self, rows: np.ndarray, downtime: np.ndarray, requested: np.ndarray
    ) -> None:
        """Append one entry to many VMs' windows in one vector pass."""
        width = self._win_down.shape[1]
        lens = self._win_len[rows]
        full = lens >= width
        full_rows = rows[full]
        if full_rows.size:
            # Advanced indexing copies the RHS before the scattered
            # assignment, so the left shift is safe in place.
            self._win_down[full_rows, :-1] = self._win_down[full_rows, 1:]
            self._win_req[full_rows, :-1] = self._win_req[full_rows, 1:]
        pos = np.where(full, width - 1, lens)
        self._win_down[rows, pos] = downtime
        self._win_req[rows, pos] = requested
        self._win_len[rows] = np.minimum(lens + 1, width)

    def _window_fraction_rows(self, rows: np.ndarray) -> np.ndarray:
        """Windowed downtime fractions for the given rows.

        Row sums are left-to-right (``np.cumsum``), matching the deque
        implementation bit for bit; unfilled tail slots hold +0.0, which
        never perturbs a left-to-right sum of non-negative terms.
        """
        if rows.size == 0:
            return np.zeros(0, dtype=np.float64)
        requested = np.cumsum(self._win_req[rows], axis=1)[:, -1]
        downtime = np.cumsum(self._win_down[rows], axis=1)[:, -1]
        fractions = np.zeros(rows.shape[0], dtype=np.float64)
        served = requested > 0.0
        fractions[served] = downtime[served] / requested[served]
        return fractions

    # ------------------------------------------------------------------
    # Per-step observation
    # ------------------------------------------------------------------
    def observe_step(
        self,
        datacenter,
        interval_seconds: float,
        migration_downtime: Mapping[int, float] = (),
    ) -> None:
        """Record one observation interval.

        * every host serving VMs accrues active time, and overload time
          when its demanded utilization exceeds ``beta``;
        * every active VM accrues requested time;
        * VMs on overloaded hosts accrue the full interval as overload
          downtime (Section 3.3 counts the host's whole overloading time
          against each VM on it);
        * per-VM migration downtime (from the migration engine) is added
          as reported.
        """
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        arrays = getattr(datacenter, "arrays", None)
        if arrays is not None:
            self._observe_step_vectorized(
                datacenter, arrays, interval_seconds, migration_downtime
            )
        else:
            self._observe_step_objects(
                datacenter, interval_seconds, migration_downtime
            )

    def _observe_step_vectorized(
        self, datacenter, arrays, interval_seconds: float,
        migration_downtime: Mapping[int, float],
    ) -> None:
        self._ensure_host_capacity(datacenter.num_pms)
        self._ensure_vm_capacity(datacenter.num_vms)
        interval = interval_seconds

        active_ids = np.flatnonzero(arrays.active_pm_mask())
        new_hosts = active_ids[~self._host_seen[active_ids]]
        for pm_id in new_hosts:
            pm_key = int(pm_id)
            self.hosts[pm_key] = HostSlaRecord._bound(self, pm_key)
            self._host_seen[pm_key] = True
        self._host_active_s[active_ids] += interval
        overloaded_mask = arrays.overloaded_pm_mask(
            self.beta, self.bandwidth_threshold
        )
        self._host_overload_s[np.flatnonzero(overloaded_mask)] += interval

        placed = arrays.host_of >= 0
        eligible = placed & arrays.vm_active
        eligible_ids = np.flatnonzero(eligible)
        self._vm_requested_s[eligible_ids] += interval
        on_overloaded = np.zeros_like(eligible)
        on_overloaded[eligible_ids] = overloaded_mask[
            arrays.host_of[eligible_ids]
        ]
        overloaded_vm_ids = np.flatnonzero(on_overloaded)
        self._vm_over_down_s[overloaded_vm_ids] += interval

        # New VM records in the same first-seen order as the object
        # path: host id ascending, VM id ascending within a host.
        new_ids = eligible_ids[~self._vm_seen[eligible_ids]]
        if new_ids.size:
            order = np.lexsort((new_ids, arrays.host_of[new_ids]))
            for vm_id in new_ids[order]:
                vm_key = int(vm_id)
                self.vms[vm_key] = VmSlaRecord._bound(self, vm_key)
                self._vm_seen[vm_key] = True

        num = self._buf_down.shape[0]
        down = self._buf_down
        req = self._buf_req
        in_step = self._buf_in_step
        down[:num] = 0.0
        req[:num] = 0.0
        in_step[:num] = False
        down[overloaded_vm_ids] = interval
        req[eligible_ids] = interval
        in_step[eligible_ids] = True
        for vm_id, seconds in dict(migration_downtime).items():
            self.vm_record(vm_id).migration_downtime_seconds += seconds
            # Buffers may have been reallocated by vm_record's growth.
            down = self._buf_down
            req = self._buf_req
            in_step = self._buf_in_step
            down[vm_id] += seconds
            if not in_step[vm_id]:
                req[vm_id] = interval
                in_step[vm_id] = True

        participants = np.flatnonzero(in_step)
        if participants.size:
            self._record_window_batch(
                participants,
                np.minimum(down[participants], req[participants]),
                req[participants],
            )

    def _observe_step_objects(
        self, datacenter, interval_seconds: float,
        migration_downtime: Mapping[int, float],
    ) -> None:
        """Object-model path for datacenters without an array mirror.

        Hosted VMs are visited in ascending id order — the canonical
        accumulation order shared with the vectorized path.
        """
        mig: Dict[int, float] = dict(migration_downtime)
        step_downtime: Dict[int, float] = {}
        step_requested: Dict[int, float] = {}
        for pm_id in datacenter.active_pm_ids():
            record = self.host_record(pm_id)
            record.active_seconds += interval_seconds
            overloaded = datacenter.is_overloaded(pm_id, self.beta) or (
                self.bandwidth_threshold is not None
                and datacenter.is_bandwidth_overloaded(
                    pm_id, self.bandwidth_threshold
                )
            )
            if overloaded:
                record.overload_seconds += interval_seconds
            for vm_id in sorted(datacenter.vms_on(pm_id)):
                vm = datacenter.vm(vm_id)
                if not vm.is_active:
                    continue
                vm_rec = self.vm_record(vm_id)
                vm_rec.requested_seconds += interval_seconds
                step_requested[vm_id] = interval_seconds
                if overloaded:
                    vm_rec.overload_downtime_seconds += interval_seconds
                    step_downtime[vm_id] = (
                        step_downtime.get(vm_id, 0.0) + interval_seconds
                    )
        for vm_id, seconds in mig.items():
            self.vm_record(vm_id).migration_downtime_seconds += seconds
            step_downtime[vm_id] = step_downtime.get(vm_id, 0.0) + seconds
            step_requested.setdefault(vm_id, interval_seconds)
        for vm_id, requested in step_requested.items():
            downtime = min(step_downtime.get(vm_id, 0.0), requested)
            self.vm_record(vm_id).record_step(downtime, requested)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def downtime_fraction(self, vm_id: int) -> float:
        """Windowed downtime fraction for a VM (0 if never seen)."""
        record = self.vms.get(vm_id)
        return record.downtime_fraction if record else 0.0

    def windowed_downtime_fractions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``(vm_ids, fractions)`` over every tracked VM.

        Ids come back in first-seen order (the ``vms`` dict order), so a
        cost model summing per-VM terms over this vector accumulates in
        exactly the order the per-record loop would.
        """
        vm_ids = np.fromiter(self.vms.keys(), dtype=np.int64, count=len(self.vms))
        return vm_ids, self._window_fraction_rows(vm_ids)

    def overall_sla_violation(self) -> float:
        """Mean lifetime downtime fraction across VMs — a QoS summary."""
        if not self.vms:
            return 0.0
        return sum(
            r.cumulative_downtime_fraction for r in self.vms.values()  # meghlint: ignore[MEGH009] -- cold path: end-of-run summary
        ) / len(self.vms)
