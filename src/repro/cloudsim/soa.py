"""Struct-of-arrays backing store for the datacenter hot state.

The per-step simulator pipeline (workload application, CPU sharing, SLA
accounting, power evaluation, overload/metrics queries) reads and writes
the *same* per-VM and per-PM quantities many times per interval.  The
pre-vectorization :class:`~repro.cloudsim.datacenter.Datacenter` stored
them on Python objects and re-summed per-host aggregates from scratch on
every query; at the paper's scale (N=1052 VMs, M=800 PMs) those scans
dominated the step time.

:class:`DatacenterArrays` keeps the dynamic state in dense NumPy vectors
indexed by entity id — ``host_of[vm_id]`` (−1 = unplaced),
``vm_demand``, ``vm_delivered``, ``vm_bw_demand``, ``vm_active`` — plus
per-PM aggregates (``pm_demand_mips``, ``pm_ram_used_mb``, …) that are
rebuilt *lazily*: mutations only flip a dirty flag, and the first query
after a mutation rebuilds the aggregate with one vectorized
``np.bincount`` pass over the placed VMs in ascending-id order.

Bit-identity contract
---------------------
Aggregates are deliberately **not** maintained incrementally with
``+=``/``-=`` on floats: accumulated rounding dust would make them drift
from a freshly-computed sum, breaking the golden decision traces.
Instead every rebuild is a left-to-right sum over VMs in ascending id
order (``np.bincount`` adds weights in the order given, which is
bit-identical to the equivalent Python loop), so any query returns
exactly what the reference object-model implementation returns.  The
per-PM *counts* are maintained incrementally — integer arithmetic is
exact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DatacenterArrays"]


class DatacenterArrays:
    """Dense per-entity state vectors plus lazily-rebuilt PM aggregates.

    Attributes (all indexed by entity id):
        host_of: ``int64[N]`` — hosting PM id, −1 when unplaced.
        vm_demand: ``float64[N]`` — demanded CPU utilization fraction.
        vm_delivered: ``float64[N]`` — delivered CPU utilization fraction.
        vm_bw_demand: ``float64[N]`` — demanded network utilization.
        vm_active: ``bool[N]`` — whether the VM has a running workload.
        vm_mips / vm_ram_mb / vm_bandwidth_mbps: static VM capacities.
        pm_mips / pm_ram_mb / pm_bandwidth_mbps: static PM capacities.
        pm_asleep: ``bool[M]`` — sleeping hosts draw no power.
        pm_vm_count: ``int64[M]`` — VMs placed per host (incremental).
    """

    def __init__(self, num_vms: int, num_pms: int) -> None:
        self.num_vms = num_vms
        self.num_pms = num_pms
        # Static capacities (filled by Datacenter when binding entities).
        self.vm_mips = np.zeros(num_vms, dtype=np.float64)
        self.vm_ram_mb = np.zeros(num_vms, dtype=np.float64)
        self.vm_bandwidth_mbps = np.zeros(num_vms, dtype=np.float64)
        self.pm_mips = np.zeros(num_pms, dtype=np.float64)
        self.pm_ram_mb = np.zeros(num_pms, dtype=np.float64)
        self.pm_bandwidth_mbps = np.zeros(num_pms, dtype=np.float64)
        # Dynamic per-VM state.
        self.vm_demand = np.zeros(num_vms, dtype=np.float64)
        self.vm_delivered = np.zeros(num_vms, dtype=np.float64)
        self.vm_bw_demand = np.zeros(num_vms, dtype=np.float64)
        self.vm_active = np.ones(num_vms, dtype=bool)
        self.host_of = np.full(num_vms, -1, dtype=np.int64)
        # Dynamic per-PM state.
        self.pm_asleep = np.zeros(num_pms, dtype=bool)
        self.pm_vm_count = np.zeros(num_pms, dtype=np.int64)
        # Lazily-rebuilt aggregates and their dirty flags.
        self._pm_ram_used = np.zeros(num_pms, dtype=np.float64)
        self._pm_demand_mips = np.zeros(num_pms, dtype=np.float64)
        self._pm_bw_mbps = np.zeros(num_pms, dtype=np.float64)
        self._pm_delivered_mips = np.zeros(num_pms, dtype=np.float64)
        self._ram_dirty = True
        self._demand_dirty = True
        self._bw_dirty = True
        self._delivered_dirty = True
        # Derived-vector caches keyed on aggregate rebuild generations:
        # the dirty flags above answer "is the aggregate itself stale?";
        # the generation counter answers the second-order question "has
        # the aggregate been *rebuilt* since this derived vector was
        # computed from it?" — so derived caches stay fresh without
        # adding new flags to the declared invariant table.
        self._ram_rebuilds = 0
        self._pm_ram_free = np.zeros(num_pms, dtype=np.float64)
        self._ram_free_gen = -1

    # ------------------------------------------------------------------
    # Dirty-flag management
    # ------------------------------------------------------------------
    def mark_placement_dirty(self) -> None:
        """A place/remove/move invalidates every per-PM aggregate."""
        self._ram_dirty = True
        self._demand_dirty = True
        self._bw_dirty = True
        self._delivered_dirty = True

    def mark_demand_dirty(self) -> None:
        self._demand_dirty = True

    def mark_bw_dirty(self) -> None:
        self._bw_dirty = True

    def mark_delivered_dirty(self) -> None:
        self._delivered_dirty = True

    def mark_activity_dirty(self) -> None:
        """Deactivation zeroes demand, delivered and bandwidth at once."""
        self._demand_dirty = True
        self._bw_dirty = True
        self._delivered_dirty = True

    # ------------------------------------------------------------------
    # Slot lifecycle (service-mode churn; see repro.service)
    # ------------------------------------------------------------------
    def bind_vm_slot(
        self, index: int, mips: float, ram_mb: float, bandwidth_mbps: float
    ) -> None:
        """Give a reused slot a new arrival's capacities.

        The slot starts unplaced, active, with zero demand — the service
        loop places it and applies its workload afterwards.
        """
        self.vm_mips[index] = mips
        self.vm_ram_mb[index] = ram_mb
        self.vm_bandwidth_mbps[index] = bandwidth_mbps
        self.vm_demand[index] = 0.0
        self.vm_delivered[index] = 0.0
        self.vm_bw_demand[index] = 0.0
        self.vm_active[index] = True
        self.host_of[index] = -1
        self.mark_placement_dirty()

    def clear_vm_slot(self, index: int) -> None:
        """Retire a departed VM's slot: inactive, unplaced, zero demand.

        The caller must have removed the VM from its host first (the
        placement aggregates are marked dirty here regardless, so a
        same-step reuse rebuilds from consistent state).
        """
        self.vm_mips[index] = 0.0
        self.vm_ram_mb[index] = 0.0
        self.vm_bandwidth_mbps[index] = 0.0
        self.vm_demand[index] = 0.0
        self.vm_delivered[index] = 0.0
        self.vm_bw_demand[index] = 0.0
        self.vm_active[index] = False
        self.host_of[index] = -1
        self.mark_placement_dirty()

    # ------------------------------------------------------------------
    # Lazily-rebuilt per-PM aggregates
    # ------------------------------------------------------------------
    def _sum_by_host(self, weights: np.ndarray) -> np.ndarray:
        """Per-PM sums of ``weights`` over placed VMs, ascending id order.

        ``np.bincount`` accumulates the weights in the order they are
        given; feeding placed VMs in ascending id order makes each
        per-PM sum bit-identical to the reference implementation's
        left-to-right Python loop over ``sorted(vms_on(pm))``.
        """
        placed = np.flatnonzero(self.host_of >= 0)
        return np.bincount(
            self.host_of[placed],
            weights=weights[placed],
            minlength=self.num_pms,
        )

    def pm_ram_used_mb(self) -> np.ndarray:
        if self._ram_dirty:
            self._pm_ram_used = self._sum_by_host(self.vm_ram_mb)
            self._ram_dirty = False
            self._ram_rebuilds += 1
        return self._pm_ram_used

    def pm_demand_mips(self) -> np.ndarray:
        if self._demand_dirty:
            self._pm_demand_mips = self._sum_by_host(
                self.vm_demand * self.vm_mips
            )
            self._demand_dirty = False
        return self._pm_demand_mips

    def pm_bw_demand_mbps(self) -> np.ndarray:
        if self._bw_dirty:
            self._pm_bw_mbps = self._sum_by_host(
                self.vm_bw_demand * self.vm_bandwidth_mbps
            )
            self._bw_dirty = False
        return self._pm_bw_mbps

    def pm_delivered_mips(self) -> np.ndarray:
        if self._delivered_dirty:
            self._pm_delivered_mips = self._sum_by_host(
                self.vm_delivered * self.vm_mips
            )
            self._delivered_dirty = False
        return self._pm_delivered_mips

    # ------------------------------------------------------------------
    # Derived vectors used by the per-step pipeline
    # ------------------------------------------------------------------
    def pm_ram_free_mb(self) -> np.ndarray:
        """RAM still available per host (``pm_ram_mb − pm_ram_used_mb``).

        Cached against :attr:`_ram_rebuilds`: the subtraction reruns only
        when the RAM aggregate was actually rebuilt, so candidate
        generation and placement queues that query it many times per
        step pay one vector subtract per mutation, not per query.  The
        cache additionally relies on PM RAM capacities being static
        after binding (``PhysicalMachine`` has no post-bind capacity
        setter), matching the invariant table's note that capacity
        vectors carry no dirty flag.
        """
        used = self.pm_ram_used_mb()
        if self._ram_free_gen != self._ram_rebuilds:
            self._pm_ram_free = self.pm_ram_mb - used
            self._ram_free_gen = self._ram_rebuilds
        return self._pm_ram_free

    def pm_demand_utilization(self) -> np.ndarray:
        """Demanded load fraction per host (can exceed 1)."""
        return self.pm_demand_mips() / self.pm_mips

    def pm_delivered_utilization(self) -> np.ndarray:
        """Delivered load fraction per host, capped at 1."""
        return np.minimum(1.0, self.pm_delivered_mips() / self.pm_mips)

    def pm_bw_demand_utilization(self) -> np.ndarray:
        """Demanded network load fraction per host."""
        return self.pm_bw_demand_mbps() / self.pm_bandwidth_mbps

    def active_pm_mask(self) -> np.ndarray:
        """Hosts currently serving at least one VM."""
        return self.pm_vm_count > 0

    def overloaded_pm_mask(
        self, beta: float, bandwidth_threshold: float | None = None
    ) -> np.ndarray:
        """Non-empty hosts whose CPU (or network) demand exceeds the
        threshold — the same predicate as ``Datacenter.is_overloaded``."""
        mask = self.pm_demand_utilization() > beta
        if bandwidth_threshold is not None:
            mask |= self.pm_bw_demand_utilization() > bandwidth_threshold
        return mask & self.active_pm_mask()
