"""Data-center invariant checking.

A consistency oracle for tests, debugging sessions, and paranoid
production runs: :func:`check_invariants` verifies the structural
invariants the rest of the system relies on and raises
:class:`InvariantViolation` (with every violation listed) when any is
broken.  ``Simulation.run(validate_every_step=True)`` calls it after
every interval, catching scheduler or engine bugs at the step that
introduced them instead of long after.
"""

from __future__ import annotations

from typing import List

from repro.cloudsim.datacenter import Datacenter
from repro.errors import ReproError

#: Tolerance for demand values that should be zero: workload generators
#: compute utilizations in float arithmetic, so an "inactive" VM may carry
#: a few ULPs of dust rather than an exact 0.0.
DEMAND_EPSILON = 1e-9


class InvariantViolation(ReproError):
    """One or more data-center invariants do not hold."""

    def __init__(self, violations: List[str]) -> None:
        self.violations = violations
        super().__init__(
            "data-center invariants violated:\n  " + "\n  ".join(violations)
        )


def find_violations(datacenter: Datacenter) -> List[str]:
    """Return descriptions of every broken invariant (empty = healthy)."""
    violations: List[str] = []

    # 1. Placement maps are mutually consistent.
    placement = datacenter.placement()
    for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
        for vm_id in datacenter.vms_on(pm.pm_id):
            if placement.get(vm_id) != pm.pm_id:
                violations.append(
                    f"VM {vm_id} listed on PM {pm.pm_id} but host_of says "
                    f"{placement.get(vm_id)}"
                )
    hosted = {
        vm_id
        for pm in datacenter.pms  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
        for vm_id in datacenter.vms_on(pm.pm_id)
    }
    for vm_id, pm_id in placement.items():
        if vm_id not in hosted:
            violations.append(
                f"host_of places VM {vm_id} on PM {pm_id} but no host "
                "lists it"
            )

    # 2. A VM appears on at most one host.
    seen = {}
    for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
        for vm_id in datacenter.vms_on(pm.pm_id):
            if vm_id in seen:
                violations.append(
                    f"VM {vm_id} appears on PMs {seen[vm_id]} and {pm.pm_id}"
                )
            seen[vm_id] = pm.pm_id

    # 3. RAM capacity holds on every host.  Recomputed from the
    # membership index rather than via ``ram_used_mb`` so the check stays
    # independent of the datacenter's cached per-PM aggregates.
    for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
        used = sum(
            datacenter.vm(vm_id).ram_mb
            for vm_id in datacenter.vms_on(pm.pm_id)
        )
        if used > pm.ram_mb + 1e-9:
            violations.append(
                f"PM {pm.pm_id} RAM oversubscribed: {used:.1f} of "
                f"{pm.ram_mb:.1f} MB"
            )

    # 4. No host is simultaneously asleep and serving VMs.
    for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
        if pm.asleep and datacenter.vms_on(pm.pm_id):
            violations.append(
                f"PM {pm.pm_id} is asleep but hosts "
                f"{sorted(datacenter.vms_on(pm.pm_id))}"
            )

    # 5. Utilization fields stay inside their domains.
    for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
        if not 0.0 <= vm.demanded_utilization <= 1.0:
            violations.append(
                f"VM {vm.vm_id} demanded utilization out of [0, 1]: "
                f"{vm.demanded_utilization}"
            )
        if vm.delivered_utilization < -1e-9 or (
            vm.delivered_utilization > vm.demanded_utilization + 1e-9
        ):
            violations.append(
                f"VM {vm.vm_id} delivered {vm.delivered_utilization} "
                f"outside [0, demanded {vm.demanded_utilization}]"
            )
        if not 0.0 <= vm.demanded_bandwidth_utilization <= 1.0:
            violations.append(
                f"VM {vm.vm_id} bandwidth utilization out of [0, 1]: "
                f"{vm.demanded_bandwidth_utilization}"
            )
        if not vm.is_active and abs(vm.demanded_utilization) > DEMAND_EPSILON:
            violations.append(
                f"inactive VM {vm.vm_id} demands "
                f"{vm.demanded_utilization}"
            )

    # 6. The struct-of-arrays mirror agrees with the dict/set index
    # (vectorized backends only — the reference datacenter has no arrays).
    arrays = getattr(datacenter, "arrays", None)
    if arrays is not None:
        for vm_id, pm_id in placement.items():
            if int(arrays.host_of[vm_id]) != pm_id:
                violations.append(
                    f"arrays.host_of[{vm_id}] = {int(arrays.host_of[vm_id])} "
                    f"but placement index says {pm_id}"
                )
        for vm in datacenter.vms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
            if vm.vm_id not in placement and int(arrays.host_of[vm.vm_id]) != -1:
                violations.append(
                    f"arrays.host_of[{vm.vm_id}] = "
                    f"{int(arrays.host_of[vm.vm_id])} but VM is unplaced"
                )
        for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- validator deliberately re-derives state entity-by-entity
            count = int(arrays.pm_vm_count[pm.pm_id])
            actual = len(datacenter.vms_on(pm.pm_id))
            if count != actual:
                violations.append(
                    f"arrays.pm_vm_count[{pm.pm_id}] = {count} but PM hosts "
                    f"{actual} VMs"
                )
    return violations


def check_invariants(datacenter: Datacenter) -> None:
    """Raise :class:`InvariantViolation` if any invariant is broken."""
    violations = find_violations(datacenter)
    if violations:
        raise InvariantViolation(violations)
