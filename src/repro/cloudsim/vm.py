"""Virtual machine model.

A :class:`VirtualMachine` carries the static resources a user requested
(CPU capacity in MIPS, RAM, network bandwidth) plus per-step dynamic state:
the CPU utilization fraction its workload *demands* and the fraction the
host actually *delivers* (which can be lower when the host is oversubscribed
or the VM is mid-migration).

Since the struct-of-arrays rewrite the dynamic state can live in two
places: a standalone VM keeps plain scalar attributes, while a VM owned
by a :class:`~repro.cloudsim.datacenter.Datacenter` is *bound* to the
datacenter's :class:`~repro.cloudsim.soa.DatacenterArrays` — its dynamic
properties then read and write the shared vectors, so the object API and
the vectorized pipeline always observe the same values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cloudsim.soa import DatacenterArrays


class VirtualMachine:
    """A virtual machine instance.

    Attributes:
        vm_id: unique integer identifier, dense in ``[0, N)``.
        mips: CPU capacity allocated to the VM (million instr. per second).
        ram_mb: RAM allocated to the VM, in megabytes.  Migration time is
            ``ram / bandwidth`` (Section 3.3).
        bandwidth_mbps: network bandwidth available for migrating this VM,
            in megabits per second.
        demanded_utilization: fraction of ``mips`` the workload currently
            asks for (set each step from the trace).
        delivered_utilization: fraction of ``mips`` the host actually
            granted this step.
        demanded_bandwidth_utilization: fraction of ``bandwidth_mbps``
            the workload's network traffic currently uses (only set by
            bandwidth-aware workloads; 0 otherwise).
    """

    def __init__(
        self,
        vm_id: int,
        mips: float,
        ram_mb: float,
        bandwidth_mbps: float,
        demanded_utilization: float = 0.0,
        delivered_utilization: float = 0.0,
        demanded_bandwidth_utilization: float = 0.0,
        _active: bool = True,
    ) -> None:
        if vm_id < 0:
            raise ConfigurationError("vm_id must be >= 0")
        if mips <= 0:
            raise ConfigurationError("VM mips must be > 0")
        if ram_mb <= 0:
            raise ConfigurationError("VM ram must be > 0")
        if bandwidth_mbps <= 0:
            raise ConfigurationError("VM bandwidth must be > 0")
        self.vm_id = vm_id
        self.mips = mips
        self.ram_mb = ram_mb
        self.bandwidth_mbps = bandwidth_mbps
        self._arrays: Optional["DatacenterArrays"] = None
        self._index = -1
        self._demand = 0.0
        self._delivered = delivered_utilization
        self._bw_demand = demanded_bandwidth_utilization
        self._active_flag = _active
        self.set_demand(demanded_utilization)

    def _bind(self, arrays: "DatacenterArrays", index: int) -> None:
        """Move this VM's dynamic state into a datacenter's arrays.

        Called by ``Datacenter.__init__``; carries the current scalar
        state over so binding is observationally a no-op.
        """
        arrays.vm_mips[index] = self.mips
        arrays.vm_ram_mb[index] = self.ram_mb
        arrays.vm_bandwidth_mbps[index] = self.bandwidth_mbps
        arrays.vm_demand[index] = self._demand
        arrays.vm_delivered[index] = self._delivered
        arrays.vm_bw_demand[index] = self._bw_demand
        arrays.vm_active[index] = self._active_flag
        arrays.mark_placement_dirty()
        self._arrays = arrays
        self._index = index

    def __repr__(self) -> str:
        return (
            f"VirtualMachine(vm_id={self.vm_id}, mips={self.mips}, "
            f"ram_mb={self.ram_mb}, bandwidth_mbps={self.bandwidth_mbps}, "
            f"demanded_utilization={self.demanded_utilization}, "
            f"delivered_utilization={self.delivered_utilization}, "
            f"demanded_bandwidth_utilization="
            f"{self.demanded_bandwidth_utilization})"
        )

    # ------------------------------------------------------------------
    # Dynamic state (array-backed when bound)
    # ------------------------------------------------------------------
    @property
    def demanded_utilization(self) -> float:
        arrays = self._arrays
        if arrays is None:
            return self._demand
        return float(arrays.vm_demand[self._index])

    @demanded_utilization.setter
    def demanded_utilization(self, value: float) -> None:
        arrays = self._arrays
        if arrays is None:
            self._demand = value
        else:
            arrays.vm_demand[self._index] = value
            arrays.mark_demand_dirty()

    @property
    def delivered_utilization(self) -> float:
        arrays = self._arrays
        if arrays is None:
            return self._delivered
        return float(arrays.vm_delivered[self._index])

    @delivered_utilization.setter
    def delivered_utilization(self, value: float) -> None:
        arrays = self._arrays
        if arrays is None:
            self._delivered = value
        else:
            arrays.vm_delivered[self._index] = value
            arrays.mark_delivered_dirty()

    @property
    def demanded_bandwidth_utilization(self) -> float:
        arrays = self._arrays
        if arrays is None:
            return self._bw_demand
        return float(arrays.vm_bw_demand[self._index])

    @demanded_bandwidth_utilization.setter
    def demanded_bandwidth_utilization(self, value: float) -> None:
        arrays = self._arrays
        if arrays is None:
            self._bw_demand = value
        else:
            arrays.vm_bw_demand[self._index] = value
            arrays.mark_bw_dirty()

    @property
    def _active(self) -> bool:
        """Raw active flag (no zeroing side effects; see ``set_active``)."""
        arrays = self._arrays
        if arrays is None:
            return self._active_flag
        return bool(arrays.vm_active[self._index])

    @_active.setter
    def _active(self, value: bool) -> None:
        arrays = self._arrays
        if arrays is None:
            self._active_flag = value
        else:
            arrays.vm_active[self._index] = value
            arrays.mark_activity_dirty()

    @property
    def is_active(self) -> bool:
        """Whether the VM currently has a running workload."""
        return self._active

    def set_demand(self, utilization: float) -> None:
        """Set the workload's demanded CPU fraction for this step."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        self.demanded_utilization = utilization

    def set_bandwidth_demand(self, utilization: float) -> None:
        """Set the workload's demanded network fraction for this step."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"bandwidth utilization must be in [0, 1], got {utilization}"
            )
        self.demanded_bandwidth_utilization = utilization

    def set_active(self, active: bool) -> None:
        """Mark the VM as running a task (Google-style traces) or idle."""
        arrays = self._arrays
        if arrays is None:
            self._active_flag = active
            if not active:
                self._demand = 0.0
                self._delivered = 0.0
                self._bw_demand = 0.0
        else:
            index = self._index
            arrays.vm_active[index] = active
            if not active:
                arrays.vm_demand[index] = 0.0
                arrays.vm_delivered[index] = 0.0
                arrays.vm_bw_demand[index] = 0.0
            arrays.mark_activity_dirty()

    @property
    def demanded_mips(self) -> float:
        """Absolute MIPS the workload is asking for this step."""
        return self.demanded_utilization * self.mips

    @property
    def delivered_mips(self) -> float:
        """Absolute MIPS the host granted this step."""
        return self.delivered_utilization * self.mips

    @property
    def demanded_bandwidth_mbps(self) -> float:
        """Absolute network bandwidth the workload is using this step."""
        return self.demanded_bandwidth_utilization * self.bandwidth_mbps

    def migration_time_seconds(self) -> float:
        """Expected live-migration duration ``TM = M / B`` (Section 3.3).

        RAM is in megabytes and bandwidth in megabits/s, so the factor 8
        converts bytes to bits.
        """
        return self.ram_mb * 8.0 / self.bandwidth_mbps
