"""Virtual machine model.

A :class:`VirtualMachine` carries the static resources a user requested
(CPU capacity in MIPS, RAM, network bandwidth) plus per-step dynamic state:
the CPU utilization fraction its workload *demands* and the fraction the
host actually *delivers* (which can be lower when the host is oversubscribed
or the VM is mid-migration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class VirtualMachine:
    """A virtual machine instance.

    Attributes:
        vm_id: unique integer identifier, dense in ``[0, N)``.
        mips: CPU capacity allocated to the VM (million instr. per second).
        ram_mb: RAM allocated to the VM, in megabytes.  Migration time is
            ``ram / bandwidth`` (Section 3.3).
        bandwidth_mbps: network bandwidth available for migrating this VM,
            in megabits per second.
        demanded_utilization: fraction of ``mips`` the workload currently
            asks for (set each step from the trace).
        delivered_utilization: fraction of ``mips`` the host actually
            granted this step.
        demanded_bandwidth_utilization: fraction of ``bandwidth_mbps``
            the workload's network traffic currently uses (only set by
            bandwidth-aware workloads; 0 otherwise).
    """

    vm_id: int
    mips: float
    ram_mb: float
    bandwidth_mbps: float
    demanded_utilization: float = 0.0
    delivered_utilization: float = 0.0
    demanded_bandwidth_utilization: float = 0.0
    _active: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        if self.vm_id < 0:
            raise ConfigurationError("vm_id must be >= 0")
        if self.mips <= 0:
            raise ConfigurationError("VM mips must be > 0")
        if self.ram_mb <= 0:
            raise ConfigurationError("VM ram must be > 0")
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError("VM bandwidth must be > 0")
        self.set_demand(self.demanded_utilization)

    @property
    def is_active(self) -> bool:
        """Whether the VM currently has a running workload."""
        return self._active

    def set_demand(self, utilization: float) -> None:
        """Set the workload's demanded CPU fraction for this step."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        self.demanded_utilization = utilization

    def set_bandwidth_demand(self, utilization: float) -> None:
        """Set the workload's demanded network fraction for this step."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"bandwidth utilization must be in [0, 1], got {utilization}"
            )
        self.demanded_bandwidth_utilization = utilization

    def set_active(self, active: bool) -> None:
        """Mark the VM as running a task (Google-style traces) or idle."""
        self._active = active
        if not active:
            self.demanded_utilization = 0.0
            self.delivered_utilization = 0.0
            self.demanded_bandwidth_utilization = 0.0

    @property
    def demanded_mips(self) -> float:
        """Absolute MIPS the workload is asking for this step."""
        return self.demanded_utilization * self.mips

    @property
    def delivered_mips(self) -> float:
        """Absolute MIPS the host granted this step."""
        return self.delivered_utilization * self.mips

    @property
    def demanded_bandwidth_mbps(self) -> float:
        """Absolute network bandwidth the workload is using this step."""
        return self.demanded_bandwidth_utilization * self.bandwidth_mbps

    def migration_time_seconds(self) -> float:
        """Expected live-migration duration ``TM = M / B`` (Section 3.3).

        RAM is in megabytes and bandwidth in megabits/s, so the factor 8
        converts bytes to bits.
        """
        return self.ram_mb * 8.0 / self.bandwidth_mbps
