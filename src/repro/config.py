"""Configuration dataclasses shared across the library.

All experiment-level knobs live here so that a single frozen config object
fully determines a simulation run.  Defaults follow Section 6.1 of the
paper: electricity at 0.18675 USD/kWh, VM price 1.2 USD/h, SLA paybacks of
16.7 % and 33.3 %, overload threshold beta = 70 %, migration CPU threshold
alpha = 30 %, discount gamma = 0.5, Boltzmann Temp0 = 3 and epsilon = 0.01,
and a per-step migration cap of 2 % of the VMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Observation interval used by the PlanetLab and Google traces (seconds).
DEFAULT_INTERVAL_SECONDS = 300.0

#: Standard local electricity price used by the paper (USD per kWh).
DEFAULT_ENERGY_PRICE_USD_PER_KWH = 0.18675

#: Hourly price a user pays for one VM instance (USD, Section 6.1).
DEFAULT_VM_PRICE_USD_PER_HOUR = 1.2


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class CostConfig:
    """Parameters of the operation-cost model (Sections 3.2 and 3.3).

    Attributes:
        energy_price_usd_per_kwh: cost of consuming 1 kWh (``c_p`` up to
            unit conversion).
        vm_price_usd_per_hour: what a user pays per VM-hour; SLA paybacks
            are fractions of this.
        payback_minor: fraction of the user's money refunded when the
            downtime percentage falls in ``(minor_threshold, major_threshold]``.
        payback_major: fraction refunded when downtime exceeds
            ``major_threshold``.
        minor_downtime_threshold: lower edge of the minor violation band,
            as a fraction (paper: 0.05 % -> 0.0005).
        major_downtime_threshold: edge above which the major payback
            applies (paper: 0.10 % -> 0.001).
        sla_billing_window_seconds: trailing window over which the
            downtime percentage is evaluated (real SLAs settle per
            billing period; the paper's cumulative-from-start reading is
            approximated by setting this to the experiment length).
    """

    energy_price_usd_per_kwh: float = DEFAULT_ENERGY_PRICE_USD_PER_KWH
    vm_price_usd_per_hour: float = DEFAULT_VM_PRICE_USD_PER_HOUR
    payback_minor: float = 0.167
    payback_major: float = 0.333
    minor_downtime_threshold: float = 0.0005
    major_downtime_threshold: float = 0.001
    sla_billing_window_seconds: float = 7200.0

    def __post_init__(self) -> None:
        _require(self.energy_price_usd_per_kwh >= 0, "energy price must be >= 0")
        _require(self.vm_price_usd_per_hour >= 0, "VM price must be >= 0")
        _require(
            0 <= self.payback_minor <= self.payback_major <= 1,
            "paybacks must satisfy 0 <= minor <= major <= 1",
        )
        _require(
            0
            <= self.minor_downtime_threshold
            <= self.major_downtime_threshold
            <= 1,
            "downtime thresholds must satisfy 0 <= minor <= major <= 1",
        )
        _require(
            self.sla_billing_window_seconds > 0,
            "SLA billing window must be > 0",
        )

    @property
    def energy_price_usd_per_watt_second(self) -> float:
        """``c_p`` of Eq. (1): USD for 1 W drawn during 1 s."""
        return self.energy_price_usd_per_kwh / (1000.0 * 3600.0)


@dataclass(frozen=True)
class DatacenterConfig:
    """Parameters of the physical substrate and its SLA thresholds.

    Attributes:
        overload_threshold: ``beta`` — utilization fraction above which a
            host counts as overloaded (paper: 0.70).
        migration_cpu_threshold: ``alpha`` — during migration, delivered
            CPU below ``alpha * demand`` counts as downtime (paper: 0.30).
        sleep_idle_hosts: put hosts with no VMs to sleep (zero power).
        migration_overhead_fraction: fraction of the migrating VM's CPU
            demand lost to the migration process while it is in flight.
            CloudSim charges 10 % by default; we follow that.
        bandwidth_aware: treat network saturation on a host as overload
            too (the Section-7 multi-resource extension).  Requires a
            bandwidth-aware workload (see
            :mod:`repro.workloads.bandwidth`).
        bandwidth_overload_threshold: network-utilization fraction above
            which a host counts as overloaded in bandwidth-aware mode.
    """

    overload_threshold: float = 0.70
    migration_cpu_threshold: float = 0.30
    sleep_idle_hosts: bool = True
    migration_overhead_fraction: float = 0.10
    bandwidth_aware: bool = False
    bandwidth_overload_threshold: float = 0.70

    def __post_init__(self) -> None:
        _require(0 < self.overload_threshold <= 1, "beta must be in (0, 1]")
        _require(
            0 <= self.migration_cpu_threshold <= 1, "alpha must be in [0, 1]"
        )
        _require(
            0 <= self.migration_overhead_fraction < 1,
            "migration overhead must be in [0, 1)",
        )
        _require(
            0 < self.bandwidth_overload_threshold <= 1,
            "bandwidth overload threshold must be in (0, 1]",
        )


@dataclass(frozen=True)
class MeghConfig:
    """Hyper-parameters of the Megh agent (Algorithms 1 and 2).

    Attributes:
        gamma: discount factor of the infinite-horizon MDP (paper: 0.5).
        initial_temperature: ``Temp0`` of Boltzmann exploration (paper: 3).
        temperature_decay: ``epsilon`` — temperature decays by
            ``exp(-epsilon)`` per step (paper: 0.01).
        min_temperature: floor below which the temperature stops decaying,
            keeping the softmax numerically well behaved.
        delta: initial scale of the inverse operator ``B_0 = (1/delta) I``;
            the paper sets ``delta = d`` which is selected when this is None.
        max_migration_fraction: at most this fraction of VMs may be
            migrated per step (paper: 2 %).
        cost_scale: divisor applied to the per-step cost before it enters
            the LSTD update, keeping Q differences on the same scale as
            the Boltzmann temperature.  ``None`` (default) normalizes
            adaptively by the running mean per-step cost.  Purely a
            numerical normalization; does not change the argmin.
        baseline_subtraction: subtract the running mean cost before the
            update, making the learning signal zero-mean (standard RL
            variance reduction; ablatable).
        consolidate_underloaded: also propose consolidation moves away
            from lightly loaded hosts (in addition to mandatory moves off
            overloaded hosts).
        underload_threshold: hosts below this utilization are
            consolidation sources.
        candidate_destinations: number of candidate destination hosts
            scored per migrating VM; ``0`` scores every host.
        max_candidate_vms: per-step cap on VMs whose actions are scored
            (overloaded-host VMs first); ``0`` scores every candidate.
            Together with ``candidate_destinations`` this bounds Megh's
            per-step work, which is what keeps it real-time at scale.
        migration_margin: hysteresis, in normalized-cost units — a
            consolidation move is executed only when its Q beats the
            VM's stay-put Q by this margin.  Prevents ties between
            equally good homes from producing endless ping-pong
            migrations once the temperature has decayed.  Moves off
            *overloaded* hosts are exempt (relief is mandatory).
    """

    gamma: float = 0.5
    initial_temperature: float = 3.0
    temperature_decay: float = 0.01
    min_temperature: float = 1e-3
    delta: float | None = None
    max_migration_fraction: float = 0.02
    cost_scale: float | None = None
    baseline_subtraction: bool = True
    consolidate_underloaded: bool = True
    underload_threshold: float = 0.20
    candidate_destinations: int = 6
    max_candidate_vms: int = 32
    migration_margin: float = 0.01
    destination_headroom: float = 0.40

    def __post_init__(self) -> None:
        _require(0 <= self.gamma < 1, "gamma must be in [0, 1)")
        _require(self.initial_temperature > 0, "Temp0 must be > 0")
        _require(self.temperature_decay >= 0, "epsilon must be >= 0")
        _require(self.min_temperature > 0, "min temperature must be > 0")
        _require(
            self.delta is None or self.delta > 0, "delta must be > 0 or None"
        )
        _require(
            0 < self.max_migration_fraction <= 1,
            "migration cap must be in (0, 1]",
        )
        _require(
            self.cost_scale is None or self.cost_scale > 0,
            "cost scale must be > 0 or None",
        )
        _require(
            0 <= self.underload_threshold <= 1,
            "underload threshold must be in [0, 1]",
        )
        _require(
            self.candidate_destinations >= 0,
            "candidate destinations must be >= 0",
        )
        _require(
            self.max_candidate_vms >= 0,
            "max candidate VMs must be >= 0",
        )
        _require(
            self.migration_margin >= 0,
            "migration margin must be >= 0",
        )
        _require(
            0 < self.destination_headroom <= 1,
            "destination headroom must be in (0, 1]",
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level simulation parameters.

    Attributes:
        interval_seconds: ``tau`` — seconds between observations (300 s).
        num_steps: number of discrete steps to simulate.
        seed: master seed; every stochastic component derives its stream
            from it, making runs reproducible.
        costs: cost-model parameters.
        datacenter: substrate parameters.
    """

    interval_seconds: float = DEFAULT_INTERVAL_SECONDS
    num_steps: int = 288
    seed: int = 42
    costs: CostConfig = field(default_factory=CostConfig)
    datacenter: DatacenterConfig = field(default_factory=DatacenterConfig)

    def __post_init__(self) -> None:
        _require(self.interval_seconds > 0, "interval must be > 0")
        _require(self.num_steps > 0, "num_steps must be > 0")

    @property
    def total_seconds(self) -> float:
        """Wall-clock span covered by the simulation."""
        return self.interval_seconds * self.num_steps
