"""Megh: the paper's online reinforcement-learning scheduler (Section 5).

``basis`` defines the sparse one-hot projection (Theorem 1), ``sparse``
the dict-of-rows matrix that exploits it (Section 5.2), ``lstd`` the
Sherman–Morrison incremental inverse and least-squares machinery
(Algorithm 1), ``exploration`` the Boltzmann policy calculator
(Algorithm 2), ``candidates`` the array-native candidate pipeline
feeding it, and ``agent`` the full scheduler.
"""

from repro.core.basis import SparseBasis
from repro.core.candidates import CandidateIndex, CandidatePlan
from repro.core.sparse import SparseMatrix
from repro.core.lstd import SparseLstd
from repro.core.dense import DenseLstd
from repro.core.exploration import BoltzmannPolicy, EpsilonGreedyPolicy
from repro.core.qtable import QTableTracker
from repro.core.agent import MeghScheduler
from repro.core.checkpoint import load_agent, save_agent
from repro.core.trace import DecisionRecord, DecisionTrace

__all__ = [
    "SparseBasis",
    "CandidateIndex",
    "CandidatePlan",
    "SparseMatrix",
    "SparseLstd",
    "DenseLstd",
    "BoltzmannPolicy",
    "EpsilonGreedyPolicy",
    "QTableTracker",
    "MeghScheduler",
    "save_agent",
    "load_agent",
    "DecisionRecord",
    "DecisionTrace",
]
