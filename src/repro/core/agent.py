"""The Megh scheduler (Algorithm 1 wired into the simulator).

Per observation interval the agent:

1. forms the candidate action set for the new state — for every VM on an
   overloaded host (mandatory relief) and, optionally, on an underloaded
   host (consolidation), all feasible ``(vm, destination)`` pairs plus the
   self-migration no-op;
2. completes the previous step's Algorithm-1 iteration: using the cost the
   simulator charged for that step (Eq. 6) and the action the current
   policy would take in the new state, applies the Sherman–Morrison update
   (Eq. 11) and the ``z``/``theta`` updates for each action executed last
   step;
3. selects this step's actions with the Boltzmann policy calculator
   (Algorithm 2) over ``Q(s, a) = theta[a]``, honouring the per-step cap
   of ``max_migration_fraction x N`` migrations;
4. decays the temperature.

Every piece of per-step work is proportional to the candidate set and to
the non-zeros touched in ``B`` — never to the full ``d = N x M`` space.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cloudsim.migration import Migration
from repro.config import MeghConfig
from repro.core.basis import SparseBasis
from repro.core.candidates import CandidateIndex, CandidatePlan
from repro.core.contracts import (
    ContractConfig,
    ShermanMorrisonAuditor,
    contracts_enabled,
    require_finite,
)
from repro.core.exploration import BoltzmannPolicy
from repro.core.lstd import SparseLstd
from repro.core.qtable import QTableTracker
from repro.errors import ConfigurationError
from repro.mdp.action import ActionSpace, MigrationAction
from repro.mdp.interfaces import Observation


class MeghScheduler:
    """Online RL live-migration scheduler (the paper's contribution).

    Args:
        num_vms: N.
        num_pms: M.
        config: hyper-parameters (Algorithm 1 and 2 defaults).
        beta: host overload threshold used to pick mandatory candidates;
            should match the simulator's SLA threshold.
        seed: RNG seed for exploration.
        policy: exploration policy override (defaults to the paper's
            Boltzmann calculator; inject
            :class:`~repro.core.exploration.EpsilonGreedyPolicy` for the
            ablation).
        contracts: runtime numerical-contract configuration (see
            :mod:`repro.core.contracts`).  ``None`` consults
            :func:`~repro.core.contracts.contracts_enabled` — on in the
            test suite, off in benchmarks; pass ``False`` to force off.
    """

    name = "Megh"

    def __init__(
        self,
        num_vms: int,
        num_pms: int,
        config: Optional[MeghConfig] = None,
        beta: float = 0.70,
        seed: int = 0,
        policy=None,
        bandwidth_beta: Optional[float] = None,
        trace=None,
        contracts=None,
        dynamic_slots: bool = False,
        scalar_candidates: Optional[bool] = None,
    ) -> None:
        if not 0 < beta <= 1:
            raise ConfigurationError("beta must be in (0, 1]")
        if bandwidth_beta is not None and not 0 < bandwidth_beta <= 1:
            raise ConfigurationError("bandwidth beta must be in (0, 1]")
        self.config = config or MeghConfig()
        self.beta = beta
        self.bandwidth_beta = bandwidth_beta
        self.action_space = ActionSpace(num_vms=num_vms, num_pms=num_pms)
        self.basis = SparseBasis(self.action_space)
        #: Array-native candidate pipeline (see repro.core.candidates).
        self.candidate_index = CandidateIndex(
            beta=beta, bandwidth_beta=bandwidth_beta, config=self.config
        )
        #: Differential-oracle switch: route candidate generation through
        #: the retained scalar pipeline instead of the vectorized index.
        #: ``None`` consults ``REPRO_SCALAR_CANDIDATES`` so benches and
        #: tests can flip the generator without threading a flag through
        #: every construction site.  Both generators produce identical
        #: plans — the scalar path exists to prove exactly that.
        if scalar_candidates is None:
            scalar_candidates = os.environ.get(
                "REPRO_SCALAR_CANDIDATES", ""
            ) not in ("", "0")
        self.scalar_candidates = scalar_candidates
        self.lstd = SparseLstd(
            dimension=self.action_space.dimension,
            gamma=self.config.gamma,
            delta=self.config.delta,
        )
        #: Service mode: VM slots are reused across arrivals/departures,
        #: so the learner tracks its forward operator for retirement.
        self.dynamic_slots = dynamic_slots
        if dynamic_slots:
            self.lstd.enable_operator_tracking()
        self.policy = policy or BoltzmannPolicy(
            initial_temperature=self.config.initial_temperature,
            decay=self.config.temperature_decay,
            min_temperature=self.config.min_temperature,
            seed=seed,
        )
        self.qtable = QTableTracker()
        self._rng = np.random.default_rng(seed + 1)
        self._previous_action_indices: List[int] = []
        self._steps_seen = 0
        self._cost_running_mean = 0.0
        self._costs_seen = 0
        #: Optional DecisionTrace collecting per-step records.
        self.trace = trace
        self._last_normalized_cost: Optional[float] = None
        if contracts is None:
            contracts = ContractConfig() if contracts_enabled() else False
        #: Runtime numerical-contract auditor (None when contracts off).
        self.auditor = (
            ShermanMorrisonAuditor(self.lstd, contracts)
            if isinstance(contracts, ContractConfig)
            else None
        )

    @classmethod
    def from_simulation(
        cls,
        simulation,
        config: Optional[MeghConfig] = None,
        seed: int = 0,
        contracts=None,
    ) -> "MeghScheduler":
        """Build an agent sized and thresholded to match a simulation."""
        dc_config = simulation.config.datacenter
        return cls(
            num_vms=simulation.datacenter.num_vms,
            num_pms=simulation.datacenter.num_pms,
            config=config,
            beta=dc_config.overload_threshold,
            seed=seed,
            contracts=contracts,
            bandwidth_beta=(
                dc_config.bandwidth_overload_threshold
                if dc_config.bandwidth_aware
                else None
            ),
            dynamic_slots=getattr(simulation, "dynamic_slots", False),
        )

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def decide(self, observation: Observation) -> List[Migration]:
        datacenter = observation.datacenter
        # The scalar oracle also serves backends without a
        # struct-of-arrays store (the reference object-model datacenter).
        if self.scalar_candidates or getattr(
            datacenter, "arrays", None
        ) is None:
            plan = self.candidate_index.plan_from_lists(
                datacenter, self._candidate_actions(observation)
            )
        else:
            plan = self.candidate_index.plan(datacenter)
        self._learn_from_last_step(observation, plan.action_indices)
        moves, noops = self._select_from_plan(plan)
        # Record the executed migrations plus a bounded sample of no-ops,
        # keeping the number of LSTD updates per step O(#migrations) —
        # the Section 5.2 complexity claim.
        noop_budget = max(1, len(moves))
        if len(noops) > noop_budget:
            picked = self._rng.choice(
                len(noops), size=noop_budget, replace=False
            )
            noops = [noops[int(i)] for i in picked]
        self._previous_action_indices = [
            entry[3] for entry in moves
        ] + [entry[3] for entry in noops]
        if self.trace is not None:
            from repro.core.trace import DecisionRecord

            self.trace.append(
                DecisionRecord(
                    step=observation.step,
                    temperature=self.policy.temperature,
                    normalized_cost=self._last_normalized_cost,
                    num_candidate_vms=plan.num_rows,
                    num_candidate_actions=plan.num_actions,
                    chosen=tuple(
                        (vm_id, dest) for vm_id, dest, _, _ in moves
                    ),
                    # Raw (margin-free) Q, reused from selection — B and
                    # z have not changed since, so recomputing would be
                    # the same value at twice the cost.
                    chosen_q=tuple(raw for _, _, raw, _ in moves),
                    q_table_nonzeros=self.lstd.q_table_nonzeros,
                )
            )
        self.policy.step()
        self._steps_seen += 1
        self.qtable.record(self._steps_seen, self.lstd.q_table_nonzeros)
        return [
            Migration(vm_id=vm_id, dest_pm_id=dest)
            for vm_id, dest, _, _ in moves
        ]

    def retire_vm(self, vm_slot: int) -> None:
        """Forget everything learned about a departed VM's slot.

        Clears the slot's block of ``M`` action indices from ``B`` and
        ``z`` (see :meth:`~repro.core.lstd.SparseLstd.retire_actions`)
        so a new arrival reusing the slot starts from the never-observed
        state.  Pending Algorithm-1 updates for the retired indices are
        dropped — the VM no longer exists, so there is no next state to
        bootstrap from.  Requires ``dynamic_slots=True``.
        """
        if not 0 <= vm_slot < self.action_space.num_vms:
            raise ConfigurationError(
                f"vm_slot {vm_slot} out of range "
                f"[0, {self.action_space.num_vms})"
            )
        num_pms = self.action_space.num_pms
        indices = range(vm_slot * num_pms, (vm_slot + 1) * num_pms)
        retired = set(indices)
        self._previous_action_indices = [
            index
            for index in self._previous_action_indices
            if index not in retired
        ]
        self.lstd.retire_actions(indices)
        if self.auditor is not None:
            self.auditor.after_retirement(indices)

    # ------------------------------------------------------------------
    # Candidate generation ("which VM" and "where")
    # ------------------------------------------------------------------
    def _candidate_actions(
        self, observation: Observation
    ) -> List[List[MigrationAction]]:
        """Per-VM candidate lists: the no-op plus feasible destinations.

        Overloaded-host VMs come first (mandatory relief), then VMs on
        underloaded hosts ordered so the easiest-to-empty hosts are
        considered first.  The ``max_candidate_vms`` cap bounds per-step
        work without changing what is learnable: the (vm, destination)
        Q-values persist across steps.

        Retained as the differential oracle for the vectorized
        :class:`~repro.core.candidates.CandidateIndex` — the per-entity
        loops here are the *specification* the broadcast path must match
        element for element, so they stay scalar on purpose.
        """
        datacenter = observation.datacenter
        source_vms: List[int] = []
        # The overload predicate is evaluated exactly once per decide —
        # both for source ordering and for the mandatory/relief test
        # below (nothing mutates the datacenter in between).
        overloaded_ids = datacenter.overloaded_pm_ids(
            self.beta, self.bandwidth_beta
        )
        for pm_id in overloaded_ids:
            source_vms.extend(
                vm_id
                for vm_id in sorted(datacenter.vms_on(pm_id))
                if datacenter.vm(vm_id).is_active
            )
        if self.config.consolidate_underloaded:
            underloaded = [
                pm_id
                for pm_id in datacenter.active_pm_ids()
                if 0.0
                < datacenter.demanded_utilization(pm_id)
                <= self.config.underload_threshold
            ]
            underloaded.sort(key=lambda pm_id: len(datacenter.vms_on(pm_id)))
            for pm_id in underloaded:
                source_vms.extend(
                    vm_id
                    for vm_id in sorted(datacenter.vms_on(pm_id))
                    if datacenter.vm(vm_id).is_active
                )
        cap = self.config.max_candidate_vms
        if cap:
            source_vms = source_vms[:cap]
        overloaded_now = set(overloaded_ids)
        per_vm: List[List[MigrationAction]] = []
        seen = set()
        for vm_id in source_vms:
            if vm_id in seen:
                continue
            seen.add(vm_id)
            current = datacenter.host_of(vm_id)
            if current is None:
                continue
            destinations = self._destinations_for(
                observation,
                vm_id,
                current,
                relief=current in overloaded_now,
            )
            actions = [
                MigrationAction(vm_id=vm_id, dest_pm_id=pm_id)
                for pm_id in destinations
            ]
            # The stay-put action competes for consolidation sources, but
            # not on an overloaded host with feasible destinations —
            # overload relief is mandatory (the cap still bounds how many
            # relief moves execute per step).
            if current not in overloaded_now or not actions:
                actions.insert(
                    0, MigrationAction(vm_id=vm_id, dest_pm_id=current)
                )
            per_vm.append(actions)
        return per_vm

    def _destinations_for(
        self,
        observation: Observation,
        vm_id: int,
        current: int,
        relief: bool = False,
    ) -> Sequence[int]:
        """Feasible destinations: RAM fits and no new overload is created.

        Consolidation proposals leave headroom below beta so demand noise
        after the move does not immediately tip the destination into
        overload; relief moves off an overloaded host may use the full
        beta budget (getting the VM out is the priority).

        When ``candidate_destinations`` bounds the proposal size, the
        most-utilized feasible hosts are proposed first: packing proposals
        are the ones worth scoring, and the learned Q (plus the no-op)
        still decides whether any of them is taken.
        """
        datacenter = observation.datacenter
        feasible = self._feasible_destinations(
            datacenter, vm_id, current, self.config.destination_headroom,
            allow_empty_hosts=relief,
        )
        if relief and not feasible:
            # No destination passes the safety headroom: getting the VM
            # off the overloaded host still beats leaving it, so fall
            # back to the full beta budget.
            feasible = self._feasible_destinations(
                datacenter, vm_id, current, 1.0, allow_empty_hosts=True
            )
        limit = self.config.candidate_destinations
        if limit and len(feasible) > limit:
            feasible.sort(
                key=lambda pm_id: -datacenter.demanded_utilization(pm_id)
            )
            feasible = feasible[:limit]
        return feasible

    def _feasible_destinations(
        self,
        datacenter,
        vm_id: int,
        current: int,
        headroom: float,
        allow_empty_hosts: bool,
    ) -> List[int]:
        vm = datacenter.vm(vm_id)
        feasible: List[int] = []
        for pm in datacenter.pms:  # meghlint: ignore[MEGH009] -- scalar differential oracle: this loop IS the spec the vectorized CandidateIndex is checked against
            if pm.pm_id == current:
                continue
            # Consolidation only packs onto hosts that already serve VMs;
            # moving a VM from one underloaded host to an empty one can
            # never reduce the active-host count.  Relief may wake hosts.
            if not allow_empty_hosts and not datacenter.vms_on(pm.pm_id):
                continue
            if not datacenter.fits(vm_id, pm.pm_id):
                continue
            new_demand = (
                datacenter.demanded_mips(pm.pm_id) + vm.demanded_mips
            )
            if new_demand > headroom * self.beta * pm.mips:
                continue
            if self.bandwidth_beta is not None:
                new_traffic = (
                    datacenter.bandwidth_demanded_mbps(pm.pm_id)
                    + vm.demanded_bandwidth_mbps
                )
                budget = (
                    headroom * self.bandwidth_beta * pm.bandwidth_mbps
                )
                if new_traffic > budget:
                    continue
            feasible.append(pm.pm_id)
        return feasible

    # ------------------------------------------------------------------
    # Learning (Algorithm 1 lines 8-12)
    # ------------------------------------------------------------------
    def _learn_from_last_step(
        self,
        observation: Observation,
        action_indices: np.ndarray,
    ) -> None:
        """Complete last step's Algorithm-1 iteration.

        ``action_indices`` is the current plan's flat candidate array
        (``vm_id * M + dest_pm_id``), fed straight to the batched Q
        evaluation — no per-action object traffic.
        """
        if not self._previous_action_indices:
            return
        cost = self._normalize_cost(observation.last_step_cost_usd)
        if self.auditor is not None:
            require_finite("normalized step cost", cost)
        next_index = self._greedy_candidate_index(action_indices)
        for action_index in self._previous_action_indices:
            target = next_index if next_index is not None else action_index
            # Each action "in effect" last step receives the full step
            # cost, the multi-action extension of Algorithm 1's line 10.
            self.lstd.update(action_index, target, cost)
            if self.auditor is not None:
                self.auditor.after_update(action_index, target)

    def _normalize_cost(self, cost_usd: float) -> float:
        """Scale the raw USD step cost into Boltzmann-comparable units.

        With ``cost_scale=None`` the cost is divided by its running mean,
        so Q differences are O(1) regardless of fleet size or electricity
        price; ``baseline_subtraction`` additionally centres the signal,
        so actions followed by below-average cost earn negative credit.
        """
        self._costs_seen += 1
        self._cost_running_mean += (
            cost_usd - self._cost_running_mean
        ) / self._costs_seen
        if self.config.cost_scale is not None:
            scale = self.config.cost_scale
        else:
            scale = max(abs(self._cost_running_mean), 1e-12)
        cost = cost_usd
        if self.config.baseline_subtraction:
            cost -= self._cost_running_mean
        normalized = cost / scale
        self._last_normalized_cost = normalized
        return normalized

    def _greedy_candidate_index(
        self, action_indices: np.ndarray
    ) -> Optional[int]:
        """``phi_{pi_t(s_{t+1})}``: the current policy's pick in the new state."""
        if action_indices.shape[0] == 0:
            return None
        q_batch = self.lstd.q_values(action_indices)
        # np.argmin keeps the first minimiser, matching the historical
        # strict `<` scan.
        return int(action_indices[int(np.argmin(q_batch))])

    # ------------------------------------------------------------------
    # Action selection ("when")
    # ------------------------------------------------------------------
    def _select_from_plan(
        self, plan: CandidatePlan
    ) -> Tuple[List[tuple], List[tuple]]:
        """Pick one action per candidate VM straight off the plan arrays.

        Returns ``(moves, noops)``, each a list of
        ``(vm_id, dest_pm_id, raw_q, flat_index)`` tuples — ``raw_q`` is
        the margin-free ``Q(s, a)`` of the selected action, handed back
        so ``decide()``'s trace branch can reuse it instead of
        recomputing the same dot products, and ``flat_index`` the
        already-fused basis coordinate for the learner.  Moves are
        capped at the migration budget with relief moves first.
        """
        # One batched Q evaluation for the whole candidate set; per-VM
        # slices below are views into this cache-backed array.
        flat_q = self.lstd.q_values(plan.action_indices)
        offsets = plan.offsets
        dest_pm = plan.dest_pm
        picks: List[tuple] = []
        for r in range(plan.num_rows):
            start = int(offsets[r])
            end = int(offsets[r + 1])
            raw_q = flat_q[start:end]
            dests = dest_pm[start:end]
            source = int(plan.sources[r])
            mandatory = bool(plan.mandatory[r])
            # Soft switching cost: consolidation moves must beat the
            # stay-put Q by the hysteresis margin.  At high
            # temperature the margin is negligible (exploration is
            # unharmed); once the temperature decays it suppresses
            # ping-pong between equally good homes.  Relief moves off
            # overloaded hosts are exempt.
            if mandatory:
                q_values = raw_q.copy()
            else:
                q_values = raw_q + self.config.migration_margin * (
                    dests != source
                )
            _, index = self.policy.select(dests, q_values)
            picks.append(
                (
                    float(q_values[index]),
                    int(plan.vm_ids[r]),
                    int(dests[index]),
                    float(raw_q[index]),
                    int(plan.action_indices[start + index]),
                    mandatory,
                    source,
                )
            )
        max_moves = max(
            1, int(self.config.max_migration_fraction * self.action_space.num_vms)
        )
        # Keep every no-op (they cost nothing to execute) but cap real
        # moves at the 2 % budget.  Within the budget, moves that relieve
        # an overloaded host come first (they are why "when to migrate"
        # matters); remaining slots go to the best-Q consolidation moves.
        noops = [
            (vm_id, dest, raw, flat)
            for _, vm_id, dest, raw, flat, _, source in picks
            if dest == source
        ]
        ranked = sorted(
            (
                (not mandatory, q, vm_id, dest, raw, flat)
                for q, vm_id, dest, raw, flat, mandatory, source in picks
                if dest != source
            ),
            key=lambda entry: (entry[0], entry[1]),
        )
        moves = [
            (vm_id, dest, raw, flat)
            for _, _, vm_id, dest, raw, flat in ranked[:max_moves]
        ]
        return moves, noops

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def q_table_nonzeros(self) -> int:
        """Current Q-table size (Figure 7 quantity)."""
        return self.lstd.q_table_nonzeros

    @property
    def temperature(self) -> float:
        """Current Boltzmann temperature."""
        return self.policy.temperature

    def preferred_hosts(self, vm_id: int, top_k: int = 3):
        """The VM's learned host preferences: ``[(pm_id, Q), ...]``.

        Lower Q = cheaper expected future cost; hosts the agent has never
        evaluated for this VM carry Q = 0.  A read-only window into what
        the Q-table has learned, for debugging and the inspection
        example.
        """
        if not 0 <= vm_id < self.action_space.num_vms:
            raise ConfigurationError(
                f"vm_id {vm_id} out of range "
                f"[0, {self.action_space.num_vms})"
            )
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        actions = list(self.action_space.actions_for_vm(vm_id))
        q_batch = self.lstd.q_values(
            [self.basis.index_of(action) for action in actions]
        )
        scored = [
            (action.dest_pm_id, float(q))
            for action, q in zip(actions, q_batch)
        ]
        scored.sort(key=lambda pair: pair[1])
        return scored[:top_k]
