"""Sparse one-hot basis of Megh's projection space (Theorem 1).

Megh projects the combinatorial state-action space onto ``X``, spanned by
``d = N x M`` basis vectors ``phi_jk`` — one per migration action (VM j to
PM k), with a single 1 at index ``j * M + k``.  Because every basis vector
is one-hot, all of Megh's linear algebra reduces to index arithmetic: the
approximated cost-to-go is ``V(s) = theta^T phi_pi(s) = theta[index]``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.mdp.action import ActionSpace, MigrationAction


class SparseBasis:
    """The family ``{phi_jk}`` as index arithmetic over an action space."""

    def __init__(self, action_space: ActionSpace) -> None:
        self.action_space = action_space

    @property
    def dimension(self) -> int:
        return self.action_space.dimension

    def index_of(self, action: MigrationAction) -> int:
        """Position of the single non-zero entry of ``phi_action``."""
        return self.action_space.index(action)

    def vector(self, action: MigrationAction) -> Dict[int, float]:
        """``phi_action`` as a sparse one-hot dict."""
        return {self.index_of(action): 1.0}

    def combination(
        self, action: MigrationAction, next_action: MigrationAction, gamma: float
    ) -> Dict[int, float]:
        """``phi_a - gamma * phi_a'`` — the right factor of Eq. (10).

        When both actions share an index the entries merge (this happens
        when the policy would repeat the same action).
        """
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        a = self.index_of(action)
        b = self.index_of(next_action)
        if a == b:
            value = 1.0 - gamma
            # 1 - gamma is exactly 0.0 only for gamma == 1.0, which the
            # guard above rejects; the check is an algebraic sentinel.
            return {a: value} if value != 0.0 else {}  # meghlint: ignore[MEGH003] -- exact algebraic zero, gamma < 1 guaranteed
        if gamma == 0.0:  # meghlint: ignore[MEGH003] -- exact config sentinel: gamma=0 stores a strictly sparser vector
            return {a: 1.0}
        return {a: 1.0, b: -gamma}


class VmSlotPool:
    """Free-list of VM slots mapping churning VM uids onto a fixed basis.

    The projection space is sized once (``d = capacity x M``); VMs that
    arrive and depart reuse slots instead of growing ``d`` with the
    cumulative population.  Allocation is deterministic — always the
    lowest free slot id — so a churn schedule maps to the same slot
    assignment on every run and across checkpoint/resume.

    A *uid* is the service-level VM identity (unique over the whole run);
    a *slot* is the basis/array index in ``[0, capacity)``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._free: List[int] = list(range(capacity))
        heapq.heapify(self._free)
        self._slot_of: Dict[int, int] = {}
        self._uid_of: Dict[int, int] = {}

    @classmethod
    def restore(
        cls, capacity: int, slot_of: Mapping[int, int]
    ) -> "VmSlotPool":
        """Rebuild a pool from its ``uid -> slot`` map (checkpoint)."""
        pool = cls(capacity)
        used = set()
        for uid, slot in slot_of.items():
            uid, slot = int(uid), int(slot)
            if not 0 <= slot < capacity:
                raise ConfigurationError(
                    f"slot {slot} out of range [0, {capacity})"
                )
            if slot in used:
                raise ConfigurationError(f"slot {slot} assigned twice")
            used.add(slot)
            pool._slot_of[uid] = slot
            pool._uid_of[slot] = uid
        pool._free = [slot for slot in range(capacity) if slot not in used]
        heapq.heapify(pool._free)
        return pool

    @property
    def num_live(self) -> int:
        return len(self._slot_of)

    @property
    def num_free(self) -> int:
        return len(self._free)

    def allocate(self, uid: int) -> Optional[int]:
        """Bind ``uid`` to the lowest free slot; ``None`` when full."""
        if uid in self._slot_of:
            raise ConfigurationError(f"uid {uid} is already allocated")
        if not self._free:
            return None
        slot = heapq.heappop(self._free)
        self._slot_of[uid] = slot
        self._uid_of[slot] = uid
        return slot

    def release(self, uid: int) -> int:
        """Return ``uid``'s slot to the free list; returns the slot."""
        slot = self._slot_of.pop(uid, None)
        if slot is None:
            raise ConfigurationError(f"uid {uid} is not allocated")
        del self._uid_of[slot]
        heapq.heappush(self._free, slot)
        return slot

    def slot_of(self, uid: int) -> Optional[int]:
        return self._slot_of.get(uid)

    def uid_of(self, slot: int) -> Optional[int]:
        return self._uid_of.get(slot)

    def live_uids(self) -> List[int]:
        """Live uids in ascending order (deterministic iteration)."""
        return sorted(self._slot_of)

    def slot_map(self) -> Dict[int, int]:
        """Copy of the ``uid -> slot`` map (checkpoint serialization)."""
        return dict(self._slot_of)
