"""Sparse one-hot basis of Megh's projection space (Theorem 1).

Megh projects the combinatorial state-action space onto ``X``, spanned by
``d = N x M`` basis vectors ``phi_jk`` — one per migration action (VM j to
PM k), with a single 1 at index ``j * M + k``.  Because every basis vector
is one-hot, all of Megh's linear algebra reduces to index arithmetic: the
approximated cost-to-go is ``V(s) = theta^T phi_pi(s) = theta[index]``.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.mdp.action import ActionSpace, MigrationAction


class SparseBasis:
    """The family ``{phi_jk}`` as index arithmetic over an action space."""

    def __init__(self, action_space: ActionSpace) -> None:
        self.action_space = action_space

    @property
    def dimension(self) -> int:
        return self.action_space.dimension

    def index_of(self, action: MigrationAction) -> int:
        """Position of the single non-zero entry of ``phi_action``."""
        return self.action_space.index(action)

    def vector(self, action: MigrationAction) -> Dict[int, float]:
        """``phi_action`` as a sparse one-hot dict."""
        return {self.index_of(action): 1.0}

    def combination(
        self, action: MigrationAction, next_action: MigrationAction, gamma: float
    ) -> Dict[int, float]:
        """``phi_a - gamma * phi_a'`` — the right factor of Eq. (10).

        When both actions share an index the entries merge (this happens
        when the policy would repeat the same action).
        """
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        a = self.index_of(action)
        b = self.index_of(next_action)
        if a == b:
            value = 1.0 - gamma
            # 1 - gamma is exactly 0.0 only for gamma == 1.0, which the
            # guard above rejects; the check is an algebraic sentinel.
            return {a: value} if value != 0.0 else {}  # meghlint: ignore[MEGH003] -- exact algebraic zero, gamma < 1 guaranteed
        if gamma == 0.0:  # meghlint: ignore[MEGH003] -- exact config sentinel: gamma=0 stores a strictly sparser vector
            return {a: 1.0}
        return {a: 1.0, b: -gamma}
