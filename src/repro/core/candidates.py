"""Array-native candidate generation over :class:`DatacenterArrays`.

Candidate generation was the last per-entity Python loop on the
``decide()`` hot path: the scalar pipeline in
:class:`~repro.core.agent.MeghScheduler` walked ``vms_on`` sets,
``vm(id).is_active`` views and per-PM ``demanded_utilization`` floats
one entity at a time — O(candidate VMs × PMs) interpreter work per
step.  :class:`CandidateIndex` produces the **same ordered candidate
lists bit-identically** as whole-fleet NumPy passes:

* **source selection** — overloaded-PM membership, the underload
  partition, and the easiest-to-empty sort run as masked ``argsort``
  passes whose stable kind reproduces the scalar path's ascending-id
  tie-breaks exactly;
* **feasibility** — RAM-fits and no-new-overload are evaluated for all
  (candidate VM × PM) pairs in one broadcast against precomputed
  headroom-budget vectors, honouring ``destination_headroom``,
  ``allow_empty_hosts`` and the most-utilized-first proposal order;
* **materialization** — the result is a :class:`CandidatePlan` of flat
  ``int64`` arrays (``dest_pm``, row ``offsets``, fused
  ``action_indices = vm_id * M + pm_id``) that feed
  :meth:`~repro.core.lstd.SparseLstd.q_values` directly, with no
  per-action ``MigrationAction`` objects on the hot path.

Bit-identity contract
---------------------
Every float comparison evaluates the *same operations on the same
operands in the same order* as the scalar oracle
(``MeghScheduler._candidate_actions`` / ``_destinations_for`` /
``_feasible_destinations``, retained exactly for this purpose):
budgets are ``(headroom * beta) * pm_mips`` — the left-to-right
association of the scalar ``headroom * self.beta * pm.mips`` — demand
sums are ``pm_demand + vm_demand_mips`` in the scalar operand order,
and every ordering pass uses a stable sort over the identical keys.
The randomized differential oracle (``tests/core/test_candidates.py``)
and the golden decision traces pin this element for element.

Scratch discipline: the K×M broadcast buffers are owned by the index
and reused across steps (reallocated only when the fleet or the
candidate cap grows), so steady-state planning does no per-step
ndarray allocation proportional to K×M.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.config import MeghConfig
from repro.mdp.action import MigrationAction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cloudsim.datacenter import Datacenter
    from repro.cloudsim.soa import DatacenterArrays

__all__ = ["CandidatePlan", "CandidateIndex"]


class CandidatePlan:
    """One step's ordered candidate lists as flat parallel arrays.

    Row ``r`` describes candidate VM ``vm_ids[r]`` (hosted on
    ``sources[r]``); its ordered action list is
    ``dest_pm[offsets[r]:offsets[r + 1]]`` with the fused one-hot
    coordinates in the same slice of ``action_indices``.  ``mandatory``
    marks rows whose source host is overloaded (relief rows: no
    hysteresis margin, and moves are prioritized by the selection cap).
    """

    __slots__ = (
        "vm_ids",
        "sources",
        "mandatory",
        "dest_pm",
        "offsets",
        "action_indices",
        "num_pms",
    )

    def __init__(
        self,
        vm_ids: np.ndarray,
        sources: np.ndarray,
        mandatory: np.ndarray,
        dest_pm: np.ndarray,
        offsets: np.ndarray,
        action_indices: np.ndarray,
        num_pms: int,
    ) -> None:
        self.vm_ids = vm_ids
        self.sources = sources
        self.mandatory = mandatory
        self.dest_pm = dest_pm
        self.offsets = offsets
        self.action_indices = action_indices
        self.num_pms = num_pms

    @property
    def num_rows(self) -> int:
        """Number of candidate VMs (rows)."""
        return int(self.vm_ids.shape[0])

    @property
    def num_actions(self) -> int:
        """Total number of candidate actions across all rows."""
        return int(self.dest_pm.shape[0])

    def to_action_lists(self) -> List[List[MigrationAction]]:
        """Materialize the per-VM ``MigrationAction`` lists.

        Cold path for the differential oracle and inspection — the hot
        path feeds ``action_indices`` to the learner directly.
        """
        lists: List[List[MigrationAction]] = []
        offsets = self.offsets
        for r in range(self.num_rows):
            vm_id = int(self.vm_ids[r])
            lists.append(
                [
                    MigrationAction(vm_id=vm_id, dest_pm_id=int(pm_id))
                    for pm_id in self.dest_pm[offsets[r] : offsets[r + 1]]
                ]
            )
        return lists


class CandidateIndex:
    """Vectorized candidate pipeline bound to one datacenter's arrays.

    Args:
        beta: host CPU overload threshold (matches the agent's).
        bandwidth_beta: optional network overload threshold.
        config: the agent's :class:`~repro.config.MeghConfig` —
            ``consolidate_underloaded``, ``underload_threshold``,
            ``max_candidate_vms``, ``candidate_destinations`` and
            ``destination_headroom`` shape the candidate set.

    The index binds lazily to ``datacenter.arrays`` on first use and
    rebinds automatically if the datacenter (or fleet size) changes;
    the static headroom-budget vectors and the K×M scratch buffers are
    computed once per binding.
    """

    def __init__(
        self,
        beta: float,
        bandwidth_beta: Optional[float],
        config: MeghConfig,
    ) -> None:
        self.beta = beta
        self.bandwidth_beta = bandwidth_beta
        self.config = config
        self._arrays: Optional["DatacenterArrays"] = None
        self._mips_budget = np.empty(0, dtype=np.float64)
        self._mips_budget_full = np.empty(0, dtype=np.float64)
        self._bw_budget = np.empty(0, dtype=np.float64)
        self._bw_budget_full = np.empty(0, dtype=np.float64)
        # K×M scratch (grown on demand, reused across steps).
        self._rows_capacity = 0
        self._feas = np.empty((0, 0), dtype=bool)
        self._aux = np.empty((0, 0), dtype=bool)
        self._tmp = np.empty((0, 0), dtype=np.float64)

    # ------------------------------------------------------------------
    # Binding and scratch management
    # ------------------------------------------------------------------
    def _bind(self, arrays: "DatacenterArrays") -> None:
        """Precompute static budget vectors for this fleet.

        ``(headroom * beta) * pm_mips`` reproduces the scalar oracle's
        left-to-right ``headroom * self.beta * pm.mips`` association;
        the full-budget fallback uses ``headroom = 1.0`` whose product
        is bitwise the plain ``beta`` budget.  PM capacities are static
        after binding, so these never need invalidation.
        """
        self._arrays = arrays
        headroom = self.config.destination_headroom
        self._mips_budget = (headroom * self.beta) * arrays.pm_mips
        self._mips_budget_full = (1.0 * self.beta) * arrays.pm_mips
        if self.bandwidth_beta is not None:
            self._bw_budget = (
                headroom * self.bandwidth_beta
            ) * arrays.pm_bandwidth_mbps
            self._bw_budget_full = (
                1.0 * self.bandwidth_beta
            ) * arrays.pm_bandwidth_mbps
        self._rows_capacity = 0

    def _scratch(self, num_rows: int, num_pms: int):
        """Reusable K×M broadcast buffers, grown geometrically."""
        if (
            num_rows > self._rows_capacity
            or self._feas.shape[1] != num_pms
        ):
            capacity = max(num_rows, 2 * self._rows_capacity, 32)
            self._rows_capacity = capacity
            self._feas = np.empty((capacity, num_pms), dtype=bool)
            self._aux = np.empty((capacity, num_pms), dtype=bool)
            self._tmp = np.empty((capacity, num_pms), dtype=np.float64)
        return (
            self._feas[:num_rows],
            self._aux[:num_rows],
            self._tmp[:num_rows],
        )

    # ------------------------------------------------------------------
    # Source selection (which VMs are candidates, in which order)
    # ------------------------------------------------------------------
    def _candidate_vm_rows(
        self,
        arrays: "DatacenterArrays",
        overloaded: np.ndarray,
        util: np.ndarray,
    ) -> np.ndarray:
        """Ordered, deduplicated candidate VM ids (the plan's rows).

        Reproduces the scalar ordering exactly: VMs on overloaded hosts
        first (hosts ascending, VM ids ascending within a host), then
        VMs on underloaded hosts with the easiest-to-empty hosts first
        (stable sort by placed-VM count — inactive VMs included, as in
        ``len(vms_on(pm))``), the ``max_candidate_vms`` cap applied
        *before* the order-preserving dedup.
        """
        host_of = arrays.host_of
        placed_active = np.flatnonzero(
            (host_of >= 0) & arrays.vm_active
        )
        hosts = host_of[placed_active]
        # Stable sort by host: groups ordered by ascending host id and,
        # within a host, by ascending VM id (placed_active is ascending).
        order = np.argsort(hosts, kind="stable")
        by_host = placed_active[order]
        host_sorted = hosts[order]
        source_vms = by_host[overloaded[host_sorted]]
        if self.config.consolidate_underloaded:
            under = (
                arrays.active_pm_mask()
                & (util > 0.0)
                & (util <= self.config.underload_threshold)
            )
            under_ids = np.flatnonzero(under)
            under_sorted = under_ids[
                np.argsort(arrays.pm_vm_count[under_ids], kind="stable")
            ]
            starts = np.searchsorted(host_sorted, under_sorted, side="left")
            ends = np.searchsorted(host_sorted, under_sorted, side="right")
            counts = ends - starts
            total = int(counts.sum()) if counts.shape[0] else 0
            if total:
                # Ragged gather: concatenate the per-host [start, end)
                # index ranges in easiest-to-empty host order.
                offsets = np.cumsum(counts)
                flat = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(offsets - counts, counts)
                    + np.repeat(starts, counts)
                )
                source_vms = np.concatenate((source_vms, by_host[flat]))
        cap = self.config.max_candidate_vms
        if cap:
            source_vms = source_vms[:cap]
        if source_vms.shape[0] == 0:
            return source_vms.astype(np.int64)
        # Order-preserving dedup (first occurrence wins, like the scalar
        # `seen` set): unique() returns first indices, re-sorted to the
        # original order.
        _, first = np.unique(source_vms, return_index=True)
        return source_vms[np.sort(first)]

    # ------------------------------------------------------------------
    # Feasibility (batched (VM × PM) broadcast)
    # ------------------------------------------------------------------
    def _feasibility(
        self,
        arrays: "DatacenterArrays",
        vm_rows: np.ndarray,
        sources: np.ndarray,
        mandatory: np.ndarray,
    ) -> tuple:
        """K×M feasibility mask plus full-budget fallback rows.

        A destination is feasible when the VM's RAM fits and the
        post-move demand stays within the headroom budget (CPU, and the
        network dimension when ``bandwidth_beta`` is set).
        Consolidation rows additionally require an occupied host;
        relief rows with *no* feasible destination fall back to the
        full beta budget (returned as per-row override vectors).
        """
        num_rows = int(vm_rows.shape[0])
        num_pms = arrays.num_pms
        feas, aux, tmp = self._scratch(num_rows, num_pms)
        ram_free = arrays.pm_ram_free_mb()
        pm_demand = arrays.pm_demand_mips()
        vm_ram = arrays.vm_ram_mb[vm_rows]
        vm_dmips = arrays.vm_demand[vm_rows] * arrays.vm_mips[vm_rows]
        np.less_equal(vm_ram[:, None], ram_free[None, :], out=feas)
        # Scalar operand order: demanded_mips(pm) + vm.demanded_mips.
        np.add(pm_demand[None, :], vm_dmips[:, None], out=tmp)
        np.less_equal(tmp, self._mips_budget[None, :], out=aux)
        np.logical_and(feas, aux, out=feas)
        pm_bw = None
        vm_bw = None
        if self.bandwidth_beta is not None:
            pm_bw = arrays.pm_bw_demand_mbps()
            vm_bw = (
                arrays.vm_bw_demand[vm_rows]
                * arrays.vm_bandwidth_mbps[vm_rows]
            )
            np.add(pm_bw[None, :], vm_bw[:, None], out=tmp)
            np.less_equal(tmp, self._bw_budget[None, :], out=aux)
            np.logical_and(feas, aux, out=feas)
        consolidation = np.flatnonzero(~mandatory)
        if consolidation.shape[0]:
            # Consolidation never wakes an empty host.
            feas[consolidation] &= arrays.active_pm_mask()[None, :]
        feas[np.arange(num_rows, dtype=np.int64), sources] = False
        # Relief rows with no destination under the safety headroom
        # retry at the full beta budget (allow_empty stays True).
        fallback: Dict[int, np.ndarray] = {}
        empty_relief = np.flatnonzero(
            mandatory & (np.count_nonzero(feas, axis=1) == 0)
        )
        for r in empty_relief.tolist():
            row = (vm_ram[r] <= ram_free) & (
                pm_demand + vm_dmips[r] <= self._mips_budget_full
            )
            if pm_bw is not None and vm_bw is not None:
                row &= pm_bw + vm_bw[r] <= self._bw_budget_full
            row[sources[r]] = False
            fallback[r] = row
        return feas, fallback

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def plan(self, datacenter: "Datacenter") -> CandidatePlan:
        """Build this step's candidate plan from the datacenter arrays.

        Evaluates the overload predicate exactly once per call (the
        scalar pipeline historically evaluated it four times per
        ``decide()``).
        """
        arrays = datacenter.arrays
        if arrays is not self._arrays:
            self._bind(arrays)
        overloaded = arrays.overloaded_pm_mask(
            self.beta, self.bandwidth_beta
        )
        util = arrays.pm_demand_utilization()
        vm_rows = self._candidate_vm_rows(arrays, overloaded, util)
        sources = arrays.host_of[vm_rows]
        mandatory = overloaded[sources]
        feas, fallback = self._feasibility(
            arrays, vm_rows, sources, mandatory
        )
        return self._materialize(
            vm_rows, sources, mandatory, feas, fallback, util, arrays.num_pms
        )

    def plan_from_lists(
        self,
        datacenter: "Datacenter",
        candidates: Sequence[Sequence[MigrationAction]],
    ) -> CandidatePlan:
        """Wrap scalar-oracle candidate lists in a plan.

        Lets ``decide()`` run its selection/learning pipeline on top of
        the retained scalar generator (``REPRO_SCALAR_CANDIDATES=1`` /
        the differential-oracle bench mode) so the two generators are
        interchangeable downstream.  Uses only the generic datacenter
        protocol (``num_pms``, ``host_of``) so the reference
        object-model backend works too, and performs **no** overload
        evaluation of its own: a row is mandatory exactly when its first
        action is a real move — the scalar generator leads every
        consolidation row with the stay-put no-op, and for the ambiguous
        single-no-op relief row the mandatory flag is behaviourally inert
        (no move to prioritize, no margin to apply).
        """
        num_pms = datacenter.num_pms
        num_rows = len(candidates)
        vm_ids = np.empty(num_rows, dtype=np.int64)
        sources = np.empty(num_rows, dtype=np.int64)
        mandatory = np.empty(num_rows, dtype=bool)
        offsets = np.zeros(num_rows + 1, dtype=np.int64)
        segments: List[np.ndarray] = []
        for r, actions in enumerate(candidates):
            vm_id = actions[0].vm_id
            vm_ids[r] = vm_id
            source = int(datacenter.host_of(vm_id))
            sources[r] = source
            mandatory[r] = actions[0].dest_pm_id != source
            segments.append(
                np.fromiter(
                    (action.dest_pm_id for action in actions),
                    dtype=np.int64,
                    count=len(actions),
                )
            )
            offsets[r + 1] = offsets[r] + len(actions)
        dest_pm = (
            np.concatenate(segments)
            if segments
            else np.empty(0, dtype=np.int64)
        )
        action_indices = (
            np.repeat(vm_ids, np.diff(offsets)) * num_pms + dest_pm
        )
        return CandidatePlan(
            vm_ids=vm_ids,
            sources=sources,
            mandatory=mandatory,
            dest_pm=dest_pm,
            offsets=offsets,
            action_indices=action_indices,
            num_pms=num_pms,
        )

    def _materialize(
        self,
        vm_rows: np.ndarray,
        sources: np.ndarray,
        mandatory: np.ndarray,
        feas: np.ndarray,
        fallback: Dict[int, np.ndarray],
        util: np.ndarray,
        num_pms: int,
    ) -> CandidatePlan:
        """Assemble the flat plan rows in scalar-oracle order.

        Per row: feasible destinations in ascending PM-id order, or —
        when ``candidate_destinations`` bounds the proposal — the
        most-utilized feasible hosts first via a stable sort on the
        identical ``-utilization`` key; the stay-put no-op leads the
        row unless the source is overloaded *and* destinations exist.
        """
        limit = self.config.candidate_destinations
        num_rows = int(vm_rows.shape[0])
        neg_util = -util
        segments: List[np.ndarray] = []
        lengths = np.empty(num_rows, dtype=np.int64)
        noop_flags = np.empty(num_rows, dtype=bool)
        for r in range(num_rows):
            override = fallback.get(r)
            row = feas[r] if override is None else override
            dests = np.flatnonzero(row)
            if limit and dests.shape[0] > limit:
                dests = dests[
                    np.argsort(neg_util[dests], kind="stable")[:limit]
                ]
            noop = (not mandatory[r]) or dests.shape[0] == 0
            noop_flags[r] = noop
            lengths[r] = dests.shape[0] + (1 if noop else 0)
            segments.append(dests)
        offsets = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        dest_pm = np.empty(int(offsets[-1]), dtype=np.int64)
        for r in range(num_rows):
            position = int(offsets[r])
            if noop_flags[r]:
                dest_pm[position] = sources[r]
                position += 1
            segment = segments[r]
            dest_pm[position : position + segment.shape[0]] = segment
        action_indices = np.repeat(vm_rows, lengths) * num_pms + dest_pm
        return CandidatePlan(
            vm_ids=vm_rows,
            sources=sources,
            mandatory=mandatory,
            dest_pm=dest_pm,
            offsets=offsets,
            action_indices=action_indices,
            num_pms=num_pms,
        )
