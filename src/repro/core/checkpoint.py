"""Megh agent checkpointing.

Megh is "oblivious to the training phase" — but a fleet operator still
wants to carry what an agent learned across restarts.  A checkpoint
captures the complete learner state: the sparse inverse operator ``B``
(as COO triplets — the paper's own storage format), the reward-weighted
sum ``z``, the exploration temperature, and the normalization statistics.

Checkpoints are NPZ files; loading restores an agent that continues
exactly where the saved one stopped (verified by tests).
"""

from __future__ import annotations

import os

import numpy as np

from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError

#: Format marker for forward compatibility.
CHECKPOINT_VERSION = 1


def save_agent(agent: MeghScheduler, path: str) -> None:
    """Write the agent's full learner state to an NPZ checkpoint."""
    rows, cols, values = [], [], []
    for i, j, value in agent.lstd.B.items():
        rows.append(i)
        cols.append(j)
        values.append(value)
    z_indices = list(agent.lstd.z.keys())
    z_values = [agent.lstd.z[i] for i in z_indices]
    config = agent.config
    np.savez_compressed(
        path,
        version=np.array(CHECKPOINT_VERSION),
        num_vms=np.array(agent.action_space.num_vms),
        num_pms=np.array(agent.action_space.num_pms),
        beta=np.array(agent.beta),
        b_rows=np.array(rows, dtype=np.int64),
        b_cols=np.array(cols, dtype=np.int64),
        b_values=np.array(values, dtype=np.float64),
        z_indices=np.array(z_indices, dtype=np.int64),
        z_values=np.array(z_values, dtype=np.float64),
        temperature=np.array(agent.policy.temperature),
        steps_seen=np.array(agent._steps_seen),
        cost_running_mean=np.array(agent._cost_running_mean),
        costs_seen=np.array(agent._costs_seen),
        gamma=np.array(config.gamma),
        config_repr=np.array(repr(config)),
    )


def load_agent(
    path: str,
    config: MeghConfig | None = None,
    seed: int = 0,
) -> MeghScheduler:
    """Restore an agent from a checkpoint written by :func:`save_agent`.

    ``config`` lets the caller adjust non-learned hyper-parameters (e.g.
    the migration cap); learned state and the exploration temperature
    come from the checkpoint.  The checkpoint's gamma must match the
    config's — mixing discount factors would corrupt ``B``.
    """
    if not os.path.exists(path):
        raise ConfigurationError(f"no such checkpoint: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as exc:
        raise ConfigurationError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    required = {"version", "num_vms", "num_pms", "b_rows", "z_indices"}
    if not required <= set(data.files):
        raise ConfigurationError(f"{path} is not a Megh checkpoint")
    version = int(data["version"])
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint version {version} not supported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    effective = config or MeghConfig()
    saved_gamma = float(data["gamma"])
    if abs(saved_gamma - effective.gamma) > 1e-12:
        raise ConfigurationError(
            f"checkpoint was trained with gamma={saved_gamma}, "
            f"config has gamma={effective.gamma}"
        )
    agent = MeghScheduler(
        num_vms=int(data["num_vms"]),
        num_pms=int(data["num_pms"]),
        config=effective,
        beta=float(data["beta"]),
        seed=seed,
    )
    # Learned state: rebuild B from triplets, z from its sparse pairs.
    lstd = agent.lstd
    lstd.B = type(lstd.B)(lstd.dimension)
    for i, j, value in zip(data["b_rows"], data["b_cols"], data["b_values"]):
        lstd.B.set(int(i), int(j), float(value))
    lstd.z = {
        int(i): float(v)
        for i, v in zip(data["z_indices"], data["z_values"])
    }
    agent.policy.temperature = float(data["temperature"])
    agent._steps_seen = int(data["steps_seen"])
    agent._cost_running_mean = float(data["cost_running_mean"])
    agent._costs_seen = int(data["costs_seen"])
    return agent
