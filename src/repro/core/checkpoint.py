"""Megh agent and service checkpointing.

Megh is "oblivious to the training phase" — but a fleet operator still
wants to carry what an agent learned across restarts.  A checkpoint
captures the complete learner state: the sparse inverse operator ``B``
(as COO triplets — the paper's own storage format), the reward-weighted
sum ``z``, the exploration temperature, and the normalization statistics.

Version 2 additionally captures everything needed to *continue* a run
bit-identically: the exploration RNG states (policy and agent), the
previous decision's action indices, the forward-operator tracker (for
slot retirement in service mode), and — for
:func:`save_service`/:func:`load_service` — the service loop's full
runtime state (churn cursor, live VMs, in-flight migrations, SLA
windows, per-step metrics, cost totals).

Version-1 checkpoints still load, with a documented caveat: they carry
no RNG state, so the restored agent starts with **fresh RNGs** seeded by
the ``seed`` argument.  Continued runs are reproducible (the same seed
gives the same continuation) but will not bitwise-match the original
uninterrupted trajectory; a :class:`UserWarning` says so at load time.

Checkpoints are NPZ files; loading restores an agent that continues
exactly where the saved one stopped (verified by tests).
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError

#: Format marker.  Version 2 adds RNG states, the operator tracker and
#: the optional service-state payload; version 1 is still readable.
CHECKPOINT_VERSION = 2

#: NPZ keys every Megh checkpoint (either version) must carry.
_REQUIRED_KEYS = {"version", "num_vms", "num_pms", "b_rows", "z_indices"}


def _rng_state_json(rng: np.random.Generator) -> str:
    """A Generator's full bit-generator state as canonical JSON."""
    return json.dumps(rng.bit_generator.state, sort_keys=True)


def _set_rng_state(rng: np.random.Generator, state_json: str) -> None:
    rng.bit_generator.state = json.loads(state_json)


def _agent_payload(agent: MeghScheduler) -> Dict[str, np.ndarray]:
    """The agent's full state as NPZ-ready arrays (version 2 layout)."""
    # Force a full flush of any staged rank-1 updates so the serialized
    # COO triplets are the settled matrix and the checkpoint format (and
    # its byte-equality contract) is independent of REPRO_KERNEL.
    agent.lstd.B.flush_pending()
    rows, cols, values = [], [], []
    for i, j, value in agent.lstd.B.items():
        rows.append(i)
        cols.append(j)
        values.append(value)
    z_indices = list(agent.lstd.z.keys())
    z_values = [agent.lstd.z[i] for i in z_indices]
    config = agent.config
    last_normalized = agent._last_normalized_cost
    payload: Dict[str, np.ndarray] = {
        "version": np.array(CHECKPOINT_VERSION),
        "num_vms": np.array(agent.action_space.num_vms),
        "num_pms": np.array(agent.action_space.num_pms),
        "beta": np.array(agent.beta),
        "b_rows": np.array(rows, dtype=np.int64),
        "b_cols": np.array(cols, dtype=np.int64),
        "b_values": np.array(values, dtype=np.float64),
        "z_indices": np.array(z_indices, dtype=np.int64),
        "z_values": np.array(z_values, dtype=np.float64),
        "temperature": np.array(agent.policy.temperature),
        "steps_seen": np.array(agent._steps_seen),
        "cost_running_mean": np.array(agent._cost_running_mean),
        "costs_seen": np.array(agent._costs_seen),
        "gamma": np.array(config.gamma),
        "config_repr": np.array(repr(config)),
        # ---- version-2 fields ----
        "agent_rng_state": np.array(_rng_state_json(agent._rng)),
        "prev_action_indices": np.array(
            agent._previous_action_indices, dtype=np.int64
        ),
        "has_last_normalized_cost": np.array(last_normalized is not None),
        "last_normalized_cost": np.array(
            0.0 if last_normalized is None else float(last_normalized)
        ),
        "dynamic_slots": np.array(bool(agent.dynamic_slots)),
        "updates_applied": np.array(agent.lstd.updates_applied),
        "updates_skipped": np.array(agent.lstd.updates_skipped),
        "retirements_applied": np.array(agent.lstd.retirements_applied),
        "retirements_skipped": np.array(agent.lstd.retirements_skipped),
        "qtable_steps": np.array(
            [step for step, _ in agent.qtable.samples], dtype=np.int64
        ),
        "qtable_nnz": np.array(
            [nnz for _, nnz in agent.qtable.samples], dtype=np.int64
        ),
    }
    policy_rng = getattr(agent.policy, "_rng", None)
    if policy_rng is not None:
        payload["policy_rng_state"] = np.array(_rng_state_json(policy_rng))
    tracking = agent.lstd.operator_tracking_enabled
    payload["operator_tracking"] = np.array(bool(tracking))
    if tracking:
        entries = agent.lstd.operator_entries()
        payload["op_rows"] = np.array(
            [i for i, _, _ in entries], dtype=np.int64
        )
        payload["op_cols"] = np.array(
            [j for _, j, _ in entries], dtype=np.int64
        )
        payload["op_values"] = np.array(
            [v for _, _, v in entries], dtype=np.float64
        )
    return payload


def save_agent(agent: MeghScheduler, path: str) -> None:
    """Write the agent's full learner state to an NPZ checkpoint."""
    np.savez_compressed(path, **_agent_payload(agent))


def _load_npz(path: str) -> Any:
    if not os.path.exists(path):
        raise ConfigurationError(f"no such checkpoint: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as exc:
        raise ConfigurationError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    if not _REQUIRED_KEYS <= set(data.files):
        raise ConfigurationError(f"{path} is not a Megh checkpoint")
    return data


def _restore_agent(
    data: Any,
    path: str,
    config: MeghConfig | None,
    seed: int,
    contracts=None,
) -> MeghScheduler:
    version = int(data["version"])
    if version not in (1, CHECKPOINT_VERSION):
        raise ConfigurationError(
            f"checkpoint version {version} not supported "
            f"(expected 1 or {CHECKPOINT_VERSION})"
        )
    effective = config or MeghConfig()
    saved_gamma = float(data["gamma"])
    if abs(saved_gamma - effective.gamma) > 1e-12:
        raise ConfigurationError(
            f"checkpoint was trained with gamma={saved_gamma}, "
            f"config has gamma={effective.gamma}"
        )
    dynamic_slots = version >= 2 and bool(data["dynamic_slots"])
    agent = MeghScheduler(
        num_vms=int(data["num_vms"]),
        num_pms=int(data["num_pms"]),
        config=effective,
        beta=float(data["beta"]),
        seed=seed,
        contracts=contracts,
        dynamic_slots=dynamic_slots,
    )
    # Learned state: rebuild B from triplets, z from its sparse pairs.
    lstd = agent.lstd
    lstd.B = type(lstd.B)(lstd.dimension)
    for i, j, value in zip(data["b_rows"], data["b_cols"], data["b_values"]):
        lstd.B.set(int(i), int(j), float(value))
    lstd.z = {
        int(i): float(v)
        for i, v in zip(data["z_indices"], data["z_values"])
    }
    agent.policy.temperature = float(data["temperature"])
    agent._steps_seen = int(data["steps_seen"])
    agent._cost_running_mean = float(data["cost_running_mean"])
    agent._costs_seen = int(data["costs_seen"])
    if version == 1:
        warnings.warn(
            f"{path} is a version-1 checkpoint with no exploration RNG "
            f"state; the restored agent starts with fresh RNGs seeded "
            f"by seed={seed}.  Continued runs are reproducible but will "
            f"not bitwise-match the original uninterrupted trajectory.",
            UserWarning,
            stacklevel=3,
        )
        return agent
    # ---- version-2 state: RNGs, decision context, operator tracker ----
    _set_rng_state(agent._rng, str(data["agent_rng_state"][()]))
    policy_rng = getattr(agent.policy, "_rng", None)
    if policy_rng is not None and "policy_rng_state" in data.files:
        _set_rng_state(policy_rng, str(data["policy_rng_state"][()]))
    agent._previous_action_indices = [
        int(i) for i in data["prev_action_indices"]
    ]
    if bool(data["has_last_normalized_cost"]):
        agent._last_normalized_cost = float(data["last_normalized_cost"])
    else:
        agent._last_normalized_cost = None
    agent.qtable.samples = [
        (int(step), int(nnz))
        for step, nnz in zip(data["qtable_steps"], data["qtable_nnz"])
    ]
    lstd.updates_applied = int(data["updates_applied"])
    lstd.updates_skipped = int(data["updates_skipped"])
    lstd.retirements_applied = int(data["retirements_applied"])
    lstd.retirements_skipped = int(data["retirements_skipped"])
    if bool(data["operator_tracking"]):
        if not lstd.operator_tracking_enabled:
            lstd.enable_operator_tracking()
        lstd.load_operator_entries(
            list(
                zip(
                    (int(i) for i in data["op_rows"]),
                    (int(j) for j in data["op_cols"]),
                    (float(v) for v in data["op_values"]),
                )
            )
        )
        if agent.auditor is not None:
            agent.auditor.rebuild_mirror(lstd.operator_entries())
    return agent


def load_agent(
    path: str,
    config: MeghConfig | None = None,
    seed: int = 0,
) -> MeghScheduler:
    """Restore an agent from a checkpoint written by :func:`save_agent`.

    ``config`` lets the caller adjust non-learned hyper-parameters (e.g.
    the migration cap); learned state and the exploration temperature
    come from the checkpoint.  The checkpoint's gamma must match the
    config's — mixing discount factors would corrupt ``B``.

    Version-2 checkpoints restore the exploration RNG states, so the
    continuation is bitwise the uninterrupted trajectory.  Version-1
    checkpoints lack RNG state; loading one warns and seeds fresh RNGs
    from ``seed`` (reproducible, but a different trajectory).
    """
    return _restore_agent(_load_npz(path), path, config, seed)


# ----------------------------------------------------------------------
# Service checkpoints: agent + service-loop runtime in one NPZ
# ----------------------------------------------------------------------


def save_service(
    agent: MeghScheduler,
    path: str,
    service_state: Dict[str, Any],
    service_arrays: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Write a combined agent + service-runtime checkpoint.

    ``service_state`` is the JSON-safe dict from
    :meth:`repro.service.loop.ServiceSimulation.snapshot`;
    ``service_arrays`` holds its exact-precision companions (the monitor
    rings).  The agent payload is always version 2 — resuming requires
    the RNG states.
    """
    if not hasattr(agent, "lstd"):
        raise ConfigurationError(
            "service checkpoints require a learner-bearing scheduler"
        )
    payload = _agent_payload(agent)
    payload["service_state"] = np.array(
        json.dumps(service_state), dtype=np.str_
    )
    for key, array in (service_arrays or {}).items():
        if key in payload:
            raise ConfigurationError(
                f"service array key {key!r} collides with the agent "
                f"payload"
            )
        payload[key] = np.asarray(array)
    np.savez_compressed(path, **payload)


def load_service(
    path: str,
    config: MeghConfig | None = None,
    seed: int = 0,
    service=None,
    contracts=None,
) -> Tuple[Any, MeghScheduler]:
    """Restore ``(service, agent)`` from a :func:`save_service` NPZ.

    The service is rebuilt from the registry spec stored in the
    checkpoint (builder name + params + seed) unless a freshly-built
    ``service`` is supplied; either way it is armed to continue from the
    stored step — call ``service.run(agent, ...)`` to finish the run.
    """
    data = _load_npz(path)
    if "service_state" not in data.files:
        raise ConfigurationError(
            f"{path} is an agent-only checkpoint (no service state)"
        )
    if int(data["version"]) < 2:
        raise ConfigurationError(
            "service checkpoints require the version-2 format"
        )
    state = json.loads(str(data["service_state"][()]))
    agent = _restore_agent(data, path, config, seed, contracts=contracts)
    if service is None:
        spec = state.get("spec")
        if not spec:
            raise ConfigurationError(
                "checkpoint carries no registry spec; pass an "
                "equivalently-built service= explicitly"
            )
        from repro.engine.registry import resolve_builder

        builder = resolve_builder(spec["builder"])
        service = builder(seed=spec["seed"], **spec.get("params", {}))
    rings = {
        key: data[key]
        for key in data.files
        if key.startswith("service_") and key != "service_state"
    }
    service._install_resume(state, rings)
    return service, agent
