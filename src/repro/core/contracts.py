"""Runtime numerical contracts for the LSPI core.

The static pass (:mod:`repro.analysis`) keeps determinism hazards out of
the source; this module is its runtime counterpart, extending the
:mod:`repro.cloudsim.validation` invariant-oracle pattern to the learner
itself.  The central check is a **Sherman–Morrison drift audit**: the
incremental inverse ``B`` maintained by
:class:`~repro.core.lstd.SparseLstd` is periodically compared against a
fresh ``np.linalg.solve`` of the mirrored operator
``T = delta I + sum_t u_t v_t^T``.  Because rank-1 updates compound any
rounding error, silent divergence here corrupts every Q-value the agent
ranks — exactly the approximation-drift failure mode the paper's
convergence claim (Theorem 2) assumes away.

Contracts are cheap to keep on in tests and easy to switch off in
benchmarks: the harness reads :func:`contracts_enabled` (environment
variable ``REPRO_CONTRACTS``), the agent takes an explicit
:class:`ContractConfig`, and fleets whose ``d = N x M`` exceeds
``max_audit_dimension`` automatically skip the dense mirror (finiteness
and shape checks still run).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, ReproError

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def contracts_enabled(default: bool = False) -> bool:
    """Whether runtime contracts are globally enabled.

    Controlled by the ``REPRO_CONTRACTS`` environment variable; the
    test suite turns it on (see ``tests/conftest.py``), benchmarks
    leave it off so timings stay clean.
    """
    raw = os.environ.get("REPRO_CONTRACTS")
    if raw is None:
        return default
    return raw.strip().lower() in _TRUE_VALUES


class NumericalContractError(ReproError):
    """A runtime numerical contract does not hold."""

    def __init__(self, violations: List[str]) -> None:
        self.violations = violations
        super().__init__(
            "numerical contracts violated:\n  " + "\n  ".join(violations)
        )


@dataclass(frozen=True)
class ContractConfig:
    """Knobs of the runtime contract layer.

    Attributes:
        audit_every: run the drift audit every this many LSTD updates.
        tolerance: max allowed ``|B_incremental - B_reference|`` entry.
        max_audit_dimension: above this ``d`` the dense mirror is
            skipped (memory/solve cost grows as ``d^2``/``d^3``);
            finiteness and shape checks still run.
        raise_on_violation: raise :class:`NumericalContractError`
            (True, the test default) or record violations only.
    """

    audit_every: int = 200
    tolerance: float = 1e-6
    max_audit_dimension: int = 640
    raise_on_violation: bool = True

    def __post_init__(self) -> None:
        if self.audit_every < 1:
            raise ConfigurationError("audit_every must be >= 1")
        if self.tolerance <= 0:
            raise ConfigurationError("tolerance must be > 0")
        if self.max_audit_dimension < 1:
            raise ConfigurationError("max_audit_dimension must be >= 1")


def require_finite(name: str, value: float) -> float:
    """Raise if ``value`` is NaN/inf; returns it otherwise."""
    if not math.isfinite(value):
        raise NumericalContractError(
            [f"{name} is not finite: {value!r}"]
        )
    return value


class ShermanMorrisonAuditor:
    """Audits an LSTD learner's incremental inverse against a fresh solve.

    Mirrors every *applied* rank-1 update into a dense operator ``T``
    (starting from ``delta I``), so that at audit time the exact system
    the incremental ``B`` claims to invert is known.  The audit then
    solves ``T X = I`` from scratch with ``np.linalg.solve`` and
    compares entrywise.  Works with both
    :class:`~repro.core.lstd.SparseLstd` and
    :class:`~repro.core.dense.DenseLstd` (anything exposing
    ``dimension``, ``gamma``, ``delta``, ``updates_applied``, ``B`` and
    ``theta()``).

    Args:
        lstd: the learner to audit.
        config: contract knobs; defaults to :class:`ContractConfig`.
    """

    def __init__(self, lstd, config: Optional[ContractConfig] = None) -> None:
        self.lstd = lstd
        self.config = config or ContractConfig()
        self.dense_mirror_active = (
            lstd.dimension <= self.config.max_audit_dimension
        )
        if self.dense_mirror_active:
            self._mirror = np.eye(lstd.dimension) * lstd.delta
        else:
            self._mirror = None
        self._applied_seen = lstd.updates_applied
        self.updates_observed = 0
        self.audits_run = 0
        self.last_drift: Optional[float] = None
        self.violations: List[str] = []

    # ------------------------------------------------------------------
    # Update mirroring
    # ------------------------------------------------------------------
    def after_update(self, action_index: int, next_action_index: int) -> None:
        """Record one ``lstd.update(...)`` call; audit on schedule.

        Must be called once per update, immediately after it.  Skipped
        updates (denominator floor) are detected via
        ``updates_applied`` and excluded from the mirror, matching what
        the incremental ``B`` actually represents.
        """
        applied = self.lstd.updates_applied > self._applied_seen
        self._applied_seen = self.lstd.updates_applied
        if applied and self._mirror is not None:
            # T += u v^T with u = e_a, v = e_a - gamma e_a'.
            self._mirror[action_index, action_index] += 1.0
            self._mirror[action_index, next_action_index] -= self.lstd.gamma
        self.updates_observed += 1
        if self.updates_observed % self.config.audit_every == 0:
            self.audit()

    def after_retirement(self, indices) -> None:
        """Record an ``lstd.retire_actions(indices)`` call and audit now.

        Retirement rewrites whole rows and columns of ``B`` in one shot,
        so unlike routine updates the audit runs immediately — every
        retirement is validated against a fresh solve of the mirrored
        operator with the same rows/columns reset to ``delta I``.
        """
        if self._mirror is not None:
            for index in indices:
                self._mirror[index, :] = 0.0
                self._mirror[:, index] = 0.0
                self._mirror[index, index] = self.lstd.delta
        self.audit()

    def rebuild_mirror(self, entries) -> None:
        """Reseed the dense mirror from ``(row, col, value)`` triplets.

        Checkpoint resume cannot replay the update history, but the
        learner's operator tracker stores exactly ``T - delta I``; the
        mirror restored here matches what incremental replay would have
        produced up to float summation order (well inside the audit
        tolerance, and exactly for dyadic ``gamma``).  No-op when the
        dense mirror is inactive.
        """
        if self._mirror is None:
            return
        mirror = np.eye(self.lstd.dimension) * self.lstd.delta
        for i, j, value in entries:
            mirror[int(i), int(j)] += float(value)
        self._mirror = mirror
        self._applied_seen = self.lstd.updates_applied

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _dense_inverse(self) -> np.ndarray:
        matrix = self.lstd.B
        # Settle any rank-1 updates the deferred kernel still has staged
        # before cross-checking densely — the audit must see the same
        # matrix a reader would (to_dense flushes too; this makes the
        # contract explicit rather than incidental).
        flush = getattr(matrix, "flush_pending", None)
        if flush is not None:
            flush()
        to_dense = getattr(matrix, "to_dense", None)
        if to_dense is not None:
            return to_dense()
        return np.asarray(matrix, dtype=np.float64)

    def find_violations(self) -> List[str]:
        """Every broken contract right now (empty = healthy)."""
        violations: List[str] = []
        dense_b = self._dense_inverse()
        dimension = self.lstd.dimension
        if dense_b.shape != (dimension, dimension):
            violations.append(
                f"inverse operator has shape {dense_b.shape}, "
                f"expected ({dimension}, {dimension})"
            )
            return violations
        if not np.all(np.isfinite(dense_b)):
            violations.append("inverse operator B has non-finite entries")
        theta = np.asarray(self.lstd.theta(), dtype=np.float64)
        if theta.shape != (dimension,):
            violations.append(
                f"theta has shape {theta.shape}, expected ({dimension},)"
            )
        elif not np.all(np.isfinite(theta)):
            violations.append("projection vector theta has non-finite entries")
        verify_cache = getattr(self.lstd, "verify_theta_cache", None)
        if verify_cache is not None:
            stale_rows = verify_cache()
            if stale_rows:
                preview = ", ".join(str(i) for i in stale_rows[:8])
                violations.append(
                    f"theta cache is stale for {len(stale_rows)} row(s) "
                    f"[{preview}{', ...' if len(stale_rows) > 8 else ''}]: "
                    "dirty-row invalidation missed an update"
                )
        if violations:
            return violations
        if self._mirror is not None:
            reference = np.linalg.solve(
                self._mirror, np.eye(dimension)
            )
            drift = float(np.max(np.abs(dense_b - reference)))
            self.last_drift = drift
            if drift > self.config.tolerance:
                violations.append(
                    f"Sherman–Morrison drift {drift:.3e} exceeds "
                    f"tolerance {self.config.tolerance:.1e} after "
                    f"{self.lstd.updates_applied} applied updates "
                    "(incremental inverse vs fresh np.linalg solve)"
                )
        return violations

    def audit(self) -> List[str]:
        """Run all checks; raise or record depending on configuration."""
        self.audits_run += 1
        violations = self.find_violations()
        if violations:
            self.violations.extend(violations)
            if self.config.raise_on_violation:
                raise NumericalContractError(violations)
        return violations
