"""Dense reference implementation of Algorithm 1's linear algebra.

Used for correctness cross-checks and the sparse-vs-dense ablation
(Section 5.2's complexity claim): :class:`DenseLstd` maintains the same
``B``, ``z`` and ``theta`` as :class:`repro.core.lstd.SparseLstd`, but
with ``O(d^2)`` numpy operations per update.  On anything but toy
dimensions it is dramatically slower — which is the point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Matches SparseLstd: denominators below this skip the update.
DENOMINATOR_FLOOR = 1e-10


class DenseLstd:
    """Sherman-Morrison LSTD with dense numpy state.

    Mirrors :class:`repro.core.lstd.SparseLstd`'s interface exactly, so
    the two are interchangeable in tests and ablations.
    """

    def __init__(
        self, dimension: int, gamma: float, delta: float | None = None
    ) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        self.dimension = dimension
        self.gamma = gamma
        self.delta = float(dimension) if delta is None else float(delta)
        if self.delta <= 0:
            raise ConfigurationError("delta must be > 0")
        self.B = np.eye(dimension) / self.delta
        self.z = np.zeros(dimension)
        self.updates_applied = 0
        self.updates_skipped = 0

    def _check_action(self, index: int) -> None:
        if not 0 <= index < self.dimension:
            raise ConfigurationError(
                f"action index {index} out of range [0, {self.dimension})"
            )

    def update(self, action_index: int, next_action_index: int, cost: float) -> None:
        """One Algorithm-1 iteration (Eq. 11), densely."""
        self._check_action(action_index)
        self._check_action(next_action_index)
        u = np.zeros(self.dimension)
        u[action_index] = 1.0
        v = u.copy()
        v[next_action_index] -= self.gamma
        bu = self.B @ u
        vtb = v @ self.B
        denominator = 1.0 + float(v @ bu)
        if abs(denominator) < DENOMINATOR_FLOOR:
            self.updates_skipped += 1
        else:
            self.B -= np.outer(bu, vtb) / denominator
            self.updates_applied += 1
        self.z[action_index] += cost

    def q_value(self, action_index: int) -> float:
        self._check_action(action_index)
        return float(self.B[action_index] @ self.z)

    def theta(self) -> np.ndarray:
        return self.B @ self.z

    @property
    def q_table_nonzeros(self) -> int:
        """Stored entries — for a dense matrix, always ``d^2``."""
        return self.dimension**2
