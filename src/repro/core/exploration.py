"""Boltzmann exploration with decaying temperature (Algorithm 2).

Actions are weighted ``exp((-Q + Q_min) / Temp)``: the cheapest action
gets weight 1 and costlier ones exponentially less, so high temperatures
explore broadly while ``Temp -> 0`` recovers greedy selection.  The
temperature decays by ``exp(-epsilon)`` each step.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import ConfigurationError

ActionT = TypeVar("ActionT")


class BoltzmannPolicy:
    """Softmin action selection with per-step temperature decay.

    Args:
        initial_temperature: ``Temp_0`` (paper: 3).
        decay: ``epsilon``; temperature multiplies by ``exp(-epsilon)``
            at every :meth:`step`.
        min_temperature: decay floor keeping the softmax well defined.
        seed: RNG seed for sampling.
    """

    def __init__(
        self,
        initial_temperature: float = 3.0,
        decay: float = 0.01,
        min_temperature: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if initial_temperature <= 0:
            raise ConfigurationError("Temp0 must be > 0")
        if decay < 0:
            raise ConfigurationError("epsilon must be >= 0")
        if min_temperature <= 0:
            raise ConfigurationError("min temperature must be > 0")
        self.temperature = initial_temperature
        self.decay = decay
        self.min_temperature = min_temperature
        self._rng = np.random.default_rng(seed)

    def step(self) -> None:
        """Apply one temperature-decay tick (line 2 of Algorithm 2)."""
        self.temperature = max(
            self.min_temperature, self.temperature * math.exp(-self.decay)
        )

    def weights(self, q_values: Sequence[float]) -> List[float]:
        """Unnormalised Boltzmann weights (line 8 of Algorithm 2).

        Accepts any float sequence, including a NumPy array from
        :meth:`repro.core.lstd.SparseLstd.q_values`; the elementwise
        ``math.exp`` is kept deliberately (bit-identical to the
        historical scalar path — candidate lists are tiny).
        """
        if len(q_values) == 0:
            return []
        minimum = min(q_values)
        return [
            math.exp((-q + minimum) / self.temperature) for q in q_values
        ]

    def probabilities(self, q_values: Sequence[float]) -> List[float]:
        """Normalised selection probabilities."""
        weights = self.weights(q_values)
        total = sum(weights)
        if total <= 0.0:
            # All weights underflowed: fall back to uniform over the
            # minimisers, preserving greedy behaviour.
            minimum = min(q_values)
            mask = [1.0 if q == minimum else 0.0 for q in q_values]
            total = sum(mask)
            return [m / total for m in mask]
        return [w / total for w in weights]

    def select(
        self, actions: Sequence[ActionT], q_values: Sequence[float]
    ) -> Tuple[ActionT, int]:
        """Sample an action; returns ``(action, index)``.

        ``actions`` may be any indexable sequence — including a NumPy
        destination row from the vectorized candidate plan, hence the
        explicit ``len()`` emptiness checks (ndarray truthiness is
        ambiguous).  Only ``len(actions)`` and the probabilities feed
        the RNG, so list and array callers draw identical streams.
        """
        if len(actions) != len(q_values):
            raise ConfigurationError("actions and q_values lengths differ")
        if len(actions) == 0:
            raise ConfigurationError("cannot select from an empty action set")
        probabilities = self.probabilities(q_values)
        index = int(self._rng.choice(len(actions), p=probabilities))
        return actions[index], index

    def select_greedy(
        self, actions: Sequence[ActionT], q_values: Sequence[float]
    ) -> Tuple[ActionT, int]:
        """Pure exploitation — used once the temperature has decayed."""
        if len(actions) != len(q_values):
            raise ConfigurationError("actions and q_values lengths differ")
        if len(actions) == 0:
            raise ConfigurationError("cannot select from an empty action set")
        index = min(range(len(actions)), key=lambda i: q_values[i])
        return actions[index], index


class EpsilonGreedyPolicy:
    """Epsilon-greedy alternative to Boltzmann exploration (ablation).

    Interface-compatible with :class:`BoltzmannPolicy`: pick the min-Q
    action with probability ``1 - epsilon`` and a uniform random action
    otherwise; ``epsilon`` decays multiplicatively per :meth:`step`.
    The paper argues Boltzmann's cost-sensitivity beats this uniform
    exploration — the ablation bench quantifies it.
    """

    def __init__(
        self,
        epsilon: float = 0.3,
        decay: float = 0.01,
        min_epsilon: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not 0 <= epsilon <= 1:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if decay < 0:
            raise ConfigurationError("decay must be >= 0")
        if not 0 <= min_epsilon <= 1:
            raise ConfigurationError("min epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.decay = decay
        self.min_epsilon = min_epsilon
        self._rng = np.random.default_rng(seed)

    #: BoltzmannPolicy interface parity — reported as a pseudo-temperature.
    @property
    def temperature(self) -> float:
        return self.epsilon

    def step(self) -> None:
        """Decay epsilon by ``exp(-decay)``, floored at ``min_epsilon``."""
        self.epsilon = max(
            self.min_epsilon, self.epsilon * math.exp(-self.decay)
        )

    def probabilities(self, q_values: Sequence[float]) -> List[float]:
        """Selection distribution: greedy mass plus uniform exploration."""
        if len(q_values) == 0:
            return []
        count = len(q_values)
        base = self.epsilon / count
        probabilities = [base] * count
        greedy = min(range(count), key=lambda i: q_values[i])
        probabilities[greedy] += 1.0 - self.epsilon
        return probabilities

    def select(
        self, actions: Sequence[ActionT], q_values: Sequence[float]
    ) -> Tuple[ActionT, int]:
        if len(actions) != len(q_values):
            raise ConfigurationError("actions and q_values lengths differ")
        if len(actions) == 0:
            raise ConfigurationError("cannot select from an empty action set")
        if self._rng.random() < self.epsilon:
            index = int(self._rng.integers(0, len(actions)))
        else:
            index = min(range(len(actions)), key=lambda i: q_values[i])
        return actions[index], index

    def select_greedy(
        self, actions: Sequence[ActionT], q_values: Sequence[float]
    ) -> Tuple[ActionT, int]:
        if len(actions) != len(q_values):
            raise ConfigurationError("actions and q_values lengths differ")
        if len(actions) == 0:
            raise ConfigurationError("cannot select from an empty action set")
        index = min(range(len(actions)), key=lambda i: q_values[i])
        return actions[index], index
