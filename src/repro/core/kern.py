"""meghkern — deferred rank-k Sherman–Morrison flush engine (ROADMAP item 1).

The eager :meth:`repro.core.sparse.SparseMatrix.rank_one_update` pays one
Python/NumPy round-trip per *touched row* per rank-1 update — dozens of
calls per Megh learning step at paper scale — plus a full ``column(a)``
dict build to obtain the left factor.  This module removes both costs by
*deferring* the float work:

* :class:`PendingUpdates` stages up to ``window`` rank-1 outer products.
  Enqueue stores the pre-sorted right-factor arrays and marks the
  touched rows dirty in one vectorized scatter; **no float is
  scattered** and no per-row Python loop runs.
* Reads flush **exactly the rows they touch** (read-through resolution,
  wired up in ``SparseMatrix``).  A row flush replays the staged updates
  *in original submission order* from the row's watermark (the staged
  rank at its last flush), reading each update's left-factor weight from
  the row's own current state.
* A grouped flush kernel applies all of a dirty row's pending deltas in
  one pass — either the always-available pure-NumPy backend
  (:class:`NumpyKernel`) or a small C kernel compiled on demand with the
  system compiler and loaded through :mod:`ctypes` (:class:`CKernel`).

Bit-identity argument (the whole point — golden decision traces and the
ShermanMorrisonAuditor must not move by one ulp):

* Megh's left factor is a column of ``B`` itself, so the weight a rank-1
  update applies to row ``i`` is ``B[i, a]`` — *an entry of row i*.  A
  per-row replay that reads the weight after applying all earlier staged
  updates (and before this one) reproduces the eager value exactly; no
  column values are needed at enqueue time.
* The dirty-row marking is a *superset* of the true touched rows (the
  stored support of the pivot column plus every staged update's row set
  for updates that could fill it).  Because supersets only ever add rows
  whose true weight is zero, replaying **every** staged update against a
  row is safe: an update that never touched the row reads weight 0 and
  skips, exactly as the eager path skips entries absent from the column
  dict.  No per-row pending-id lists are needed.
* Within one update the scattered columns are unique, so per-entry adds,
  epsilon prunes, and dead-insert drops are independent; only the
  per-row *submission order* of updates matters, and the replay
  preserves it.  Flushing row ``i`` now or later yields the same floats.
* The C backend performs the identical double-precision operations
  (``d = scale*w`` then ``d*v`` per entry) and is compiled with
  ``-ffp-contract=off -fno-fast-math`` so no fused multiply-add can
  change a rounding.

Backend selection: ``REPRO_KERNEL=auto`` (default; C when a compiler is
available, NumPy otherwise), ``c`` (require the compiled kernel),
``numpy`` (deferred, pure NumPy), ``off`` (eager legacy path, no
deferral).  ``REPRO_KERNEL_WINDOW`` bounds the staged rank (default
128); ``REPRO_KERNEL_CACHE`` relocates the compiled-object cache.

Flush writes to the owning matrix's backing store are *representation
preserving* — the logical matrix value does not change, so they do not
bump ``SparseMatrix.mutations`` (the counter is bumped once per rank-1
at enqueue, matching the eager path bump-for-bump).  Staging-state
changes bump :attr:`PendingUpdates.mutations` instead; meghflow's
MEGH011 checks that pairing against the declared invariant table.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sparse imports us)
    from repro.core.sparse import SparseMatrix

__all__ = [
    "CKernel",
    "KernelBackend",
    "DEFAULT_WINDOW",
    "KernelUnavailableError",
    "NumpyKernel",
    "PendingUpdates",
    "make_pending",
    "resolve_mode",
]

#: Default maximum staged rank before an automatic full flush.
DEFAULT_WINDOW = 128

_VALID_MODES = ("auto", "c", "numpy", "off")


class KernelUnavailableError(ConfigurationError):
    """Raised when ``REPRO_KERNEL=c`` but no compiled kernel can be built."""


class KernelBackend(Protocol):
    """A grouped flush backend: replay rows' staged updates in order."""

    name: str

    def replay_rows(
        self,
        matrix: "SparseMatrix",
        rows: np.ndarray,
        starts: np.ndarray,
        pending: "PendingUpdates",
    ) -> Tuple[int, int]:
        """Replay staged updates ``starts[r]..`` onto each row.

        Returns ``(applied, skipped)`` (row, update) pair counts.
        """


def resolve_mode() -> str:
    """Read ``REPRO_KERNEL`` (validated; default ``auto``).

    Read per call — i.e. per matrix construction — so tests can flip the
    variable with ``monkeypatch.setenv`` without re-importing anything.
    """
    raw = os.environ.get("REPRO_KERNEL", "auto")
    mode = raw.strip().lower() or "auto"
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"REPRO_KERNEL={raw!r} invalid; expected one of {_VALID_MODES}"
        )
    return mode


def resolve_window() -> int:
    """Read ``REPRO_KERNEL_WINDOW`` (validated; default ``DEFAULT_WINDOW``)."""
    raw = os.environ.get("REPRO_KERNEL_WINDOW")
    if raw is None:
        return DEFAULT_WINDOW
    try:
        window = int(raw)
    except ValueError as error:
        raise ConfigurationError(
            f"REPRO_KERNEL_WINDOW={raw!r} is not an integer"
        ) from error
    if window < 1:
        raise ConfigurationError("REPRO_KERNEL_WINDOW must be >= 1")
    return window


# ----------------------------------------------------------------------
# The compiled backend
# ----------------------------------------------------------------------

#: The grouped flush kernel.  One call resolves a batch of dirty rows:
#: for each row, replay the staged updates from the row's watermark in
#: submission order against a working copy of the stored row (an update
#: whose left-factor weight is zero is skipped), then emit the new row
#: plus the exact added/removed column sets (computed by a sorted merge
#: against the old row) so the Python side can maintain the column index
#: without per-row set algebra.  All arithmetic is plain double
#: precision in the same association as the NumPy path:
#: ``d = scale * w; v = d * vals[t]``.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <math.h>

/* Branchless binary search: the probe result feeds a conditional move
 * instead of a branch, so the data-dependent comparisons (near 50/50 on
 * this workload) cost no mispredictions. */
static int64_t lower_bound(const int64_t *arr, int64_t n, int64_t key) {
    if (n <= 0) return 0;
    const int64_t *base = arr;
    while (n > 1) {
        int64_t half = n >> 1;
        base = (base[half - 1] < key) ? base + half : base;
        n -= half;
    }
    return (base - arr) + (base[0] < key);
}

/* Mark every update after k whose pivot equals the just-inserted column
 * as a candidate (the insert may have given it a nonzero weight). */
static void mark_pivot(const int64_t *piv_sorted, const int64_t *piv_order,
                       uint8_t *cand, int64_t n_updates, int64_t col,
                       int64_t k)
{
    int64_t q = lower_bound(piv_sorted, n_updates, col);
    while (q < n_updates && piv_sorted[q] == col) {
        if (piv_order[q] > k) cand[piv_order[q]] = 1;
        q++;
    }
}

/* Argument-block slot layout (must match CKernel._SLOT_* constants).
 * One persistent int64 array carries every scalar and buffer pointer so
 * the per-call ctypes dispatch converts two arguments instead of ~30 —
 * the hot path flushes one or two rows thousands of times per second
 * and the conversion overhead was measurable. */
enum {
    A_N_ROWS = 0,
    A_ROWS, A_DIAG_BASE,
    A_ROW_IDX_PTRS, A_ROW_VAL_PTRS, A_ROW_LENS, A_ROW_CAPS,
    A_STARTS,
    A_N_UPDATES,
    A_PIVOTS, A_SCALES, A_UPD_OFFSETS, A_COLS, A_VALS,
    A_OUT_OFFSETS, A_OUT_IDX, A_OUT_VAL,
    A_OUT_CAP,
    A_NEW_LENS,
    A_ADD_OFFSETS, A_ADD_IDX, A_REM_OFFSETS, A_REM_IDX,
    A_TOUCHED,
    A_SCRATCH_A_IDX, A_SCRATCH_A_VAL, A_SCRATCH_B_IDX, A_SCRATCH_B_VAL,
    A_SCRATCH_CAP,
    A_PIV_SORTED, A_PIV_ORDER, A_CAND,
    A_STATS,
    A_SLOTS
};

#define PTR(type, slot) ((type *)(intptr_t)a[slot])

/* Replay staged rank-1 updates onto each requested row.
 *
 * The row is replayed by ping-pong two-pointer merges: each applied
 * update merges the current row image (sorted) with its scaled segment
 * (sorted) into the other scratch buffer.  Entry-wise this performs
 * exactly the eager scatter's float operations in the same order —
 * matched column: value + coeff*seg, kept iff |.| > eps; segment-only
 * column: coeff*seg, kept iff |.| > eps — so the result is
 * bit-identical to applying the updates eagerly.
 *
 * The finished row is written straight back into the caller's row
 * arrays when they have capacity (new_lens[r] = length); otherwise it
 * goes to the out buffer at out_offsets[r] (new_lens[r] = ~length).
 * Unmaterialized rows (row_lens[r] < 0) start from the implicit
 * diagonal read off diag_base and always take the out-buffer path.
 *
 * Returns 0 on success, -1 on capacity overflow (caller sizes exactly,
 * so -1 indicates a marshaling bug, not a runtime condition). */
int64_t megh_flush_rows(const int64_t *a, double eps)
{
    int64_t n_rows = a[A_N_ROWS];
    const int64_t *rows = PTR(const int64_t, A_ROWS);
    const double  *diag_base = PTR(const double, A_DIAG_BASE);
    const int64_t *row_idx_ptrs = PTR(const int64_t, A_ROW_IDX_PTRS);
    const int64_t *row_val_ptrs = PTR(const int64_t, A_ROW_VAL_PTRS);
    const int64_t *row_lens = PTR(const int64_t, A_ROW_LENS);
    const int64_t *row_caps = PTR(const int64_t, A_ROW_CAPS);
    const int64_t *starts = PTR(const int64_t, A_STARTS);
    int64_t n_updates = a[A_N_UPDATES];
    const int64_t *pivots = PTR(const int64_t, A_PIVOTS);
    const double  *scales = PTR(const double, A_SCALES);
    const int64_t *upd_offsets = PTR(const int64_t, A_UPD_OFFSETS);
    const int64_t *cols = PTR(const int64_t, A_COLS);
    const double  *vals = PTR(const double, A_VALS);
    int64_t *out_offsets = PTR(int64_t, A_OUT_OFFSETS);
    int64_t *out_idx = PTR(int64_t, A_OUT_IDX);
    double  *out_val = PTR(double, A_OUT_VAL);
    int64_t out_cap = a[A_OUT_CAP];
    int64_t *new_lens = PTR(int64_t, A_NEW_LENS);
    int64_t *add_offsets = PTR(int64_t, A_ADD_OFFSETS);
    int64_t *add_idx = PTR(int64_t, A_ADD_IDX);
    int64_t *rem_offsets = PTR(int64_t, A_REM_OFFSETS);
    int64_t *rem_idx = PTR(int64_t, A_REM_IDX);
    uint8_t *touched = PTR(uint8_t, A_TOUCHED);
    int64_t *sa_idx = PTR(int64_t, A_SCRATCH_A_IDX);
    double  *sa_val = PTR(double, A_SCRATCH_A_VAL);
    int64_t *sb_idx = PTR(int64_t, A_SCRATCH_B_IDX);
    double  *sb_val = PTR(double, A_SCRATCH_B_VAL);
    int64_t scratch_cap = a[A_SCRATCH_CAP];
    int64_t *piv_sorted = PTR(int64_t, A_PIV_SORTED);
    int64_t *piv_order = PTR(int64_t, A_PIV_ORDER);
    uint8_t *cand = PTR(uint8_t, A_CAND);
    int64_t *stats = PTR(int64_t, A_STATS);
    int64_t out_pos = 0, add_pos = 0, rem_pos = 0;
    int64_t applied = 0, skipped = 0;
    add_offsets[0] = 0;
    rem_offsets[0] = 0;
    /* Batch calls amortize a per-row candidate bitmap: a sorted copy of
     * the window's pivots lets each row find its applicable updates by
     * one linear merge against its columns instead of one binary search
     * per (row, update).  Pair calls skip the setup — the sort would
     * cost more than the searches it saves. */
    int use_mask = (n_rows > 4 && n_updates > 0);
    if (use_mask) {
        for (int64_t k = 0; k < n_updates; k++) {
            int64_t pv = pivots[k], j = k;
            while (j > 0 && piv_sorted[j - 1] > pv) {
                piv_sorted[j] = piv_sorted[j - 1];
                piv_order[j] = piv_order[j - 1];
                j--;
            }
            piv_sorted[j] = pv;
            piv_order[j] = k;
        }
    }
    for (int64_t r = 0; r < n_rows; r++) {
        int64_t row_id = rows[r];
        int64_t len = row_lens[r];
        const int64_t *cur_idx;
        const double  *cur_val;
        const int64_t *orig_idx;
        int64_t n, orig_n;
        int which;  /* next merge destination: 0 -> scratch A, 1 -> B */
        if (len >= 0) {
            cur_idx = (const int64_t *)(intptr_t)row_idx_ptrs[r];
            cur_val = (const double *)(intptr_t)row_val_ptrs[r];
            n = len;
            orig_idx = cur_idx;
            orig_n = n;
            which = 0;
        } else {
            /* Implicit-diagonal row: materialize into scratch A.  The
             * diagonal is NOT part of "old" for the column-index diff:
             * it had no column-index entry, so if it survives it must
             * be reported as added. */
            double diagonal = diag_base[row_id];
            orig_idx = sa_idx;
            orig_n = 0;
            n = 0;
            if (diagonal != 0.0) {
                sa_idx[0] = row_id;
                sa_val[0] = diagonal;
                n = 1;
            }
            cur_idx = sa_idx;
            cur_val = sa_val;
            which = 1;
        }
        if (use_mask) {
            /* Initial candidates: updates whose pivot column is present
             * in the row right now.  Applied updates extend the bitmap
             * below when they insert a column some later pivot needs
             * (same superset argument as the NumPy backend's live
             * candidate mask). */
            memset(cand, 0, (size_t)n_updates);
            int64_t u = 0, v = 0;
            while (u < n && v < n_updates) {
                int64_t cu = cur_idx[u], pv = piv_sorted[v];
                if (cu < pv) u++;
                else if (cu > pv) v++;
                else { cand[piv_order[v]] = 1; v++; }
            }
        }
        uint8_t any = 0;
        for (int64_t k = starts[r]; k < n_updates; k++) {
            if (use_mask && !cand[k]) { skipped++; continue; }
            int64_t pos = lower_bound(cur_idx, n, pivots[k]);
            double w = (pos < n && cur_idx[pos] == pivots[k])
                ? cur_val[pos] : 0.0;
            if (w == 0.0) { skipped++; continue; }
            any = 1;
            applied++;
            double coeff = scales[k] * w;
            int64_t t = upd_offsets[k], t_end = upd_offsets[k + 1];
            if (n + (t_end - t) > scratch_cap) return -1;
            int64_t *dst_idx = which ? sb_idx : sa_idx;
            double  *dst_val = which ? sb_val : sa_val;
            int64_t p = 0, m = 0;
            while (p < n && t < t_end) {
                int64_t cj = cur_idx[p], sj = cols[t];
                if (cj < sj) {
                    dst_idx[m] = cj;
                    dst_val[m++] = cur_val[p++];
                } else if (cj > sj) {
                    double v = coeff * vals[t++];
                    if (fabs(v) > eps) {
                        dst_idx[m] = sj;
                        dst_val[m++] = v;
                        if (use_mask)
                            mark_pivot(piv_sorted, piv_order, cand,
                                       n_updates, sj, k);
                    }
                } else {
                    double v = cur_val[p++] + coeff * vals[t++];
                    if (fabs(v) > eps) { dst_idx[m] = cj; dst_val[m++] = v; }
                }
            }
            while (p < n) {
                dst_idx[m] = cur_idx[p];
                dst_val[m++] = cur_val[p++];
            }
            while (t < t_end) {
                double v = coeff * vals[t];
                if (fabs(v) > eps) {
                    dst_idx[m] = cols[t];
                    dst_val[m++] = v;
                    if (use_mask)
                        mark_pivot(piv_sorted, piv_order, cand,
                                   n_updates, cols[t], k);
                }
                t++;
            }
            cur_idx = dst_idx;
            cur_val = dst_val;
            n = m;
            which ^= 1;
        }
        touched[r] = any;
        if (!any) {
            new_lens[r] = len;
            out_offsets[r] = out_pos;
            add_offsets[r + 1] = add_pos;
            rem_offsets[r + 1] = rem_pos;
            continue;
        }
        /* Sorted merge of old stored columns vs new columns -> the exact
         * column-index delta. */
        int64_t x = 0, b = 0;
        while (x < orig_n || b < n) {
            if (x >= orig_n) { add_idx[add_pos++] = cur_idx[b++]; }
            else if (b >= n) { rem_idx[rem_pos++] = orig_idx[x++]; }
            else if (orig_idx[x] == cur_idx[b]) { x++; b++; }
            else if (orig_idx[x] < cur_idx[b]) {
                rem_idx[rem_pos++] = orig_idx[x++];
            } else { add_idx[add_pos++] = cur_idx[b++]; }
        }
        add_offsets[r + 1] = add_pos;
        rem_offsets[r + 1] = rem_pos;
        if (len >= 0 && row_caps[r] >= n) {
            /* Install in place: the caller's row arrays have room. */
            int64_t *ridx = (int64_t *)(intptr_t)row_idx_ptrs[r];
            double  *rval = (double *)(intptr_t)row_val_ptrs[r];
            memcpy(ridx, cur_idx, (size_t)n * sizeof(int64_t));
            memcpy(rval, cur_val, (size_t)n * sizeof(double));
            new_lens[r] = n;
            out_offsets[r] = out_pos;
        } else {
            if (out_pos + n > out_cap) return -1;
            memcpy(out_idx + out_pos, cur_idx, (size_t)n * sizeof(int64_t));
            memcpy(out_val + out_pos, cur_val, (size_t)n * sizeof(double));
            out_offsets[r] = out_pos;
            out_pos += n;
            new_lens[r] = ~n;
        }
    }
    stats[0] = applied;
    stats[1] = skipped;
    return 0;
}

/* One learning-step row combine: sorted-union merge of two row images
 * computing row_a - gamma * row_next, plus the two column-``piv``
 * entry lookups the Sherman-Morrison denominator needs.
 *
 * Float ops exactly match the NumPy construction in lstd.update (zeros
 * scatter, then subtract): a-only column -> val_a; shared column ->
 * val_a - gamma * val_b (one product rounding, one subtraction);
 * b-only column -> 0.0 - gamma * val_b (the literal 0.0 keeps the
 * +/-0.0 sign identical to NumPy's in-place subtract from zero).
 * Exact zeros are dropped, mirroring the ``values != 0.0`` filter the
 * staging path applies; output is sorted-unique by construction.
 *
 * Returns the output length.  Caller sizes out buffers to na + nb. */
int64_t megh_combine_rows(const int64_t *idx_a, const double *val_a,
                          int64_t na,
                          const int64_t *idx_b, const double *val_b,
                          int64_t nb,
                          double gamma, int64_t piv,
                          int64_t *out_idx, double *out_val,
                          double *entries)
{
    int64_t i = 0, j = 0, n = 0;
    while (i < na && j < nb) {
        int64_t ca = idx_a[i], cb = idx_b[j];
        if (ca < cb) {
            double v = val_a[i];
            if (v != 0.0) { out_idx[n] = ca; out_val[n] = v; n++; }
            i++;
        } else if (cb < ca) {
            double v = 0.0 - gamma * val_b[j];
            if (v != 0.0) { out_idx[n] = cb; out_val[n] = v; n++; }
            j++;
        } else {
            double v = val_a[i] - gamma * val_b[j];
            if (v != 0.0) { out_idx[n] = ca; out_val[n] = v; n++; }
            i++; j++;
        }
    }
    for (; i < na; i++) {
        double v = val_a[i];
        if (v != 0.0) { out_idx[n] = idx_a[i]; out_val[n] = v; n++; }
    }
    for (; j < nb; j++) {
        double v = 0.0 - gamma * val_b[j];
        if (v != 0.0) { out_idx[n] = idx_b[j]; out_val[n] = v; n++; }
    }
    {
        int64_t p = lower_bound(idx_a, na, piv);
        entries[0] = (p < na && idx_a[p] == piv) ? val_a[p] : 0.0;
        p = lower_bound(idx_b, nb, piv);
        entries[1] = (p < nb && idx_b[p] == piv) ? val_b[p] : 0.0;
    }
    return n;
}
"""

#: Compile flags.  ``-ffp-contract=off`` and ``-fno-fast-math`` are
#: load-bearing: a fused multiply-add would change roundings and break
#: bit-identity with the NumPy/eager path.  No ``-march=native`` for the
#: same reason (keep plain SSE2 doubles).
_CFLAGS = (
    "-O3",
    "-march=native",
    "-fPIC",
    "-shared",
    # Bit-identity with the NumPy backend requires plain IEEE doubles:
    # no FMA contraction, no fast-math value changes.  -O3/-march=native
    # are safe under these — they never alter FP semantics on their own.
    "-ffp-contract=off",
    "-fno-fast-math",
)


def _kernel_cache_dir() -> str:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-kern")


def _find_compiler() -> Optional[str]:
    for name in ("gcc", "cc", "clang"):
        for prefix in os.environ.get("PATH", "").split(os.pathsep):
            candidate = os.path.join(prefix, name)
            if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
                return candidate
    return None


def _compiled_library_path() -> str:
    """Compile (once, cached on disk by source hash) and return the .so path.

    Tries ``_CFLAGS`` first, then once more without ``-march=native`` for
    toolchains that reject it (the flag never changes FP results, only
    speed).  Raises :class:`KernelUnavailableError` when no compiler is
    available or every attempt fails; ``auto`` mode catches this and
    falls back.
    """
    digest = hashlib.sha256(
        (_C_SOURCE + " ".join(_CFLAGS)).encode("utf-8")
    ).hexdigest()[:16]
    cache_dir = _kernel_cache_dir()
    library = os.path.join(cache_dir, f"megh_kern_{digest}.so")
    if os.path.exists(library):
        return library
    compiler = _find_compiler()
    if compiler is None:
        raise KernelUnavailableError(
            "REPRO_KERNEL: no C compiler (gcc/cc/clang) on PATH"
        )
    os.makedirs(cache_dir, exist_ok=True)
    source = os.path.join(cache_dir, f"megh_kern_{digest}.c")
    staging = f"{library}.tmp.{os.getpid()}"
    with open(source, "w", encoding="utf-8") as handle:
        handle.write(_C_SOURCE)
    flag_sets = (
        _CFLAGS,
        tuple(flag for flag in _CFLAGS if flag != "-march=native"),
    )
    stderr = ""
    for flags in flag_sets:
        command = [compiler, *flags, "-o", staging, source]
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as error:
            raise KernelUnavailableError(
                f"REPRO_KERNEL: compiler invocation failed: {error}"
            ) from error
        if result.returncode == 0:
            os.replace(staging, library)  # atomic vs concurrent builders
            return library
        stderr = result.stderr
    raise KernelUnavailableError(
        "REPRO_KERNEL: compilation failed:\n" + stderr
    )


class CKernel:
    """ctypes wrapper around the compiled grouped flush kernel.

    Holds reusable scratch/output buffers (grow-on-demand) so the hot
    single-row flush allocates nothing beyond a few small arrays.
    """

    name = "c"

    def __init__(self) -> None:
        library = _compiled_library_path()
        try:
            self._lib = ctypes.CDLL(library)
        except OSError as error:
            raise KernelUnavailableError(
                f"REPRO_KERNEL: cannot load {library}: {error}"
            ) from error
        self._flush = self._lib.megh_flush_rows
        self._flush.restype = ctypes.c_int64
        self._flush.argtypes = [ctypes.c_void_p, ctypes.c_double]
        self._combine = self._lib.megh_combine_rows
        self._combine.restype = ctypes.c_int64
        self._combine.argtypes = [
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64,
            ctypes.c_double, ctypes.c_int64,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ]
        # Row-combine output buffers (grow-on-demand; see combine_rows).
        self._cmb_idx = np.empty(256, dtype=np.int64)
        self._cmb_val = np.empty(256, dtype=np.float64)
        self._cmb_sz = 256
        self._cmb_entries = np.empty(2, dtype=np.float64)
        self._cmb_idx_ptr = self._cmb_idx.ctypes.data
        self._cmb_val_ptr = self._cmb_val.ctypes.data
        self._cmb_ent_ptr = self._cmb_entries.ctypes.data
        # Argument block: one persistent int64 array carrying every
        # scalar and buffer pointer (slot layout mirrors the C enum).
        # Pointer slots are refreshed only when a buffer is (re)allocated,
        # so a hot two-row flush updates six integer slots and converts
        # two ctypes arguments instead of ~30.
        self._args = np.zeros(self._N_SLOTS, dtype=np.int64)
        self._args_ptr = self._args.ctypes.data
        self._out_idx = np.empty(256, dtype=np.int64)
        self._out_val = np.empty(256, dtype=np.float64)
        self._add_idx = np.empty(256, dtype=np.int64)
        self._rem_idx = np.empty(256, dtype=np.int64)
        self._scratch_a_idx = np.empty(256, dtype=np.int64)
        self._scratch_a_val = np.empty(256, dtype=np.float64)
        self._scratch_b_idx = np.empty(256, dtype=np.int64)
        self._scratch_b_val = np.empty(256, dtype=np.float64)
        # Plain-int capacity mirrors: the hot path compares these instead
        # of reading ndarray shapes.
        self._out_sz = 256
        self._rem_sz = 256
        self._scratch_sz = 256
        # Batch-call candidate mask scratch (sized by the staged window).
        self._piv_sorted = np.empty(256, dtype=np.int64)
        self._piv_order = np.empty(256, dtype=np.int64)
        self._cand = np.empty(256, dtype=np.uint8)  # meghlint: ignore[MEGH012] -- C ABI flag byte (uint8_t*), not numeric payload; values are 0/1 only
        self._mask_sz = 256
        self._rows_cap = 8
        self._row_idx_ptrs = np.empty(self._rows_cap, dtype=np.int64)
        self._row_val_ptrs = np.empty(self._rows_cap, dtype=np.int64)
        self._row_lens = np.empty(self._rows_cap, dtype=np.int64)
        self._row_caps = np.empty(self._rows_cap, dtype=np.int64)
        self._new_lens = np.empty(self._rows_cap, dtype=np.int64)
        self._out_offsets = np.empty(self._rows_cap + 1, dtype=np.int64)
        self._add_offsets = np.empty(self._rows_cap + 1, dtype=np.int64)
        self._rem_offsets = np.empty(self._rows_cap + 1, dtype=np.int64)
        self._touched = np.zeros(self._rows_cap, dtype=np.uint8)  # meghlint: ignore[MEGH012] -- C ABI flag byte (uint8_t*), not numeric payload; values are 0/1 only
        self._stats = np.zeros(2, dtype=np.int64)
        args = self._args
        args[self._SLOT_OUT_IDX] = self._out_idx.ctypes.data
        args[self._SLOT_OUT_VAL] = self._out_val.ctypes.data
        args[self._SLOT_ADD_IDX] = self._add_idx.ctypes.data
        args[self._SLOT_REM_IDX] = self._rem_idx.ctypes.data
        args[self._SLOT_SCRATCH_A_IDX] = self._scratch_a_idx.ctypes.data
        args[self._SLOT_SCRATCH_A_VAL] = self._scratch_a_val.ctypes.data
        args[self._SLOT_SCRATCH_B_IDX] = self._scratch_b_idx.ctypes.data
        args[self._SLOT_SCRATCH_B_VAL] = self._scratch_b_val.ctypes.data
        args[self._SLOT_ROW_IDX_PTRS] = self._row_idx_ptrs.ctypes.data
        args[self._SLOT_ROW_VAL_PTRS] = self._row_val_ptrs.ctypes.data
        args[self._SLOT_ROW_LENS] = self._row_lens.ctypes.data
        args[self._SLOT_ROW_CAPS] = self._row_caps.ctypes.data
        args[self._SLOT_NEW_LENS] = self._new_lens.ctypes.data
        args[self._SLOT_OUT_OFFSETS] = self._out_offsets.ctypes.data
        args[self._SLOT_ADD_OFFSETS] = self._add_offsets.ctypes.data
        args[self._SLOT_REM_OFFSETS] = self._rem_offsets.ctypes.data
        args[self._SLOT_TOUCHED] = self._touched.ctypes.data
        args[self._SLOT_PIV_SORTED] = self._piv_sorted.ctypes.data
        args[self._SLOT_PIV_ORDER] = self._piv_order.ctypes.data
        args[self._SLOT_CAND] = self._cand.ctypes.data
        args[self._SLOT_STATS] = self._stats.ctypes.data
        # Identity caches: pointer slots for the staged update arrays and
        # the diagonal store are refreshed only when those arrays are
        # replaced (growth in enqueue / a different matrix or pending).
        self._pend_src: Tuple[object, ...] = ()
        self._diag_src: Optional[object] = None
        self._rows_src: Optional[object] = None
        self._starts_src: Optional[object] = None

    # Slot indices — must match the C enum in _C_SOURCE.
    (
        _SLOT_N_ROWS,
        _SLOT_ROWS,
        _SLOT_DIAG_BASE,
        _SLOT_ROW_IDX_PTRS,
        _SLOT_ROW_VAL_PTRS,
        _SLOT_ROW_LENS,
        _SLOT_ROW_CAPS,
        _SLOT_STARTS,
        _SLOT_N_UPDATES,
        _SLOT_PIVOTS,
        _SLOT_SCALES,
        _SLOT_UPD_OFFSETS,
        _SLOT_COLS,
        _SLOT_VALS,
        _SLOT_OUT_OFFSETS,
        _SLOT_OUT_IDX,
        _SLOT_OUT_VAL,
        _SLOT_OUT_CAP,
        _SLOT_NEW_LENS,
        _SLOT_ADD_OFFSETS,
        _SLOT_ADD_IDX,
        _SLOT_REM_OFFSETS,
        _SLOT_REM_IDX,
        _SLOT_TOUCHED,
        _SLOT_SCRATCH_A_IDX,
        _SLOT_SCRATCH_A_VAL,
        _SLOT_SCRATCH_B_IDX,
        _SLOT_SCRATCH_B_VAL,
        _SLOT_SCRATCH_CAP,
        _SLOT_PIV_SORTED,
        _SLOT_PIV_ORDER,
        _SLOT_CAND,
        _SLOT_STATS,
        _N_SLOTS,
    ) = range(34)

    def combine_rows(
        self,
        raw_a: Tuple[int, int, int],
        raw_b: Tuple[int, int, int],
        gamma: float,
        pivot: int,
    ) -> Tuple[np.ndarray, np.ndarray, float, float]:
        """Fused learning-step combine: ``row_a - gamma * row_next``.

        Takes the two *settled* rows as raw ``(idx pointer, val pointer,
        length)`` triples (see ``SparseMatrix._row_raw``) and returns the
        sorted-unique, zero-free ``(columns, values)`` of the combination
        plus the two column-``pivot`` entries the denominator needs —
        one C call instead of ~10 small-array NumPy ops.  Bit-identical
        to the NumPy construction in ``SparseLstd.update`` (see the C
        comment).  The returned arrays are views into reusable scratch:
        valid until the next ``combine_rows`` call, which is exactly the
        staging path's copy-on-enqueue lifetime.
        """
        idx_a, val_a, na = raw_a
        idx_b, val_b, nb = raw_b
        total = na + nb
        if total > self._cmb_sz:
            size = max(total, 2 * self._cmb_sz)
            self._cmb_sz = size
            self._cmb_idx = np.empty(size, dtype=np.int64)
            self._cmb_val = np.empty(size, dtype=np.float64)
            self._cmb_idx_ptr = self._cmb_idx.ctypes.data
            self._cmb_val_ptr = self._cmb_val.ctypes.data
        n = self._combine(
            idx_a, val_a, na,
            idx_b, val_b, nb,
            gamma, pivot,
            self._cmb_idx_ptr, self._cmb_val_ptr, self._cmb_ent_ptr,
        )
        entries = self._cmb_entries
        return (
            self._cmb_idx[:n],
            self._cmb_val[:n],
            float(entries[0]),
            float(entries[1]),
        )

    def _ensure_rows(self, n_rows: int) -> None:
        if n_rows <= self._rows_cap:
            return
        cap = max(n_rows, 2 * self._rows_cap)
        self._rows_cap = cap
        self._row_idx_ptrs = np.empty(cap, dtype=np.int64)
        self._row_val_ptrs = np.empty(cap, dtype=np.int64)
        self._row_lens = np.empty(cap, dtype=np.int64)
        self._row_caps = np.empty(cap, dtype=np.int64)
        self._new_lens = np.empty(cap, dtype=np.int64)
        self._out_offsets = np.empty(cap + 1, dtype=np.int64)
        self._add_offsets = np.empty(cap + 1, dtype=np.int64)
        self._rem_offsets = np.empty(cap + 1, dtype=np.int64)
        self._touched = np.zeros(cap, dtype=np.uint8)  # meghlint: ignore[MEGH012] -- C ABI flag byte (uint8_t*), not numeric payload; values are 0/1 only
        args = self._args
        args[self._SLOT_ROW_IDX_PTRS] = self._row_idx_ptrs.ctypes.data
        args[self._SLOT_ROW_VAL_PTRS] = self._row_val_ptrs.ctypes.data
        args[self._SLOT_ROW_LENS] = self._row_lens.ctypes.data
        args[self._SLOT_ROW_CAPS] = self._row_caps.ctypes.data
        args[self._SLOT_NEW_LENS] = self._new_lens.ctypes.data
        args[self._SLOT_OUT_OFFSETS] = self._out_offsets.ctypes.data
        args[self._SLOT_ADD_OFFSETS] = self._add_offsets.ctypes.data
        args[self._SLOT_REM_OFFSETS] = self._rem_offsets.ctypes.data
        args[self._SLOT_TOUCHED] = self._touched.ctypes.data

    def _ensure_out(self, out_cap: int, rem_cap: int, scratch_cap: int) -> None:
        args = self._args
        if self._out_sz < out_cap:
            size = max(out_cap, 2 * self._out_sz)
            self._out_sz = size
            self._out_idx = np.empty(size, dtype=np.int64)
            self._out_val = np.empty(size, dtype=np.float64)
            self._add_idx = np.empty(size, dtype=np.int64)
            args[self._SLOT_OUT_IDX] = self._out_idx.ctypes.data
            args[self._SLOT_OUT_VAL] = self._out_val.ctypes.data
            args[self._SLOT_ADD_IDX] = self._add_idx.ctypes.data
        if self._rem_sz < rem_cap:
            size = max(rem_cap, 2 * self._rem_sz)
            self._rem_sz = size
            self._rem_idx = np.empty(size, dtype=np.int64)
            args[self._SLOT_REM_IDX] = self._rem_idx.ctypes.data
        if self._scratch_sz < scratch_cap:
            size = max(scratch_cap, 2 * self._scratch_sz)
            self._scratch_sz = size
            self._scratch_a_idx = np.empty(size, dtype=np.int64)
            self._scratch_a_val = np.empty(size, dtype=np.float64)
            self._scratch_b_idx = np.empty(size, dtype=np.int64)
            self._scratch_b_val = np.empty(size, dtype=np.float64)
            args[self._SLOT_SCRATCH_A_IDX] = self._scratch_a_idx.ctypes.data
            args[self._SLOT_SCRATCH_A_VAL] = self._scratch_a_val.ctypes.data
            args[self._SLOT_SCRATCH_B_IDX] = self._scratch_b_idx.ctypes.data
            args[self._SLOT_SCRATCH_B_VAL] = self._scratch_b_val.ctypes.data

    def replay_rows(
        self,
        matrix: "SparseMatrix",
        rows: np.ndarray,
        starts: np.ndarray,
        pending: "PendingUpdates",
    ) -> Tuple[int, int]:
        """Flush ``rows`` (watermarks in ``starts``) in one kernel call.

        All staging buffers are persistent and grow-on-demand: the hot
        case (one or two rows flushed by a learning step's row reads)
        allocates nothing beyond the gathered diagonal.
        """
        from repro.core.sparse import PRUNE_EPSILON, _MIN_CAPACITY, _Row

        n_rows = int(rows.shape[0])
        n_updates = pending._n
        self._ensure_rows(n_rows)
        args = self._args
        matrix_diag = matrix._diag
        matrix_rows = matrix._rows
        row_list = rows.tolist()
        upd_offsets = pending._upd_offsets
        total = int(upd_offsets[n_updates])
        # One pass: record each stored row's array pointers (the kernel
        # reads them in place — no staging copies; the pointers are the
        # values cached on ``_Row`` at allocation time) and accumulate
        # the worst-case output capacity (stored entries + implicit
        # diagonal + every scattered segment from the watermark on).
        row_idx_ptrs = self._row_idx_ptrs
        row_val_ptrs = self._row_val_ptrs
        row_lens = self._row_lens
        row_caps = self._row_caps
        if n_rows <= 4:
            # Hot path (learning-step pair flush): scalar stores beat
            # the vectorized bulk path below at this size.
            start_list = starts.tolist()
            stored_total = 0
            out_cap = 0
            scratch_cap = 1
            for r, i in enumerate(row_list):
                row = matrix_rows.get(i)
                if row is not None:
                    n = row.n
                    row_lens[r] = n
                    row_caps[r] = row.idx.shape[0]
                    row_idx_ptrs[r] = row.idx_data
                    row_val_ptrs[r] = row.val_data
                    stored_total += n
                else:
                    n = 0
                    row_lens[r] = -1
                    row_caps[r] = 0
                cap = n + (total - int(upd_offsets[start_list[r]])) + 1
                out_cap += cap
                if cap > scratch_cap:
                    scratch_cap = cap
            rem_cap = stored_total + n_rows
        else:
            # Batch path (window-full flush over many rows): build plain
            # lists then bulk-assign — per-element numpy scalar stores
            # dominate the large-batch prep otherwise.
            lens_list: List[int] = []
            caps_list: List[int] = []
            idx_ptr_list: List[int] = []
            val_ptr_list: List[int] = []
            lens_append = lens_list.append
            caps_append = caps_list.append
            idx_append = idx_ptr_list.append
            val_append = val_ptr_list.append
            rows_get = matrix_rows.get
            for i in row_list:
                row = rows_get(i)
                if row is not None:
                    lens_append(row.n)
                    caps_append(row.idx.shape[0])
                    idx_append(row.idx_data)
                    val_append(row.val_data)
                else:
                    lens_append(-1)
                    caps_append(0)
                    idx_append(0)
                    val_append(0)
            lens_arr = np.array(lens_list, dtype=np.int64)
            row_lens[:n_rows] = lens_arr
            row_caps[:n_rows] = caps_list
            row_idx_ptrs[:n_rows] = idx_ptr_list
            row_val_ptrs[:n_rows] = val_ptr_list
            stored = np.maximum(lens_arr, 0)
            caps_arr = stored + (total - upd_offsets[starts]) + 1
            out_cap = int(caps_arr.sum())
            scratch_cap = int(caps_arr.max())
            rem_cap = int(stored.sum()) + n_rows
            if n_updates > self._mask_sz:
                size = max(n_updates, 2 * self._mask_sz)
                self._mask_sz = size
                self._piv_sorted = np.empty(size, dtype=np.int64)
                self._piv_order = np.empty(size, dtype=np.int64)
                self._cand = np.empty(size, dtype=np.uint8)  # meghlint: ignore[MEGH012] -- C ABI flag byte (uint8_t*), not numeric payload; values are 0/1 only
                args[self._SLOT_PIV_SORTED] = self._piv_sorted.ctypes.data
                args[self._SLOT_PIV_ORDER] = self._piv_order.ctypes.data
                args[self._SLOT_CAND] = self._cand.ctypes.data
        if (
            out_cap > self._out_sz
            or rem_cap > self._rem_sz
            or scratch_cap > self._scratch_sz
        ):
            self._ensure_out(out_cap, rem_cap, scratch_cap)
        if matrix_diag is not self._diag_src:
            self._diag_src = matrix_diag
            args[self._SLOT_DIAG_BASE] = matrix_diag.ctypes.data
        # touched / stats need no reset: the kernel writes every slot
        # [0, n_rows) and both stat fields unconditionally.
        touched = self._touched
        stats = self._stats
        old_src = self._pend_src
        if (
            len(old_src) != 5
            or old_src[0] is not pending._pivots
            or old_src[1] is not pending._scales
            or old_src[2] is not upd_offsets
            or old_src[3] is not pending._cols_flat
            or old_src[4] is not pending._vals_flat
        ):
            self._pend_src = (
                pending._pivots,
                pending._scales,
                upd_offsets,
                pending._cols_flat,
                pending._vals_flat,
            )
            args[self._SLOT_PIVOTS] = pending._pivots.ctypes.data
            args[self._SLOT_SCALES] = pending._scales.ctypes.data
            args[self._SLOT_UPD_OFFSETS] = upd_offsets.ctypes.data
            args[self._SLOT_COLS] = pending._cols_flat.ctypes.data
            args[self._SLOT_VALS] = pending._vals_flat.ctypes.data
        args[self._SLOT_N_ROWS] = n_rows
        if rows is not self._rows_src:
            self._rows_src = rows
            args[self._SLOT_ROWS] = rows.ctypes.data
        if starts is not self._starts_src:
            self._starts_src = starts
            args[self._SLOT_STARTS] = starts.ctypes.data
        args[self._SLOT_N_UPDATES] = n_updates
        args[self._SLOT_OUT_CAP] = out_cap
        args[self._SLOT_SCRATCH_CAP] = scratch_cap
        status = self._flush(self._args_ptr, PRUNE_EPSILON)
        if status != 0:
            raise RuntimeError(
                "megh_flush_rows capacity overflow (marshaling bug)"
            )
        # Install the flushed rows and maintain the column index / nnz.
        # The common case was already installed in place by the kernel
        # (new_lens[r] >= 0); the out-buffer path (new_lens[r] = ~length)
        # covers rows whose arrays lacked capacity and rows that were
        # unmaterialized (implicit diagonal only).  These writes are
        # representation preserving (the logical matrix value is the same
        # with the pendings staged or applied), so the matrix mutation
        # counter is deliberately untouched.
        out_offsets = self._out_offsets
        new_lens = self._new_lens
        add_offsets = self._add_offsets
        rem_offsets = self._rem_offsets
        out_idx = self._out_idx
        out_val = self._out_val
        add_idx = self._add_idx
        rem_idx = self._rem_idx
        matrix_cols = matrix._cols
        nnz_delta = 0
        if n_rows <= 8:
            touched_rows = [r for r in range(n_rows) if touched[r]]
        else:
            touched_rows = np.nonzero(touched[:n_rows])[0].tolist()
        for r in touched_rows:
            i = row_list[r]
            code = int(new_lens[r])
            row = matrix_rows.get(i)
            if code >= 0:
                # Installed in place by the kernel; just commit the
                # length and drop the row if it emptied out.
                nnz_delta += code - row.n
                if code == 0:
                    del matrix_rows[i]
                else:
                    row.n = code
            else:
                n_new = ~code
                start = int(out_offsets[r])
                end = start + n_new
                if row is None:
                    old_count = 1 if matrix_diag[i] != 0.0 else 0  # meghlint: ignore[MEGH003] -- exact store sentinel: 0.0 means "absent"
                    matrix_diag[i] = 0.0
                else:
                    old_count = row.n
                nnz_delta += n_new - old_count
                if n_new == 0:
                    if row is not None:
                        del matrix_rows[i]
                else:
                    if row is None or row.idx.shape[0] < n_new:
                        row = _Row(capacity=max(_MIN_CAPACITY, 2 * n_new))
                        matrix_rows[i] = row
                    row.idx[:n_new] = out_idx[start:end]
                    row.val[:n_new] = out_val[start:end]
                    row.n = n_new
            a0, a1 = int(add_offsets[r]), int(add_offsets[r + 1])
            if a1 > a0:
                support_cache = matrix._support_cache
                for j in add_idx[a0:a1].tolist():
                    rows_of_column = matrix_cols.get(j)
                    if rows_of_column is None:
                        matrix_cols[j] = {i}
                    else:
                        rows_of_column.add(i)
                    support_cache.pop(j, None)
            r0, r1 = int(rem_offsets[r]), int(rem_offsets[r + 1])
            if r1 > r0:
                for j in rem_idx[r0:r1].tolist():
                    rows_of_column = matrix_cols.get(j)
                    if rows_of_column is not None:
                        rows_of_column.discard(i)
                        if not rows_of_column:
                            del matrix_cols[j]
        matrix._nnz += nnz_delta
        return int(stats[0]), int(stats[1])


class NumpyKernel:
    """Pure-NumPy fallback: replay each pending through the eager scatter.

    A per-row candidate mask keeps the scan proportional to the updates
    that can actually touch the row: an update is a candidate when the
    row's *current* pivot entry is nonzero, or when an earlier applied
    update scattered into its pivot column.  Everything else has weight
    zero by the superset argument (see module docstring) and is skipped
    without a lookup.  The scatter itself is the eager
    ``SparseMatrix._scatter_add``, so bit-identity is immediate; the C
    kernel is differentially tested against this backend and both
    against the eager mode in ``tests/core/test_kern.py``.
    """

    name = "numpy"

    def replay_rows(
        self,
        matrix: "SparseMatrix",
        rows: np.ndarray,
        starts: np.ndarray,
        pending: "PendingUpdates",
    ) -> Tuple[int, int]:
        applied = 0
        skipped = 0
        n_updates = pending._n
        pivots = pending._pivots
        scales = pending._scales
        upd_offsets = pending._upd_offsets
        cols_flat = pending._cols_flat
        vals_flat = pending._vals_flat
        for r in range(rows.shape[0]):
            i = int(rows[r])
            start = int(starts[r])
            if start >= n_updates:
                continue
            tail = pivots[start:n_updates]
            row = matrix._rows.get(i)
            if row is None:
                candidates = tail == i
                if matrix._diag[i] == 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel: 0.0 means "absent"
                    candidates = np.zeros(tail.shape[0], dtype=bool)
            else:
                n = row.n
                positions = np.searchsorted(row.idx[:n], tail)
                in_range = positions < n
                candidates = np.zeros(tail.shape[0], dtype=bool)
                candidates[in_range] = (
                    row.idx[positions[in_range]] == tail[in_range]
                )
            # Plain index loop, re-reading the live mask each step: an
            # applied update can activate *later* candidates (fill into
            # their pivot column), so a snapshot of the nonzeros would
            # silently drop them.
            for offset in range(candidates.shape[0]):
                if not candidates[offset]:
                    continue
                k = start + offset
                weight = matrix._entry(i, int(pivots[k]))
                if weight == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, mirrors the eager weight skip
                    skipped += 1
                    continue
                applied += 1
                seg0, seg1 = int(upd_offsets[k]), int(upd_offsets[k + 1])
                segment_cols = cols_flat[seg0:seg1]
                matrix._scatter_add(
                    i,
                    segment_cols,
                    (float(scales[k]) * weight) * vals_flat[seg0:seg1],
                )
                if offset + 1 < candidates.shape[0]:
                    # This update may have filled later pivot entries.
                    later = tail[offset + 1:]
                    positions = np.searchsorted(segment_cols, later)
                    in_range = positions < segment_cols.shape[0]
                    hits = np.zeros(later.shape[0], dtype=bool)
                    hits[in_range] = (
                        segment_cols[positions[in_range]] == later[in_range]
                    )
                    candidates[offset + 1:] |= hits
        return applied, skipped


def _make_backend(mode: str) -> Optional[KernelBackend]:
    """Instantiate the backend for ``mode`` (``None`` means eager)."""
    if mode == "off":
        return None
    if mode == "numpy":
        return NumpyKernel()
    try:
        return CKernel()
    except KernelUnavailableError:
        if mode == "c":
            raise
        return NumpyKernel()


def make_pending(
    mode: str, dimension: int
) -> Optional["PendingUpdates"]:
    """Build the staging engine for a new matrix (``None`` when eager)."""
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"kernel mode {mode!r} invalid; expected one of {_VALID_MODES}"
        )
    backend = _make_backend(mode)
    if backend is None:
        return None
    return PendingUpdates(backend, dimension, window=resolve_window())


class PendingUpdates:
    """Staged rank-k update set for one :class:`SparseMatrix`.

    Enqueue is integer-only bookkeeping (buffering the already
    normalized right-factor arrays plus one vectorized dirty-row
    scatter); every float operation is deferred to a row's first read or
    the window-triggered full flush.  Any change to the staging state —
    enqueue, per-row flush, full flush — bumps :attr:`mutations` so
    stale derived state is detectable (MEGH011 checks this pairing
    against the declared invariant table).
    """

    def __init__(
        self,
        backend: KernelBackend,
        dimension: int,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if window < 1:
            raise ConfigurationError("pending window must be >= 1")
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        self.backend = backend
        self.window = window
        #: Staging-state change counter (enqueues and flushes).
        self.mutations = 0
        self._n = 0
        self._pivots = np.empty(window, dtype=np.int64)
        self._scales = np.empty(window, dtype=np.float64)
        self._upd_offsets = np.zeros(window + 1, dtype=np.int64)
        self._cols_flat = np.empty(max(64, window), dtype=np.int64)
        self._vals_flat = np.empty(max(64, window), dtype=np.float64)
        #: Distinct rows marked dirty this window, in marking order (the
        #: shared prediction/flush superset — see :meth:`enqueue`).
        self._pend_rows = np.empty(max(64, window), dtype=np.int64)
        self._pend_rows_n = 0
        #: Rows with unapplied staged contributions.
        self._dirty = np.zeros(dimension, dtype=bool)
        self._dirty_count = 0
        #: Row -> first staged update not yet applied to it (rows flushed
        #: mid-window; absent means 0).
        self._row_start: Dict[int, int] = {}
        # Reusable single-row / row-pair marshaling buffers (the learning
        # step flushes exactly the two rows it is about to read).
        self._one_row = np.empty(1, dtype=np.int64)
        self._one_start = np.empty(1, dtype=np.int64)
        self._two_rows = np.empty(2, dtype=np.int64)
        self._two_starts = np.empty(2, dtype=np.int64)
        # Profiling counters (read by benchmarks/bench_core_lstd.py).
        self.enqueued = 0
        self.row_flushes = 0
        self.full_flushes = 0
        self.applied = 0
        self.skipped = 0
        self.enqueue_seconds = 0.0
        self.flush_seconds = 0.0

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of staged rank-1 updates."""
        return self._n

    @property
    def has_pending(self) -> bool:
        """True when any row still has unapplied contributions."""
        return self._dirty_count > 0

    def is_dirty(self, i: int) -> bool:
        """Whether row ``i`` has unapplied staged contributions."""
        return bool(self._dirty[i])

    def enqueue(
        self,
        matrix: "SparseMatrix",
        pivot: int,
        scale: float,
        columns: np.ndarray,
        values: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Stage ``scale * B[:, pivot] (x) values`` touching ``rows``.

        ``columns``/``values`` must already be normalized (sorted, unique,
        zero-free).  ``rows`` must cover every row whose replay weight can
        come from the *stored* image of column ``pivot`` (extra rows are
        fine — a zero-weight row costs one skipped lookup at replay, never
        a wrong float).  Rows reachable only through earlier *staged*
        updates may be omitted, but then they must already be dirty —
        the caller either passes the full pending superset or flushes a
        full window before reading the stored support (see
        ``SparseMatrix.rank_one_update_from_column``).
        """
        started = time.perf_counter()
        if self._n >= self.window:
            self.flush_all(matrix)
        k = self._n
        self._pivots[k] = pivot
        self._scales[k] = scale
        base = int(self._upd_offsets[k])
        count = int(columns.shape[0])
        needed = base + count
        if needed > self._cols_flat.shape[0]:
            new_cap = max(2 * self._cols_flat.shape[0], needed)
            cols_flat = np.empty(new_cap, dtype=np.int64)
            vals_flat = np.empty(new_cap, dtype=np.float64)
            cols_flat[:base] = self._cols_flat[:base]
            vals_flat[:base] = self._vals_flat[:base]
            self._cols_flat = cols_flat
            self._vals_flat = vals_flat
        self._cols_flat[base:needed] = columns
        self._vals_flat[base:needed] = values
        self._upd_offsets[k + 1] = needed
        # ``rows`` may contain duplicates (column_support skips the
        # dedup); track *distinct* newly-dirty rows — they extend the
        # single per-window dirty-row array (the shared superset every
        # prediction and flush enumerates) and keep the zero check that
        # retires the staged window exact.  One flat array instead of
        # per-update row lists: predictions would otherwise embed earlier
        # predictions and compound within the window.
        was_clean = ~self._dirty[rows]
        if was_clean.any():
            candidates = rows[was_clean]
            if candidates.shape[0] <= 16:
                # Steady state: the handful of just-flushed rows get
                # re-marked; a set dedup beats np.unique's overhead.
                fresh = np.fromiter(
                    set(candidates.tolist()), dtype=np.int64
                )
            else:
                fresh = np.unique(candidates)
            self._dirty[fresh] = True
            count_new = int(fresh.shape[0])
            self._dirty_count += count_new
            end = self._pend_rows_n + count_new
            if end > self._pend_rows.shape[0]:
                grown = np.empty(
                    max(2 * self._pend_rows.shape[0], end), dtype=np.int64
                )
                grown[: self._pend_rows_n] = self._pend_rows[
                    : self._pend_rows_n
                ]
                self._pend_rows = grown
            self._pend_rows[self._pend_rows_n : end] = fresh
            self._pend_rows_n = end
        self._n = k + 1
        self.enqueued += 1
        self.mutations += 1
        self.enqueue_seconds += time.perf_counter() - started

    def pending_rows_for_column(self, j: int) -> List[np.ndarray]:
        """Rows any staged update could touch (column-independent superset).

        The union of this with the stored column support over-approximates
        the post-flush support of column ``j`` (exact modulo epsilon prunes
        and zero-weight skips) — used for theta dirty-row invalidation and
        for predicting the rows a new rank-1 update can touch.  One shared
        array for all columns: per-column precision is not worth the
        per-enqueue bookkeeping it costs (a zero-weight row is one skipped
        integer lookup at replay, never a wrong float).
        """
        if self._pend_rows_n == 0:
            return []
        return [self._pend_rows[: self._pend_rows_n]]

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def flush_row(self, matrix: "SparseMatrix", i: int) -> None:
        """Apply row ``i``'s staged contributions in submission order."""
        if not self._dirty[i]:
            return
        started = time.perf_counter()
        self._one_row[0] = i
        self._one_start[0] = self._row_start.get(i, 0)
        applied, skipped = self.backend.replay_rows(
            matrix, self._one_row, self._one_start, self
        )
        self.applied += applied
        self.skipped += skipped
        self.row_flushes += 1
        self.mutations += 1
        self._dirty[i] = False
        self._dirty_count -= 1
        if self._dirty_count == 0:
            self._reset()
        else:
            self._row_start[i] = self._n
        self.flush_seconds += time.perf_counter() - started

    def flush_rows(self, matrix: "SparseMatrix", rows: np.ndarray) -> None:
        """Batched :meth:`flush_row` — one backend call for many rows."""
        if self._dirty_count == 0 or rows.shape[0] == 0:
            return
        if rows.shape[0] == 2:
            # Hot path: the learning step flushes the two rows it reads.
            i0, i1 = int(rows[0]), int(rows[1])
            if i0 == i1:
                self.flush_row(matrix, i0)
                return
            dirty = self._dirty
            first_dirty, second_dirty = bool(dirty[i0]), bool(dirty[i1])
            if not (first_dirty and second_dirty):
                if first_dirty:
                    self.flush_row(matrix, i0)
                elif second_dirty:
                    self.flush_row(matrix, i1)
                return
            started = time.perf_counter()
            pair = self._two_rows
            pair[0] = i0
            pair[1] = i1
            starts = self._two_starts
            row_start = self._row_start
            if row_start:
                starts[0] = row_start.get(i0, 0)
                starts[1] = row_start.get(i1, 0)
            else:
                starts[0] = 0
                starts[1] = 0
            applied, skipped = self.backend.replay_rows(
                matrix, pair, starts, self
            )
            self.applied += applied
            self.skipped += skipped
            self.row_flushes += 2
            self.mutations += 1
            dirty[i0] = False
            dirty[i1] = False
            self._dirty_count -= 2
            if self._dirty_count == 0:
                self._reset()
            else:
                watermark = self._n
                row_start[i0] = watermark
                row_start[i1] = watermark
            self.flush_seconds += time.perf_counter() - started
            return
        dirty_rows = rows[self._dirty[rows]]
        if dirty_rows.shape[0] == 0:
            return
        if dirty_rows.shape[0] == 1:
            self.flush_row(matrix, int(dirty_rows[0]))
            return
        started = time.perf_counter()
        dirty_rows = np.unique(dirty_rows)
        self._replay_batch(matrix, dirty_rows)
        self.row_flushes += int(dirty_rows.shape[0])
        self.mutations += 1
        self._dirty[dirty_rows] = False
        self._dirty_count -= int(dirty_rows.shape[0])
        if self._dirty_count == 0:
            self._reset()
        else:
            watermark = self._n
            row_start = self._row_start
            for i in dirty_rows.tolist():
                row_start[i] = watermark
        self.flush_seconds += time.perf_counter() - started

    def flush_column(self, matrix: "SparseMatrix", j: int) -> None:
        """Flush every row that a staged update could touch in column ``j``.

        Conservative: flushes every dirty row (the staged row tracking is
        column-independent).  Column reads are off the learning hot path,
        so breadth is the right trade here.
        """
        if self._dirty_count == 0:
            return
        self.flush_rows(matrix, self._pend_rows[: self._pend_rows_n])

    def flush_all(self, matrix: "SparseMatrix") -> None:
        """Apply every staged contribution (grouped, one backend call)."""
        if self._dirty_count == 0:
            if self._n:
                self._reset()
            return
        started = time.perf_counter()
        rows = np.unique(self._pend_rows[: self._pend_rows_n])
        rows = rows[self._dirty[rows]]
        self._replay_batch(matrix, rows)
        self._dirty[rows] = False
        self._dirty_count = 0
        self._reset()
        self.flush_seconds += time.perf_counter() - started

    def _replay_batch(self, matrix: "SparseMatrix", rows: np.ndarray) -> None:
        """Replay a sorted batch of dirty rows from their watermarks."""
        row_start = self._row_start
        if row_start:
            starts = np.asarray(
                [row_start.get(i, 0) for i in rows.tolist()], dtype=np.int64
            )
        else:
            starts = np.zeros(rows.shape[0], dtype=np.int64)
        applied, skipped = self.backend.replay_rows(
            matrix, rows, starts, self
        )
        self.applied += applied
        self.skipped += skipped
        self.full_flushes += 1
        self.mutations += 1

    def _reset(self) -> None:
        """Drop all staged updates (every row has been flushed)."""
        self._n = 0
        self._upd_offsets[0] = 0
        self._pend_rows_n = 0
        self._row_start.clear()
        self.mutations += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Profiling snapshot (merged into BENCH_core.json by benches)."""
        meta: Dict[str, object] = {
            "backend": getattr(self.backend, "name", "unknown"),
            "window": self.window,
            "enqueued": self.enqueued,
            "row_flushes": self.row_flushes,
            "full_flushes": self.full_flushes,
            "applied": self.applied,
            "skipped": self.skipped,
            "enqueue_seconds": self.enqueue_seconds,
            "flush_seconds": self.flush_seconds,
        }
        return meta
