"""Least-squares temporal-difference core of Algorithm 1.

Maintains the inverse transition operator ``B = T^{-1}`` via the
Sherman–Morrison formula (Eq. 11), the reward-weighted feature sum ``z``
(line 10 of Algorithm 1), and exposes the projection vector
``theta = B z`` (line 11).  Because every feature is one-hot,
``Q(s, a) = theta[index(a)]`` and each theta entry is a single sparse
row-vector dot product — computed lazily so a step's cost is proportional
to the migrations performed, exactly the Section 5.2 claim.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.sparse import SparseMatrix
from repro.errors import ConfigurationError

#: Denominators below this in magnitude would blow up the rank-1 update;
#: such samples are skipped (standard recursive-least-squares practice).
DENOMINATOR_FLOOR = 1e-10


class SparseLstd:
    """Sherman–Morrison LSTD state: ``B``, ``z`` and lazy ``theta``.

    Args:
        dimension: ``d = N x M``.
        gamma: discount factor.
        delta: ``B_0 = (1/delta) I``; the paper takes ``delta = d``.
    """

    def __init__(
        self, dimension: int, gamma: float, delta: float | None = None
    ) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        self.dimension = dimension
        self.gamma = gamma
        self.delta = float(dimension) if delta is None else float(delta)
        if self.delta <= 0:
            raise ConfigurationError("delta must be > 0")
        self.B = SparseMatrix.identity(dimension, scale=1.0 / self.delta)
        self.z: Dict[int, float] = {}
        self.updates_applied = 0
        self.updates_skipped = 0

    def update(self, action_index: int, next_action_index: int, cost: float) -> None:
        """One Algorithm-1 iteration for an executed action.

        Implements Eq. (11) with ``u = phi_a`` and
        ``v = phi_a - gamma * phi_a'`` followed by ``z += phi_a * C``.
        With one-hot features, ``B u`` is column ``a`` of ``B`` and
        ``v^T B`` is row ``a`` minus ``gamma`` times row ``a'``.
        """
        self._check_action(action_index)
        self._check_action(next_action_index)
        a, a_next = action_index, next_action_index

        bu = self.B.column(a)
        row_a = self.B.row(a)
        row_next = self.B.row(a_next)
        vtb: Dict[int, float] = dict(row_a)
        for j, value in row_next.items():
            vtb[j] = vtb.get(j, 0.0) - self.gamma * value

        # denominator = 1 + v^T B u = 1 + (B[a,a] - gamma B[a',a])
        denominator = 1.0 + (
            row_a.get(a, 0.0) - self.gamma * row_next.get(a, 0.0)
        )
        if abs(denominator) < DENOMINATOR_FLOOR:
            self.updates_skipped += 1
        else:
            self.B.rank_one_update(bu, vtb, scale=-1.0 / denominator)
            self.updates_applied += 1

        self.z[a] = self.z.get(a, 0.0) + cost

    def _check_action(self, index: int) -> None:
        if not 0 <= index < self.dimension:
            raise ConfigurationError(
                f"action index {index} out of range [0, {self.dimension})"
            )

    def q_value(self, action_index: int) -> float:
        """``Q(s, a) = theta[a] = (B z)[a]`` — one sparse dot product."""
        self._check_action(action_index)
        return self.B.row_dot(action_index, self.z)

    def theta(self) -> np.ndarray:
        """Dense ``theta = B z`` (for analysis / tests; O(nnz))."""
        theta = np.zeros(self.dimension)
        for i in range(self.dimension):
            value = self.B.row_dot(i, self.z)
            theta[i] = value
        return theta

    @property
    def q_table_nonzeros(self) -> int:
        """Stored non-zeros of ``B`` — the Figure-7 quantity."""
        return self.B.nnz
