"""Least-squares temporal-difference core of Algorithm 1.

Maintains the inverse transition operator ``B = T^{-1}`` via the
Sherman–Morrison formula (Eq. 11), the reward-weighted feature sum ``z``
(line 10 of Algorithm 1), and exposes the projection vector
``theta = B z`` (line 11).  Because every feature is one-hot,
``Q(s, a) = theta[index(a)]`` and each theta entry is a single sparse
row-vector dot product — computed lazily so a step's cost is proportional
to the migrations performed, exactly the Section 5.2 claim.

Hot-path layout (see ``docs/performance.md``):

* ``q_value`` / ``q_values`` serve from a **dirty-row theta cache**.  A
  row's cached ``theta[i] = B[i,:] . z`` stays valid until an
  ``update()`` touches it; candidate re-evaluation across steps then
  costs one array read instead of a dot product.
* ``update()`` invalidates *exactly* the support of column ``a`` of the
  pre-update ``B``.  That set covers every changed quantity: the rank-1
  update rewrites only rows ``i`` with ``B[i,a] != 0``, and the
  ``z[a] += cost`` change only affects rows with a stored ``(i, a)``
  entry — which (because ``B_new[i,a] = B_old[i,a] * (1 + scale*v_a)``)
  is a subset of the same support.
* external writes (``lstd.B.set(...)``, ``lstd.z[j] = ...``) are caught
  by the :attr:`SparseMatrix.mutations` counter and a write-through
  :class:`RewardVector`, so deliberate corruption in the contract tests
  still invalidates what it must.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    Iterable,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Union,
)

import numpy as np

from repro.core.sparse import SparseMatrix
from repro.errors import ConfigurationError

#: Denominators below this in magnitude would blow up the rank-1 update;
#: such samples are skipped (standard recursive-least-squares practice).
DENOMINATOR_FLOOR = 1e-10


def _row_entry(idx: np.ndarray, val: np.ndarray, j: int) -> float:
    """Entry at column ``j`` of a sorted sparse row view; 0 when absent."""
    n = idx.shape[0]
    position = int(np.searchsorted(idx, j))
    if position < n and idx[position] == j:
        return float(val[position])
    return 0.0


class RewardVector(MutableMapping):
    """The sparse reward-weighted feature sum ``z`` with a dense mirror.

    Behaves as a ``dict[int, float]`` (the historical representation —
    checkpointing and tests rely on the mapping protocol) while keeping
    a dense ``float64`` mirror so ``B[i,:] . z`` is one vectorized
    gather.  Every *external* write reports the touched index to the
    owning learner, which invalidates the dependent theta-cache rows;
    the learner's own update path writes through :meth:`_accumulate`.
    """

    __slots__ = ("_data", "_dense", "_on_external_write")

    def __init__(self, dimension: int, on_external_write) -> None:
        self._data: Dict[int, float] = {}
        self._dense = np.zeros(dimension, dtype=np.float64)
        self._on_external_write = on_external_write

    @property
    def dense(self) -> np.ndarray:
        """Dense mirror of ``z`` (live storage — do not mutate)."""
        return self._dense

    def _accumulate(self, key: int, cost: float) -> None:
        """Internal ``z[key] += cost`` (cache already invalidated)."""
        value = self._data.get(key, 0.0) + cost
        self._data[key] = value  # meghlint: ignore[MEGH011] -- internal accumulate: caller invalidated the dependent rows before batching
        self._dense[key] = value  # meghlint: ignore[MEGH011] -- internal accumulate: caller invalidated the dependent rows before batching

    def __getitem__(self, key: int) -> float:
        return self._data[key]

    def __setitem__(self, key: int, value: float) -> None:
        self._data[key] = value
        self._dense[key] = value
        self._on_external_write(key)

    def __delitem__(self, key: int) -> None:
        del self._data[key]
        self._dense[key] = 0.0
        self._on_external_write(key)

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"RewardVector({self._data!r})"


class SparseLstd:
    """Sherman–Morrison LSTD state: ``B``, ``z`` and lazy ``theta``.

    Args:
        dimension: ``d = N x M``.
        gamma: discount factor.
        delta: ``B_0 = (1/delta) I``; the paper takes ``delta = d``.
    """

    def __init__(
        self, dimension: int, gamma: float, delta: Optional[float] = None
    ) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        if not 0 <= gamma < 1:
            raise ConfigurationError("gamma must be in [0, 1)")
        self.dimension = dimension
        self.gamma = gamma
        self.delta = float(dimension) if delta is None else float(delta)
        if self.delta <= 0:
            raise ConfigurationError("delta must be > 0")
        self._theta_cache = np.zeros(dimension, dtype=np.float64)
        self._theta_fresh = np.zeros(dimension, dtype=bool)
        # Reusable row-pair buffer for the per-update grouped flush.
        self._row_pair = np.empty(2, dtype=np.int64)
        self.theta_cache_hits = 0
        self.theta_cache_misses = 0
        self._b_mutations_seen = -1
        self.B = SparseMatrix.identity(dimension, scale=1.0 / self.delta)
        self.z = {}
        self.updates_applied = 0
        self.updates_skipped = 0
        #: Opt-in sparse record of ``T - delta I`` (see
        #: :meth:`enable_operator_tracking`): row -> {column -> value}.
        self._t_rows: Optional[Dict[int, Dict[int, float]]] = None
        #: Column index over the tracker: column -> set of tracked rows.
        self._t_cols: Dict[int, Set[int]] = {}
        self.retirements_applied = 0
        self.retirements_skipped = 0

    # ------------------------------------------------------------------
    # Guarded state: replacing B or z resets the theta cache
    # ------------------------------------------------------------------
    @property
    def B(self) -> SparseMatrix:
        """The incremental inverse operator."""
        return self._B

    @B.setter
    def B(self, matrix: SparseMatrix) -> None:
        self._B = matrix
        # Duck-typed backend fast path: only the compiled kernel offers
        # the fused row combine (None for numpy / deferral-off).
        self._combine_rows = getattr(
            matrix.kernel_backend, "combine_rows", None
        )
        self.invalidate_theta_cache()
        self._b_mutations_seen = matrix.mutations

    @property
    def z(self) -> RewardVector:
        """The reward-weighted feature sum (mapping ``index -> value``)."""
        return self._z

    @z.setter
    def z(self, mapping: Dict[int, float]) -> None:
        vector = RewardVector(self.dimension, self._on_z_external_write)
        for key, value in mapping.items():
            vector._accumulate(int(key), float(value))
        self._z = vector
        self.invalidate_theta_cache()

    def _on_z_external_write(self, key: int) -> None:
        """External ``z[key]`` write: stale rows are ``support(B e_key)``."""
        rows = self._B.rows_with_column(key)
        if rows:
            self._theta_fresh[rows] = False

    def invalidate_theta_cache(
        self, rows: Union[Iterable[int], np.ndarray, None] = None
    ) -> None:
        """Mark cached theta rows stale (all rows when ``rows`` is None)."""
        if rows is None:
            self._theta_fresh[:] = False
            return
        rows = np.asarray(rows, dtype=np.int64)
        if rows.shape[0]:
            self._theta_fresh[rows] = False

    def _sync_with_b(self) -> None:
        """Full-invalidate after out-of-band ``B`` mutations.

        The learner's own :meth:`update` performs targeted invalidation
        and then re-syncs the counter; anything else that mutated ``B``
        (tests corrupting entries, checkpoint restore populating a fresh
        matrix) lands here.
        """
        if self._B.mutations != self._b_mutations_seen:
            self._theta_fresh[:] = False
            self._b_mutations_seen = self._B.mutations

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def update(self, action_index: int, next_action_index: int, cost: float) -> None:
        """One Algorithm-1 iteration for an executed action.

        Implements Eq. (11) with ``u = phi_a`` and
        ``v = phi_a - gamma * phi_a'`` followed by ``z += phi_a * C``.
        With one-hot features, ``B u`` is column ``a`` of ``B`` and
        ``v^T B`` is row ``a`` minus ``gamma`` times row ``a'``.
        """
        self._check_action(action_index)
        self._check_action(next_action_index)
        a, a_next = action_index, next_action_index
        self._sync_with_b()

        # v^T B as sorted arrays: union of the two row supports, then a
        # vectorized row_a - gamma * row_next merge.  With the deferred
        # kernel on, rows a / a' are settled in ONE grouped kernel call
        # (the row views below then see clean rows and flush nothing).
        self._row_pair[0] = a
        self._row_pair[1] = a_next
        self._B.flush_rows(self._row_pair)
        combine = self._combine_rows
        raw_a = raw_next = None
        if combine is not None:
            raw_a = self._B._row_raw(a)
            raw_next = self._B._row_raw(a_next)
        if raw_a is not None and raw_next is not None:
            # Compiled fast path: one C call performs the sorted-union
            # merge, the ``row_a - gamma * row_next`` combine, the exact
            # zero filter, and both denominator entry lookups —
            # bit-identical to the NumPy construction below (see the C
            # comment in kern.py).
            columns, values, entry_a, entry_next = combine(
                raw_a, raw_next, self.gamma, a
            )
            normalized = True
        else:
            idx_a, val_a = self._B.row_view(a)
            idx_next, val_next = self._B.row_view(a_next)
            # Sorted-unique union of the two supports: both inputs are
            # sorted, so a stable sort of the concatenation plus an
            # adjacent-equality mask produces exactly np.union1d's output
            # without its hashing overhead (once per learning step).
            merged = np.concatenate((idx_a, idx_next))
            if merged.shape[0] > 1:
                merged.sort(kind="stable")
                keep = np.empty(merged.shape[0], dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                columns = merged[keep]
            else:
                columns = merged
            values = np.zeros(columns.shape[0], dtype=np.float64)
            values[np.searchsorted(columns, idx_a)] = val_a
            values[np.searchsorted(columns, idx_next)] -= self.gamma * val_next
            entry_a = _row_entry(idx_a, val_a, a)
            entry_next = _row_entry(idx_next, val_next, a)
            normalized = False

        # denominator = 1 + v^T B u = 1 + (B[a,a] - gamma B[a',a]).
        # Both entries come straight from the already-settled rows — no
        # extra flush checks on the hot path.
        denominator = 1.0 + (entry_a - self.gamma * entry_next)
        if abs(denominator) < DENOMINATOR_FLOOR:
            self.updates_skipped += 1
            dirty = self._B.column_support(a)
        else:
            # The left factor B u is column a of B itself; the deferred
            # path never builds it — each touched row reads its own
            # weight B[i, a] at flush time (see kern.py).  The returned
            # rows are the pre-update support of column a (a superset
            # when epsilon prunes are staged — conservative, never
            # wrong).
            dirty = self._B.rank_one_update_from_column(
                a, columns, values,
                scale=-1.0 / denominator,
                assume_normalized=normalized,
            )
            self.updates_applied += 1
            if self._t_rows is not None:
                self._track_entry(a, a, 1.0)
                self._track_entry(a, a_next, -self.gamma)

        # Dirty rows: support of column a of the *pre-update* B.  This
        # covers both the rank-1 row rewrites and the z[a] change (and
        # degenerates to just the z effect when the update is skipped).
        if dirty.shape[0]:
            self._theta_fresh[dirty] = False
        self._z._accumulate(a, cost)
        self._b_mutations_seen = self._B.mutations

    def _check_action(self, index: int) -> None:
        if not 0 <= index < self.dimension:
            raise ConfigurationError(
                f"action index {index} out of range [0, {self.dimension})"
            )

    # ------------------------------------------------------------------
    # Operator tracking and retirement (service mode)
    # ------------------------------------------------------------------
    @property
    def operator_tracking_enabled(self) -> bool:
        """Whether the sparse ``T - delta I`` record is being maintained."""
        return self._t_rows is not None

    def enable_operator_tracking(self) -> None:
        """Start recording the forward operator's off-``delta I`` part.

        :meth:`retire_actions` needs to know which updates ever touched a
        row or column of ``T``; the batch simulator never retires, so the
        record is opt-in to keep its hot path free of bookkeeping.  Must
        be enabled before the first :meth:`update` — enabling later would
        leave the record blind to history it cannot reconstruct.
        """
        if self._t_rows is not None:
            return
        if self.updates_applied or self.updates_skipped:
            raise ConfigurationError(
                "operator tracking must be enabled before the first update"
            )
        self._t_rows = {}
        self._t_cols = {}

    def _track_entry(self, i: int, j: int, delta: float) -> None:
        """Tracker ``T[i, j] += delta`` with exact-zero pruning."""
        rows = self._t_rows
        assert rows is not None
        row = rows.setdefault(i, {})
        value = row.get(j, 0.0) + delta
        if value == 0.0:  # meghlint: ignore[MEGH003] -- gamma is dyadic in practice; exact cancellation prunes the entry
            row.pop(j, None)
            if not row:
                del rows[i]
            rows_of = self._t_cols.get(j)
            if rows_of is not None:
                rows_of.discard(i)
                if not rows_of:
                    del self._t_cols[j]
        else:
            row[j] = value
            self._t_cols.setdefault(j, set()).add(i)

    def operator_entries(self) -> List[tuple]:
        """Tracked entries as sorted ``(row, col, value)`` triplets.

        Checkpoint serialization; :meth:`load_operator_entries` inverts.
        """
        if self._t_rows is None:
            raise ConfigurationError("operator tracking is not enabled")
        triplets: List[tuple] = []
        for i in sorted(self._t_rows):
            row = self._t_rows[i]
            for j in sorted(row):
                triplets.append((i, j, row[j]))
        return triplets

    def load_operator_entries(
        self, triplets: Iterable[Sequence[float]]
    ) -> None:
        """Restore the tracker from :meth:`operator_entries` triplets."""
        rows: Dict[int, Dict[int, float]] = {}
        cols: Dict[int, Set[int]] = {}
        for triplet in triplets:
            i, j, value = int(triplet[0]), int(triplet[1]), float(triplet[2])
            self._check_action(i)
            self._check_action(j)
            if value == 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel: zeros are never stored
                continue
            rows.setdefault(i, {})[j] = value
            cols.setdefault(j, set()).add(i)
        self._t_rows = rows
        self._t_cols = cols

    def retire_actions(self, indices: Iterable[int]) -> int:
        """Remove a set of action indices from the learned operator.

        When a VM departs, its block of action indices must revert to the
        never-observed state — otherwise the operator accumulates weight
        for actions that can no longer be taken, and a slot reused by a
        new VM would inherit a stranger's history.  With ``S`` the index
        set, the target operator is ``T'`` equal to ``T`` outside ``S``
        and ``delta I`` on it; since every update contributed
        ``e_a (e_a - gamma e_{a'})^T``, the tracked record of
        ``T - delta I`` tells us exactly which rank-1 corrections undo
        the ``S`` rows and columns:

        1. **Row clears** — for each ``i`` in ``S`` with tracked row
           ``t``, ``T' = T - e_i t^T`` gives (Sherman–Morrison)
           ``B' = B + B e_i (t^T B) / (1 - t^T B e_i)``.
        2. **Column clears** — after all row clears, for each ``j`` in
           ``S`` with remaining tracked column entries ``w`` (all in rows
           outside ``S`` now), ``T' = T - w e_j^T`` gives
           ``B' = B + (B w)(e_j^T B) / (1 - e_j^T B w)``.
        3. **Snap** — ``T'`` is now block-diagonal with ``delta I`` on
           the ``S`` block, so ``B'``'s ``S`` rows and columns are
           exactly ``(1/delta) e_i``; they are hard-written to remove
           floating-point residue deterministically.

        ``T`` stays strictly diagonally dominant throughout
        (``gamma < 1``), so the denominators are mathematically nonzero;
        a floor guard still skips any correction whose denominator
        underflows (counted in :attr:`retirements_skipped` — the
        contracts auditor would surface any resulting drift).

        ``z`` entries for ``S`` are deleted and the theta cache is fully
        invalidated.  Returns the number of indices retired.
        """
        if self._t_rows is None:
            raise ConfigurationError(
                "retire_actions requires operator tracking; call "
                "enable_operator_tracking() before the first update"
            )
        retired = sorted({int(i) for i in indices})
        for i in retired:
            self._check_action(i)
        if not retired:
            return 0
        self._sync_with_b()
        # Retirement's generic rank-1 corrections read whole columns and
        # scatter through dict left factors; settle every staged update
        # first so the slot's rows are exact before they are undone.
        self._B.flush_pending()

        # (1) row clears.
        for i in retired:
            trow = self._t_rows.get(i)
            if trow:
                bu = self._B.column(i)
                denominator = 1.0
                vtb: Dict[int, float] = {}
                for j in sorted(trow):
                    weight = trow[j]
                    denominator -= weight * self._B.get(j, i)
                    row_idx, row_val = self._B.row_view(j)
                    for column, value in zip(
                        row_idx.tolist(), row_val.tolist()
                    ):
                        vtb[column] = vtb.get(column, 0.0) + weight * value
                if abs(denominator) < DENOMINATOR_FLOOR:
                    self.retirements_skipped += 1
                else:
                    self._B.rank_one_update(bu, vtb, scale=1.0 / denominator)
            if trow is not None:
                for j in list(trow):
                    rows_of = self._t_cols.get(j)
                    if rows_of is not None:
                        rows_of.discard(i)
                        if not rows_of:
                            del self._t_cols[j]
                del self._t_rows[i]

        # (2) column clears.  Row clears removed every tracked row in S,
        # so the remaining entries of a retired column all live in rows
        # that survive — exactly the coupling left to undo.
        for j in retired:
            rows_of = self._t_cols.get(j)
            if not rows_of:
                self._t_cols.pop(j, None)
                continue
            entries = [(r, self._t_rows[r][j]) for r in sorted(rows_of)]
            bw: Dict[int, float] = {}
            denominator = 1.0
            for r, weight in entries:
                denominator -= weight * self._B.get(j, r)
                for row_index, value in self._B.column(r).items():
                    bw[row_index] = bw.get(row_index, 0.0) + weight * value
            row_j = self._B.row(j)
            if abs(denominator) < DENOMINATOR_FLOOR:
                self.retirements_skipped += 1
            else:
                self._B.rank_one_update(bw, row_j, scale=1.0 / denominator)
            for r, _ in entries:
                remaining = self._t_rows[r]
                del remaining[j]
                if not remaining:
                    del self._t_rows[r]
            del self._t_cols[j]

        # (3) snap the S block of B to (1/delta) I.
        inverse_delta = 1.0 / self.delta
        for i in retired:
            for j in list(self._B.row(i)):
                self._B.set(i, j, 0.0)
            for r in self._B.rows_with_column(i):
                self._B.set(r, i, 0.0)
            self._B.set(i, i, inverse_delta)

        for i in retired:
            self._z.pop(i, None)
        self.invalidate_theta_cache()
        self._b_mutations_seen = self._B.mutations
        self.retirements_applied += 1
        return len(retired)

    # ------------------------------------------------------------------
    # Q evaluation (cached)
    # ------------------------------------------------------------------
    def q_value(self, action_index: int) -> float:
        """``Q(s, a) = theta[a] = (B z)[a]`` — cached sparse dot product."""
        self._check_action(action_index)
        self._sync_with_b()
        if self._theta_fresh[action_index]:
            self.theta_cache_hits += 1
            return float(self._theta_cache[action_index])
        value = self._B.row_dot_dense(action_index, self._z.dense)
        self._theta_cache[action_index] = value
        self._theta_fresh[action_index] = True
        self.theta_cache_misses += 1
        return value

    def q_values(
        self, indices: Union[Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Batched :meth:`q_value` for a set of action indices.

        Stale rows are recomputed once each (in ascending index order —
        the values are independent, so order only matters for
        determinism of the cache-counter bookkeeping); the result is one
        fancy-index gather from the cache.
        """
        index_array = np.asarray(indices, dtype=np.int64)
        if index_array.ndim != 1:
            raise ConfigurationError("q_values expects a 1-D index sequence")
        if index_array.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        low = int(index_array.min())
        high = int(index_array.max())
        if low < 0 or high >= self.dimension:
            raise ConfigurationError(
                f"action index out of range [0, {self.dimension}): "
                f"batch spans [{low}, {high}]"
            )
        self._sync_with_b()
        stale = np.unique(index_array[~self._theta_fresh[index_array]])
        if stale.shape[0]:
            # One grouped kernel call instead of a per-row flush inside
            # each dot product (flush order never changes values).
            self._B.flush_rows(stale)
        dense_z = self._z.dense
        for i in stale.tolist():
            self._theta_cache[i] = self._B.row_dot_dense(i, dense_z)
        if stale.shape[0]:
            self._theta_fresh[stale] = True
        self.theta_cache_misses += int(stale.shape[0])
        self.theta_cache_hits += int(index_array.shape[0] - stale.shape[0])
        return self._theta_cache[index_array].copy()

    def theta(self) -> np.ndarray:
        """Dense ``theta = B z`` (for analysis / tests).

        Only rows whose support intersects the ``z`` support can be
        nonzero, so the scan walks ``union_j support(B e_j)`` for
        ``j in z`` via the column index instead of all ``d`` rows —
        bit-identical to the historical full loop for finite ``B``
        (non-finite ``B`` entries are audited separately by the
        contracts layer).
        """
        self._sync_with_b()
        theta = np.zeros(self.dimension)
        candidate_rows: set = set()
        for j in self._z:
            candidate_rows.update(self._B.rows_with_column(j))
        for i in sorted(candidate_rows):
            theta[i] = self.q_value(i)
        return theta

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    def verify_theta_cache(self) -> List[int]:
        """Rows whose cached theta disagrees with a fresh dot product.

        Exact (bitwise) comparison; two NaNs count as agreeing.  An
        empty list means the dirty-row invalidation invariant holds for
        every currently-fresh row.  Used by the contracts auditor.
        """
        self._sync_with_b()
        dense_z = self._z.dense
        inconsistent: List[int] = []
        for i in np.nonzero(self._theta_fresh)[0].tolist():
            expected = self._B.row_dot_dense(i, dense_z)
            cached = float(self._theta_cache[i])
            if cached != expected and not (
                math.isnan(cached) and math.isnan(expected)
            ):
                inconsistent.append(i)
        return inconsistent

    @property
    def theta_cache_fresh_rows(self) -> int:
        """Number of rows currently served straight from the cache."""
        return int(self._theta_fresh.sum())

    @property
    def q_table_nonzeros(self) -> int:
        """Stored non-zeros of ``B`` — the Figure-7 quantity."""
        return self.B.nnz
