"""Q-table growth tracking (Figure 7).

The paper measures the number of non-zero elements stored by Megh — the
fill-in of the sparse inverse operator ``B`` — over time and across fleet
sizes, observing linear growth in time with a vertical shift roughly
``0.3 x`` linear in the number of PMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class QTableTracker:
    """Records ``(step, nnz)`` samples during a run."""

    samples: List[Tuple[int, int]] = field(default_factory=list)

    def record(self, step: int, nonzeros: int) -> None:
        self.samples.append((step, nonzeros))

    @property
    def steps(self) -> List[int]:
        return [s for s, _ in self.samples]

    @property
    def nonzeros(self) -> List[int]:
        return [n for _, n in self.samples]

    def growth_rate(self) -> float:
        """Least-squares slope of nnz over steps (non-zeros per step)."""
        if len(self.samples) < 2:
            return 0.0
        xs, ys = self.steps, self.nonzeros
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        if den == 0:
            return 0.0
        return num / den

    def intercept(self) -> float:
        """Least-squares intercept — the Figure-7 "vertical shift"."""
        if not self.samples:
            return 0.0
        xs, ys = self.steps, self.nonzeros
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        return mean_y - self.growth_rate() * mean_x
