"""Sparse square matrix specialised for Megh's update pattern (Section 5.2).

The inverse operator ``B`` starts diagonal and is only ever modified by
rank-1 updates whose left factor is a single column of ``B`` and whose
right factor combines two rows of ``B``.  A dict-of-rows store with a
column index therefore supports every operation Megh needs in time
proportional to the number of stored non-zeros touched — this is the
"triplet" data structure the paper credits for Megh's real-time speed.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Magnitudes below this are dropped from the store, bounding fill-in noise.
PRUNE_EPSILON = 1e-14


class SparseMatrix:
    """A ``dimension x dimension`` sparse matrix of floats.

    Rows are dicts ``column -> value``; a column index (``column -> set of
    rows``) makes column extraction O(nnz in column).
    """

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        self.dimension = dimension
        self._rows: Dict[int, Dict[int, float]] = {}
        self._col_index: Dict[int, Set[int]] = {}

    @classmethod
    def identity(cls, dimension: int, scale: float = 1.0) -> "SparseMatrix":
        """``scale * I`` — Megh's ``B_0 = (1/delta) I``."""
        matrix = cls(dimension)
        for i in range(dimension):
            matrix.set(i, i, scale)
        return matrix

    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self.dimension and 0 <= j < self.dimension):
            raise ConfigurationError(
                f"index ({i}, {j}) out of range for dimension {self.dimension}"
            )

    def get(self, i: int, j: int) -> float:
        """Entry ``(i, j)``; 0 when unstored."""
        self._check_index(i, j)
        return self._rows.get(i, {}).get(j, 0.0)

    def set(self, i: int, j: int, value: float) -> None:
        """Store (or, for tiny values, erase) entry ``(i, j)``."""
        self._check_index(i, j)
        if abs(value) <= PRUNE_EPSILON:
            row = self._rows.get(i)
            if row and j in row:
                del row[j]
                if not row:
                    del self._rows[i]
                cols = self._col_index.get(j)
                if cols:
                    cols.discard(i)
                    if not cols:
                        del self._col_index[j]
            return
        self._rows.setdefault(i, {})[j] = value
        self._col_index.setdefault(j, set()).add(i)

    def add(self, i: int, j: int, delta: float) -> None:
        """In-place ``B[i, j] += delta``."""
        self.set(i, j, self.get(i, j) + delta)

    def row(self, i: int) -> Dict[int, float]:
        """Non-zero entries of row ``i`` (a copy)."""
        self._check_index(i, 0)
        return dict(self._rows.get(i, {}))

    def column(self, j: int) -> Dict[int, float]:
        """Non-zero entries of column ``j`` (a copy)."""
        self._check_index(0, j)
        rows = self._col_index.get(j, ())
        return {i: self._rows[i][j] for i in rows if j in self._rows.get(i, {})}

    def row_dot(self, i: int, vector: Dict[int, float]) -> float:
        """Dot product of row ``i`` with a sparse vector."""
        row = self._rows.get(i)
        if not row:
            return 0.0
        if len(row) <= len(vector):
            return sum(v * vector.get(j, 0.0) for j, v in row.items())
        return sum(row.get(j, 0.0) * v for j, v in vector.items())

    def rank_one_update(
        self, col: Dict[int, float], row: Dict[int, float], scale: float
    ) -> None:
        """``B += scale * col (x) row`` — the Sherman–Morrison core.

        Cost is O(nnz(col) * nnz(row)), independent of the dimension.
        """
        if scale == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit; any nonzero scale must update
            return
        for i, ci in col.items():
            if ci == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
                continue
            factor = scale * ci
            for j, rj in row.items():
                if rj == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
                    continue
                self.add(i, j, factor * rj)

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries — the Q-table size (Fig 7)."""
        return sum(len(row) for row in self._rows.values())

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(i, j, value)`` over stored entries."""
        for i, row in self._rows.items():
            for j, value in row.items():
                yield (i, j, value)

    def to_dense(self) -> np.ndarray:
        """Dense copy — for tests and small ablations only."""
        dense = np.zeros((self.dimension, self.dimension))
        for i, j, value in self.items():
            dense[i, j] = value
        return dense

    def copy(self) -> "SparseMatrix":
        """Deep copy."""
        clone = SparseMatrix(self.dimension)
        for i, j, value in self.items():
            clone.set(i, j, value)
        return clone
