"""Sparse square matrix specialised for Megh's update pattern (Section 5.2).

The inverse operator ``B`` starts diagonal and is only ever modified by
rank-1 updates whose left factor is a single column of ``B`` and whose
right factor combines two rows of ``B``.  Every operation Megh needs is
therefore proportional to the number of stored non-zeros touched — the
"triplet" property the paper credits for Megh's real-time speed.

Storage layout (the vectorized rewrite of the original dict-of-dicts):

* the diagonal of rows that have never seen fill-in lives in one dense
  ``float64`` array (``B_0 = (1/delta) I`` costs one ``fill``, not ``d``
  dict inserts);
* a row touched by an update is *materialized* into a pair of parallel
  NumPy arrays — sorted column indices and values — with amortized
  doubling growth, so the Sherman–Morrison scatter in
  :meth:`SparseMatrix.rank_one_update` is a vectorized
  ``searchsorted`` + fused in-place add per touched row instead of a
  Python dict transaction per touched *entry*;
* a column index (``column -> set of materialized rows``) keeps column
  extraction proportional to the column's non-zeros.

Rows are kept sorted by column index, which makes every traversal order
deterministic (run-to-run reproducibility) and lets dot products gather
straight out of a dense operand with one fancy-index read.

``mutations`` counts every state change; callers that memoize derived
quantities (:class:`repro.core.lstd.SparseLstd`'s dirty-row theta cache)
compare it to detect out-of-band writes such as the contract tests'
deliberate corruption.

Deferred rank-k updates (meghkern, ``REPRO_KERNEL``): when the kernel is
enabled (the default), :meth:`SparseMatrix.rank_one_update_from_column`
stages rank-1 updates in a :class:`repro.core.kern.PendingUpdates` engine
instead of scattering immediately.  Every read path flushes exactly the
rows it touches, replaying each row's staged contributions in submission
order — bit-identical to the eager path by construction (see the
``kern`` module docstring for the argument).  A staged update bumps
``mutations`` exactly once at enqueue; the flush itself is
representation preserving and bumps nothing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core import kern
from repro.errors import ConfigurationError

#: Magnitudes below this are dropped from the store, bounding fill-in noise.
PRUNE_EPSILON = 1e-14

#: Smallest materialized-row capacity; growth doubles from here.
_MIN_CAPACITY = 4


class _Row:
    """One materialized sparse row: sorted parallel index/value arrays.

    ``idx_data``/``val_data`` cache ``.ctypes.data`` for the C kernel:
    constructing the ctypes interface per access costs more than the
    kernel call itself on the hot path, so the pointers are refreshed
    only where the arrays are (re)allocated (here and in ``_grow``).
    """

    __slots__ = ("idx", "val", "n", "idx_data", "val_data")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        self.idx = np.empty(capacity, dtype=np.int64)
        self.val = np.empty(capacity, dtype=np.float64)
        self.n = 0
        self.idx_data = self.idx.ctypes.data
        self.val_data = self.val.ctypes.data


class SparseMatrix:
    """A ``dimension x dimension`` sparse matrix of floats.

    Never-touched rows store at most their diagonal entry in a shared
    dense array; touched rows are array-backed (see the module
    docstring).  The public API is value-compatible with the historical
    dict-of-dicts implementation.
    """

    def __init__(self, dimension: int, kernel: Optional[str] = None) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        self.dimension = dimension
        #: Diagonal entries of rows that were never materialized.
        self._diag = np.zeros(dimension, dtype=np.float64)
        self._rows: Dict[int, _Row] = {}
        self._cols: Dict[int, Set[int]] = {}
        #: Column -> cached ndarray of its stored support, for the hot
        #: enqueue-time prediction (:meth:`column_support`).  Invalidated
        #: on every *addition* to a column's row set; removals leave the
        #: cached array a stale superset, which every caller tolerates.
        self._support_cache: Dict[int, np.ndarray] = {}
        self._nnz = 0
        #: Bumped on every mutation; lets caches detect external writes.
        self.mutations = 0
        #: Deferred rank-k staging engine (None = eager legacy path).
        #: ``kernel`` overrides the ``REPRO_KERNEL`` environment choice.
        self._kernel_mode = kern.resolve_mode() if kernel is None else kernel
        self._pending = kern.make_pending(self._kernel_mode, dimension)

    @property
    def kernel_name(self) -> str:
        """Active flush backend: ``"c"``, ``"numpy"``, or ``"off"``."""
        if self._pending is None:
            return "off"
        return self._pending.backend.name

    @property
    def kernel_backend(self) -> Optional["kern.KernelBackend"]:
        """The active flush backend object (``None`` when deferral is off).

        Lets hot callers duck-type optional backend fast paths (e.g. the
        compiled kernel's fused row combine) without importing backend
        classes.
        """
        if self._pending is None:
            return None
        return self._pending.backend

    def kernel_stats(self) -> Dict[str, object]:
        """Snapshot of the deferred engine's profiling counters.

        Stable schema across backends (zeros when deferral is off) so
        benchmarks can diff two snapshots for a per-phase breakdown:
        ``enqueue_seconds``/``flush_seconds`` split the staging cost
        from the replay cost, and the count fields say how much work
        each phase did.
        """
        pending = self._pending
        if pending is None:
            return {
                "kernel": "off",
                "window": 0,
                "pending_count": 0,
                "enqueued": 0,
                "row_flushes": 0,
                "full_flushes": 0,
                "applied": 0,
                "skipped": 0,
                "enqueue_seconds": 0.0,
                "flush_seconds": 0.0,
            }
        return {
            "kernel": pending.backend.name,
            "window": pending.window,
            "pending_count": pending.pending_count,
            "enqueued": pending.enqueued,
            "row_flushes": pending.row_flushes,
            "full_flushes": pending.full_flushes,
            "applied": pending.applied,
            "skipped": pending.skipped,
            "enqueue_seconds": pending.enqueue_seconds,
            "flush_seconds": pending.flush_seconds,
        }

    def _row_raw(self, i: int) -> Optional[Tuple[int, int, int]]:
        """Row ``i`` as a raw ``(idx pointer, val pointer, length)`` triple.

        No flush and no bounds check: the caller must have settled the
        row (``flush_rows``) and owns index validity.  Returns ``None``
        for implicit-diagonal rows — callers fall back to
        :meth:`row_view`'s synthesized arrays there.  Pointers stay
        valid until the row's storage grows (any mutation of the row).
        """
        row = self._rows.get(i)
        if row is None:
            return None
        return (row.idx_data, row.val_data, row.n)

    @classmethod
    def identity(
        cls,
        dimension: int,
        scale: float = 1.0,
        kernel: Optional[str] = None,
    ) -> "SparseMatrix":
        """``scale * I`` — Megh's ``B_0 = (1/delta) I`` in one array fill."""
        matrix = cls(dimension, kernel=kernel)
        if abs(scale) > PRUNE_EPSILON:
            matrix._diag.fill(scale)
            matrix._nnz = dimension
            matrix.mutations += 1
        return matrix

    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self.dimension and 0 <= j < self.dimension):
            raise ConfigurationError(
                f"index ({i}, {j}) out of range for dimension {self.dimension}"
            )

    # ------------------------------------------------------------------
    # Deferred-kernel flush discipline (read-through resolution)
    # ------------------------------------------------------------------
    def _flush_row(self, i: int) -> None:
        """Apply row ``i``'s staged rank-1 contributions before a read."""
        pending = self._pending
        if pending is not None:
            pending.flush_row(self, i)

    def _flush_column(self, j: int) -> None:
        """Flush every row a staged update could touch in column ``j``."""
        pending = self._pending
        if pending is not None:
            pending.flush_column(self, j)

    def flush_rows(self, rows: np.ndarray) -> None:
        """Batched row flush — one kernel call for a whole dirty batch.

        Value-equivalent to flushing each row individually (flush order
        never changes floats — see the ``kern`` module docstring) but
        amortizes the per-call marshaling cost; the theta refresh path
        uses it before its per-row dot products.
        """
        pending = self._pending
        if pending is not None and pending.has_pending:
            pending.flush_rows(self, np.asarray(rows, dtype=np.int64))

    def flush_pending(self) -> None:
        """Apply every staged rank-1 update (grouped flush).

        Idempotent and representation preserving: the logical matrix
        value never changes, so ``mutations`` stays put.  Whole-matrix
        consumers (checkpoints, dense cross-checks, ``items``/``nnz``)
        call this; row/column reads flush narrower slices instead.
        """
        pending = self._pending
        if pending is not None and pending.has_pending:
            pending.flush_all(self)

    def column_support(self, j: int) -> np.ndarray:
        """Superset of the rows whose column-``j`` entry is nonzero.

        Without flushing anything: the stored support plus the row
        support of every staged update that touches column ``j``.  Exact
        modulo epsilon prunes and zero-weight skips — callers use it for
        conservative dirty-row invalidation (boolean masking) and for
        predicting the rows a new rank-1 update can touch (a zero-weight
        row costs one skipped lookup at replay, never a wrong float).
        Unsorted and may contain duplicates or rows whose entry has since
        been pruned — all harmless to mask scatters, and skipping the
        dedup (plus caching the stored support across calls) keeps
        enqueue integer-cheap.
        """
        self._check_index(0, j)
        parts: List[np.ndarray] = []
        stored = self._cols.get(j)
        if stored:
            cached = self._support_cache.get(j)
            if cached is None:
                cached = np.fromiter(stored, dtype=np.int64, count=len(stored))
                self._support_cache[j] = cached
            parts.append(cached)
        if j not in self._rows and self._diag[j] != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
            parts.append(np.array([j], dtype=np.int64))
        pending = self._pending
        if pending is not None and pending.has_pending:
            parts.extend(pending.pending_rows_for_column(j))
        if not parts:
            return np.empty(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _entry(self, i: int, j: int) -> float:
        """Stored entry ``(i, j)`` with *no* flush — the replay weight read."""
        row = self._rows.get(i)
        if row is None:
            return float(self._diag[i]) if i == j else 0.0
        n = row.n
        position = int(np.searchsorted(row.idx[:n], j))
        if position < n and row.idx[position] == j:
            return float(row.val[position])
        return 0.0

    # ------------------------------------------------------------------
    # Row materialization and maintenance
    # ------------------------------------------------------------------
    def _materialize(self, i: int) -> _Row:
        """Promote row ``i`` from the implicit-diagonal store to arrays."""
        row = _Row()
        diagonal = self._diag[i]
        if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel: 0.0 means "absent"
            row.idx[0] = i
            row.val[0] = diagonal
            row.n = 1
            self._diag[i] = 0.0  # meghlint: ignore[MEGH011] -- representation-preserving move of the diagonal; no logical state change
            self._cols.setdefault(i, set()).add(i)  # meghlint: ignore[MEGH011] -- representation-preserving move of the diagonal; no logical state change
            self._support_cache.pop(i, None)
        self._rows[i] = row  # meghlint: ignore[MEGH011] -- representation-preserving move of the diagonal; no logical state change
        return row

    def _grow(self, row: _Row, needed: int) -> None:
        capacity = row.idx.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(2 * capacity, needed, _MIN_CAPACITY)
        idx = np.empty(new_capacity, dtype=np.int64)
        val = np.empty(new_capacity, dtype=np.float64)
        idx[: row.n] = row.idx[: row.n]
        val[: row.n] = row.val[: row.n]
        row.idx = idx
        row.val = val
        row.idx_data = idx.ctypes.data
        row.val_data = val.ctypes.data

    def _insert_many(
        self,
        i: int,
        row: _Row,
        positions: np.ndarray,
        columns: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Merge ``columns``/``values`` (sorted) into the row at ``positions``."""
        count = int(columns.shape[0])
        if count == 0:
            return
        n = row.n
        needed = n + count
        old_idx = row.idx[:n].copy()
        old_val = row.val[:n].copy()
        self._grow(row, needed)
        target = np.zeros(needed, dtype=bool)
        target[positions + np.arange(count, dtype=np.int64)] = True
        prefix_idx = row.idx[:needed]
        prefix_val = row.val[:needed]
        prefix_idx[target] = columns
        prefix_val[target] = values
        prefix_idx[~target] = old_idx
        prefix_val[~target] = old_val
        row.n = needed
        support_cache = self._support_cache
        for j in columns.tolist():
            self._cols.setdefault(j, set()).add(i)  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating
            support_cache.pop(j, None)
        self._nnz += count  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating

    def _remove_positions(self, i: int, row: _Row, positions: np.ndarray) -> None:
        count = int(positions.shape[0])
        if count == 0:
            return
        n = row.n
        removed = row.idx[positions]
        keep = np.ones(n, dtype=bool)
        keep[positions] = False
        row.idx[: n - count] = row.idx[:n][keep]
        row.val[: n - count] = row.val[:n][keep]
        row.n = n - count
        for j in removed.tolist():
            rows_of_column = self._cols.get(j)
            if rows_of_column is not None:
                rows_of_column.discard(i)
                if not rows_of_column:
                    del self._cols[j]  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating
        self._nnz -= count  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating
        if row.n == 0:
            del self._rows[i]  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating

    # ------------------------------------------------------------------
    # Scalar access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> float:
        """Entry ``(i, j)``; 0 when unstored."""
        self._check_index(i, j)
        self._flush_row(i)
        row = self._rows.get(i)
        if row is None:
            return float(self._diag[i]) if i == j else 0.0
        n = row.n
        position = int(np.searchsorted(row.idx[:n], j))
        if position < n and row.idx[position] == j:
            return float(row.val[position])
        return 0.0

    def set(self, i: int, j: int, value: float) -> None:
        """Store (or, for tiny values, erase) entry ``(i, j)``."""
        self._check_index(i, j)
        self._flush_row(i)
        self.mutations += 1
        row = self._rows.get(i)
        if abs(value) <= PRUNE_EPSILON:
            if row is None:
                if i == j and self._diag[i] != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                    self._diag[i] = 0.0
                    self._nnz -= 1
                return
            n = row.n
            position = int(np.searchsorted(row.idx[:n], j))
            if position < n and row.idx[position] == j:
                self._remove_positions(
                    i, row, np.array([position], dtype=np.int64)
                )
            return
        if row is None:
            if i == j:
                if self._diag[i] == 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                    self._nnz += 1
                self._diag[i] = value
                return
            row = self._materialize(i)
        n = row.n
        position = int(np.searchsorted(row.idx[:n], j))
        if position < n and row.idx[position] == j:
            row.val[position] = value
            return
        self._insert_many(
            i,
            row,
            np.array([position], dtype=np.int64),
            np.array([j], dtype=np.int64),
            np.array([value], dtype=np.float64),
        )

    def add(self, i: int, j: int, delta: float) -> None:
        """In-place ``B[i, j] += delta``."""
        self.set(i, j, self.get(i, j) + delta)

    # ------------------------------------------------------------------
    # Row / column extraction
    # ------------------------------------------------------------------
    def row(self, i: int) -> Dict[int, float]:
        """Non-zero entries of row ``i`` (a copy, in column order)."""
        self._check_index(i, 0)
        self._flush_row(i)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return {i: float(diagonal)}
            return {}
        n = row.n
        return dict(zip(row.idx[:n].tolist(), row.val[:n].tolist()))

    def row_view(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ``i`` as ``(indices, values)`` arrays sorted by column.

        Materialized rows return *views* into the live storage — copy
        before mutating the matrix.  Implicit-diagonal rows return fresh
        one-element (or empty) arrays.
        """
        self._check_index(i, 0)
        self._flush_row(i)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return (
                    np.array([i], dtype=np.int64),
                    np.array([diagonal], dtype=np.float64),
                )
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return row.idx[: row.n], row.val[: row.n]

    def column(self, j: int) -> Dict[int, float]:
        """Non-zero entries of column ``j`` (a copy, in row order)."""
        self._check_index(0, j)
        self._flush_column(j)
        result: Dict[int, float] = {}
        for i in self.rows_with_column(j):
            result[i] = self.get(i, j)
        return result

    def rows_with_column(self, j: int) -> List[int]:
        """Sorted rows holding a stored entry in column ``j``.

        This is the support of ``B e_j`` — exactly the set of rows whose
        ``theta`` entry can change when column ``j`` (or ``z[j]``) does,
        which is what the dirty-row cache invalidates.
        """
        self._check_index(0, j)
        self._flush_column(j)
        rows = sorted(self._cols.get(j, ()))
        if j not in self._rows and self._diag[j] != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
            rows.append(j)
            rows.sort()
        return rows

    # ------------------------------------------------------------------
    # Dot products
    # ------------------------------------------------------------------
    def row_dot(self, i: int, vector: Dict[int, float]) -> float:
        """Dot product of row ``i`` with a sparse (dict) vector."""
        self._check_index(i, 0)
        self._flush_row(i)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return float(diagonal * vector.get(i, 0.0))
            return 0.0
        n = row.n
        if n == 0:
            return 0.0
        count = len(vector)
        stored = row.idx[:n]
        gathered = np.zeros(n, dtype=np.float64)
        if count:
            keys = np.fromiter(vector.keys(), dtype=np.int64, count=count)
            vals = np.fromiter(vector.values(), dtype=np.float64, count=count)
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            vals = vals[order]
            positions = np.searchsorted(keys, stored)
            in_range = positions < count
            hits = np.zeros(n, dtype=bool)
            hits[in_range] = keys[positions[in_range]] == stored[in_range]
            gathered[hits] = vals[positions[hits]]
        return float(np.dot(row.val[:n], gathered))

    def row_dot_dense(self, i: int, dense_vector: np.ndarray) -> float:
        """Dot product of row ``i`` with a dense operand — the hot path.

        One fancy-index gather plus one BLAS dot; no per-entry Python.
        """
        pending = self._pending
        if pending is not None:
            pending.flush_row(self, i)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return float(diagonal * dense_vector[i])
            return 0.0
        n = row.n
        if n == 0:
            return 0.0
        return float(np.dot(row.val[:n], dense_vector[row.idx[:n]]))

    # ------------------------------------------------------------------
    # The Sherman–Morrison core
    # ------------------------------------------------------------------
    def rank_one_update(
        self, col: Dict[int, float], row: Dict[int, float], scale: float
    ) -> None:
        """``B += scale * col (x) row`` — vectorized scatter per touched row.

        Cost is O(nnz(col) * nnz(row) / simd) plus one Python iteration
        per *row* touched (never per entry), independent of dimension.
        """
        if scale == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit; any nonzero scale must update
            return
        count = len(row)
        columns = np.fromiter(row.keys(), dtype=np.int64, count=count)
        values = np.fromiter(row.values(), dtype=np.float64, count=count)
        self.rank_one_update_arrays(col, columns, values, scale)

    def rank_one_update_arrays(
        self,
        col: Dict[int, float],
        columns: np.ndarray,
        values: np.ndarray,
        scale: float,
    ) -> None:
        """:meth:`rank_one_update` with the right factor pre-flattened.

        ``columns``/``values`` need not be sorted or zero-free; both are
        normalized here once, then every touched row shares the sorted
        scatter plan.
        """
        if scale == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit; any nonzero scale must update
            return
        nonzero = values != 0.0  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
        if not nonzero.all():
            columns = columns[nonzero]
            values = values[nonzero]
        if columns.shape[0] == 0:
            return
        order = np.argsort(columns, kind="stable")
        columns = columns[order]
        values = values[order]
        pending = self._pending
        if pending is not None and pending.has_pending:
            for i in col:
                pending.flush_row(self, i)
        self.mutations += 1
        for i, weight in col.items():
            if weight == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
                continue
            self._scatter_add(i, columns, (scale * weight) * values)

    def rank_one_update_from_column(
        self,
        pivot: int,
        columns: np.ndarray,
        values: np.ndarray,
        scale: float,
        assume_normalized: bool = False,
    ) -> np.ndarray:
        """``B += scale * B[:, pivot] (x) right`` — Megh's Eq. 11 shape.

        Value-equivalent to ``rank_one_update_arrays(self.column(pivot),
        columns, values, scale)`` but, with the deferred kernel enabled,
        stages the update instead of scattering: enqueue records only the
        normalized right factor and the *integer* row support of column
        ``pivot`` (the left-factor weight for row ``i`` is ``B[i, pivot]``
        — an entry of row ``i`` itself, so each row's flush can read it
        at replay time).  Returns the superset of touched rows, which is
        exactly what the theta dirty-row cache must invalidate.

        ``assume_normalized=True`` promises ``columns`` is sorted unique
        and ``values`` zero-free (the compiled combine helper emits this
        form), skipping the normalization pass.
        """
        self._check_index(0, pivot)
        if scale == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit; any nonzero scale must update
            return np.empty(0, dtype=np.int64)
        if not assume_normalized:
            nonzero = values != 0.0  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
            if not nonzero.all():
                columns = columns[nonzero]
                values = values[nonzero]
            if columns.shape[0] > 1 and not bool(
                (columns[1:] > columns[:-1]).all()
            ):
                order = np.argsort(columns, kind="stable")
                columns = columns[order]
                values = values[order]
        if columns.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        pending = self._pending
        if pending is None:
            bu = self.column(pivot)
            self.rank_one_update_arrays(bu, columns, values, scale)
            return np.fromiter(bu.keys(), dtype=np.int64, count=len(bu))
        # Retire a full window *before* reading the support so the
        # stored image is settled: after the flush no row is dirty, so
        # the stored support below is exact, and mid-window the staged
        # reachability argument (next comment) holds unbroken.
        if pending.pending_count >= pending.window:
            pending.flush_all(self)
        # Enqueue marks only the *stored* support (plus the implicit
        # diagonal): a row reachable solely through an earlier staged
        # update is already dirty — it was marked when the first update
        # that could touch it was staged, and marking never advances the
        # replay watermark — so re-marking it here is a no-op the old
        # full-superset scatter paid for on every enqueue.  The returned
        # invalidation superset still includes every pending row.
        parts: List[np.ndarray] = []
        stored = self._cols.get(pivot)
        if stored:
            cached = self._support_cache.get(pivot)
            if cached is None:
                cached = np.fromiter(
                    stored, dtype=np.int64, count=len(stored)
                )
                self._support_cache[pivot] = cached
            parts.append(cached)
        if pivot not in self._rows and self._diag[pivot] != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
            parts.append(np.array([pivot], dtype=np.int64))
        self.mutations += 1
        if parts:
            enqueue_rows = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
            pending.enqueue(self, pivot, scale, columns, values, enqueue_rows)
        elif pending.has_pending:
            # No stored support, but dirty rows may still gain a pivot
            # entry from earlier staged updates — the update must stage
            # (their replay covers it); it just marks nothing new.
            pending.enqueue(
                self, pivot, scale, columns, values,
                np.empty(0, dtype=np.int64),
            )
        else:
            # Column ``pivot`` is identically zero: a provable no-op.
            return np.empty(0, dtype=np.int64)
        parts.extend(pending.pending_rows_for_column(pivot))
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _scatter_add(
        self, i: int, columns: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Row ``i`` += sparse vector (``columns`` sorted, pre-scaled)."""
        row = self._rows.get(i)
        if row is None:
            row = self._materialize(i)
        n = row.n
        stored = row.idx[:n]
        positions = np.searchsorted(stored, columns)
        in_range = positions < n
        exists = np.zeros(columns.shape[0], dtype=bool)
        if n:
            exists[in_range] = stored[positions[in_range]] == columns[in_range]
        if exists.any():
            hit = positions[exists]
            row.val[hit] += deltas[exists]
            dead = hit[np.abs(row.val[hit]) <= PRUNE_EPSILON]
            if dead.shape[0]:
                self._remove_positions(i, row, dead)
                row = self._rows.get(i)
        fresh = ~exists
        if fresh.any():
            alive = np.abs(deltas[fresh]) > PRUNE_EPSILON
            new_columns = columns[fresh][alive]
            if new_columns.shape[0]:
                if row is None:
                    row = self._materialize(i)
                new_positions = np.searchsorted(
                    row.idx[: row.n], new_columns
                )
                self._insert_many(
                    i, row, new_positions, new_columns, deltas[fresh][alive]
                )
        # Single exit: every path — hit-only, fresh-insert, or the
        # boundary case where hits prune the row empty while all fresh
        # inserts are dead — runs the empty-row cleanup.  (After
        # _insert_many ``row.n > 0``, so the cleanup is a no-op there.)
        if row is not None and row.n == 0 and i in self._rows:
            del self._rows[i]  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries — the Q-table size (Fig 7)."""
        self.flush_pending()
        return self._nnz

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(i, j, value)`` in (row, column) order."""
        self.flush_pending()
        implicit = np.nonzero(self._diag)[0]
        touched = sorted(set(self._rows).union(implicit.tolist()))
        for i in touched:
            row = self._rows.get(i)
            if row is None:
                yield (i, i, float(self._diag[i]))
                continue
            n = row.n
            for j, value in zip(row.idx[:n].tolist(), row.val[:n].tolist()):
                yield (i, j, value)

    def to_dense(self) -> np.ndarray:
        """Dense copy — for tests and small ablations only."""
        self.flush_pending()
        dense = np.zeros((self.dimension, self.dimension))
        implicit = np.nonzero(self._diag)[0]
        dense[implicit, implicit] = self._diag[implicit]
        for i, row in self._rows.items():
            n = row.n
            dense[i, row.idx[:n]] = row.val[:n]
        return dense

    def copy(self) -> "SparseMatrix":
        """Deep copy (pendings flushed first; the clone starts clean)."""
        self.flush_pending()
        clone = SparseMatrix(self.dimension, kernel=self._kernel_mode)
        clone._diag = self._diag.copy()
        for i, row in self._rows.items():
            duplicate = _Row(capacity=row.idx.shape[0])
            duplicate.idx[: row.n] = row.idx[: row.n]
            duplicate.val[: row.n] = row.val[: row.n]
            duplicate.n = row.n
            clone._rows[i] = duplicate
        clone._cols = {j: set(rows) for j, rows in self._cols.items()}
        clone._nnz = self._nnz
        clone.mutations = self.mutations
        return clone
