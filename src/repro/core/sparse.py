"""Sparse square matrix specialised for Megh's update pattern (Section 5.2).

The inverse operator ``B`` starts diagonal and is only ever modified by
rank-1 updates whose left factor is a single column of ``B`` and whose
right factor combines two rows of ``B``.  Every operation Megh needs is
therefore proportional to the number of stored non-zeros touched — the
"triplet" property the paper credits for Megh's real-time speed.

Storage layout (the vectorized rewrite of the original dict-of-dicts):

* the diagonal of rows that have never seen fill-in lives in one dense
  ``float64`` array (``B_0 = (1/delta) I`` costs one ``fill``, not ``d``
  dict inserts);
* a row touched by an update is *materialized* into a pair of parallel
  NumPy arrays — sorted column indices and values — with amortized
  doubling growth, so the Sherman–Morrison scatter in
  :meth:`SparseMatrix.rank_one_update` is a vectorized
  ``searchsorted`` + fused in-place add per touched row instead of a
  Python dict transaction per touched *entry*;
* a column index (``column -> set of materialized rows``) keeps column
  extraction proportional to the column's non-zeros.

Rows are kept sorted by column index, which makes every traversal order
deterministic (run-to-run reproducibility) and lets dot products gather
straight out of a dense operand with one fancy-index read.

``mutations`` counts every state change; callers that memoize derived
quantities (:class:`repro.core.lstd.SparseLstd`'s dirty-row theta cache)
compare it to detect out-of-band writes such as the contract tests'
deliberate corruption.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Magnitudes below this are dropped from the store, bounding fill-in noise.
PRUNE_EPSILON = 1e-14

#: Smallest materialized-row capacity; growth doubles from here.
_MIN_CAPACITY = 4


class _Row:
    """One materialized sparse row: sorted parallel index/value arrays."""

    __slots__ = ("idx", "val", "n")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        self.idx = np.empty(capacity, dtype=np.int64)
        self.val = np.empty(capacity, dtype=np.float64)
        self.n = 0


class SparseMatrix:
    """A ``dimension x dimension`` sparse matrix of floats.

    Never-touched rows store at most their diagonal entry in a shared
    dense array; touched rows are array-backed (see the module
    docstring).  The public API is value-compatible with the historical
    dict-of-dicts implementation.
    """

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        self.dimension = dimension
        #: Diagonal entries of rows that were never materialized.
        self._diag = np.zeros(dimension, dtype=np.float64)
        self._rows: Dict[int, _Row] = {}
        self._cols: Dict[int, Set[int]] = {}
        self._nnz = 0
        #: Bumped on every mutation; lets caches detect external writes.
        self.mutations = 0

    @classmethod
    def identity(cls, dimension: int, scale: float = 1.0) -> "SparseMatrix":
        """``scale * I`` — Megh's ``B_0 = (1/delta) I`` in one array fill."""
        matrix = cls(dimension)
        if abs(scale) > PRUNE_EPSILON:
            matrix._diag.fill(scale)
            matrix._nnz = dimension
            matrix.mutations += 1
        return matrix

    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self.dimension and 0 <= j < self.dimension):
            raise ConfigurationError(
                f"index ({i}, {j}) out of range for dimension {self.dimension}"
            )

    # ------------------------------------------------------------------
    # Row materialization and maintenance
    # ------------------------------------------------------------------
    def _materialize(self, i: int) -> _Row:
        """Promote row ``i`` from the implicit-diagonal store to arrays."""
        row = _Row()
        diagonal = self._diag[i]
        if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel: 0.0 means "absent"
            row.idx[0] = i
            row.val[0] = diagonal
            row.n = 1
            self._diag[i] = 0.0  # meghlint: ignore[MEGH011] -- representation-preserving move of the diagonal; no logical state change
            self._cols.setdefault(i, set()).add(i)  # meghlint: ignore[MEGH011] -- representation-preserving move of the diagonal; no logical state change
        self._rows[i] = row  # meghlint: ignore[MEGH011] -- representation-preserving move of the diagonal; no logical state change
        return row

    def _grow(self, row: _Row, needed: int) -> None:
        capacity = row.idx.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(2 * capacity, needed, _MIN_CAPACITY)
        idx = np.empty(new_capacity, dtype=np.int64)
        val = np.empty(new_capacity, dtype=np.float64)
        idx[: row.n] = row.idx[: row.n]
        val[: row.n] = row.val[: row.n]
        row.idx = idx
        row.val = val

    def _insert_many(
        self,
        i: int,
        row: _Row,
        positions: np.ndarray,
        columns: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Merge ``columns``/``values`` (sorted) into the row at ``positions``."""
        count = int(columns.shape[0])
        if count == 0:
            return
        n = row.n
        needed = n + count
        old_idx = row.idx[:n].copy()
        old_val = row.val[:n].copy()
        self._grow(row, needed)
        target = np.zeros(needed, dtype=bool)
        target[positions + np.arange(count)] = True
        prefix_idx = row.idx[:needed]
        prefix_val = row.val[:needed]
        prefix_idx[target] = columns
        prefix_val[target] = values
        prefix_idx[~target] = old_idx
        prefix_val[~target] = old_val
        row.n = needed
        for j in columns.tolist():
            self._cols.setdefault(j, set()).add(i)  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating
        self._nnz += count  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating

    def _remove_positions(self, i: int, row: _Row, positions: np.ndarray) -> None:
        count = int(positions.shape[0])
        if count == 0:
            return
        n = row.n
        removed = row.idx[positions]
        keep = np.ones(n, dtype=bool)
        keep[positions] = False
        row.idx[: n - count] = row.idx[:n][keep]
        row.val[: n - count] = row.val[:n][keep]
        row.n = n - count
        for j in removed.tolist():
            rows_of_column = self._cols.get(j)
            if rows_of_column is not None:
                rows_of_column.discard(i)
                if not rows_of_column:
                    del self._cols[j]  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating
        self._nnz -= count  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating
        if row.n == 0:
            del self._rows[i]  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating

    # ------------------------------------------------------------------
    # Scalar access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> float:
        """Entry ``(i, j)``; 0 when unstored."""
        self._check_index(i, j)
        row = self._rows.get(i)
        if row is None:
            return float(self._diag[i]) if i == j else 0.0
        n = row.n
        position = int(np.searchsorted(row.idx[:n], j))
        if position < n and row.idx[position] == j:
            return float(row.val[position])
        return 0.0

    def set(self, i: int, j: int, value: float) -> None:
        """Store (or, for tiny values, erase) entry ``(i, j)``."""
        self._check_index(i, j)
        self.mutations += 1
        row = self._rows.get(i)
        if abs(value) <= PRUNE_EPSILON:
            if row is None:
                if i == j and self._diag[i] != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                    self._diag[i] = 0.0
                    self._nnz -= 1
                return
            n = row.n
            position = int(np.searchsorted(row.idx[:n], j))
            if position < n and row.idx[position] == j:
                self._remove_positions(
                    i, row, np.array([position], dtype=np.int64)
                )
            return
        if row is None:
            if i == j:
                if self._diag[i] == 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                    self._nnz += 1
                self._diag[i] = value
                return
            row = self._materialize(i)
        n = row.n
        position = int(np.searchsorted(row.idx[:n], j))
        if position < n and row.idx[position] == j:
            row.val[position] = value
            return
        self._insert_many(
            i,
            row,
            np.array([position], dtype=np.int64),
            np.array([j], dtype=np.int64),
            np.array([value], dtype=np.float64),
        )

    def add(self, i: int, j: int, delta: float) -> None:
        """In-place ``B[i, j] += delta``."""
        self.set(i, j, self.get(i, j) + delta)

    # ------------------------------------------------------------------
    # Row / column extraction
    # ------------------------------------------------------------------
    def row(self, i: int) -> Dict[int, float]:
        """Non-zero entries of row ``i`` (a copy, in column order)."""
        self._check_index(i, 0)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return {i: float(diagonal)}
            return {}
        n = row.n
        return dict(zip(row.idx[:n].tolist(), row.val[:n].tolist()))

    def row_view(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ``i`` as ``(indices, values)`` arrays sorted by column.

        Materialized rows return *views* into the live storage — copy
        before mutating the matrix.  Implicit-diagonal rows return fresh
        one-element (or empty) arrays.
        """
        self._check_index(i, 0)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return (
                    np.array([i], dtype=np.int64),
                    np.array([diagonal], dtype=np.float64),
                )
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return row.idx[: row.n], row.val[: row.n]

    def column(self, j: int) -> Dict[int, float]:
        """Non-zero entries of column ``j`` (a copy, in row order)."""
        self._check_index(0, j)
        result: Dict[int, float] = {}
        for i in self.rows_with_column(j):
            result[i] = self.get(i, j)
        return result

    def rows_with_column(self, j: int) -> List[int]:
        """Sorted rows holding a stored entry in column ``j``.

        This is the support of ``B e_j`` — exactly the set of rows whose
        ``theta`` entry can change when column ``j`` (or ``z[j]``) does,
        which is what the dirty-row cache invalidates.
        """
        self._check_index(0, j)
        rows = sorted(self._cols.get(j, ()))
        if j not in self._rows and self._diag[j] != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
            rows.append(j)
            rows.sort()
        return rows

    # ------------------------------------------------------------------
    # Dot products
    # ------------------------------------------------------------------
    def row_dot(self, i: int, vector: Dict[int, float]) -> float:
        """Dot product of row ``i`` with a sparse (dict) vector."""
        self._check_index(i, 0)
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return float(diagonal * vector.get(i, 0.0))
            return 0.0
        n = row.n
        if n == 0:
            return 0.0
        gathered = np.fromiter(
            (vector.get(j, 0.0) for j in row.idx[:n].tolist()),
            dtype=np.float64,
            count=n,
        )
        return float(np.dot(row.val[:n], gathered))

    def row_dot_dense(self, i: int, dense_vector: np.ndarray) -> float:
        """Dot product of row ``i`` with a dense operand — the hot path.

        One fancy-index gather plus one BLAS dot; no per-entry Python.
        """
        row = self._rows.get(i)
        if row is None:
            diagonal = self._diag[i]
            if diagonal != 0.0:  # meghlint: ignore[MEGH003] -- exact store sentinel
                return float(diagonal * dense_vector[i])
            return 0.0
        n = row.n
        if n == 0:
            return 0.0
        return float(np.dot(row.val[:n], dense_vector[row.idx[:n]]))

    # ------------------------------------------------------------------
    # The Sherman–Morrison core
    # ------------------------------------------------------------------
    def rank_one_update(
        self, col: Dict[int, float], row: Dict[int, float], scale: float
    ) -> None:
        """``B += scale * col (x) row`` — vectorized scatter per touched row.

        Cost is O(nnz(col) * nnz(row) / simd) plus one Python iteration
        per *row* touched (never per entry), independent of dimension.
        """
        if scale == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit; any nonzero scale must update
            return
        count = len(row)
        columns = np.fromiter(row.keys(), dtype=np.int64, count=count)
        values = np.fromiter(row.values(), dtype=np.float64, count=count)
        self.rank_one_update_arrays(col, columns, values, scale)

    def rank_one_update_arrays(
        self,
        col: Dict[int, float],
        columns: np.ndarray,
        values: np.ndarray,
        scale: float,
    ) -> None:
        """:meth:`rank_one_update` with the right factor pre-flattened.

        ``columns``/``values`` need not be sorted or zero-free; both are
        normalized here once, then every touched row shares the sorted
        scatter plan.
        """
        if scale == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit; any nonzero scale must update
            return
        nonzero = values != 0.0  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
        if not nonzero.all():
            columns = columns[nonzero]
            values = values[nonzero]
        if columns.shape[0] == 0:
            return
        order = np.argsort(columns, kind="stable")
        columns = columns[order]
        values = values[order]
        self.mutations += 1
        for i, weight in col.items():
            if weight == 0.0:  # meghlint: ignore[MEGH003] -- exact-zero short-circuit, not a tolerance decision
                continue
            self._scatter_add(i, columns, (scale * weight) * values)

    def _scatter_add(
        self, i: int, columns: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Row ``i`` += sparse vector (``columns`` sorted, pre-scaled)."""
        row = self._rows.get(i)
        if row is None:
            row = self._materialize(i)
        n = row.n
        stored = row.idx[:n]
        positions = np.searchsorted(stored, columns)
        in_range = positions < n
        exists = np.zeros(columns.shape[0], dtype=bool)
        if n:
            exists[in_range] = stored[positions[in_range]] == columns[in_range]
        if exists.any():
            hit = positions[exists]
            row.val[hit] += deltas[exists]
            dead = hit[np.abs(row.val[hit]) <= PRUNE_EPSILON]
            if dead.shape[0]:
                self._remove_positions(i, row, dead)
                row = self._rows.get(i)
        fresh = ~exists
        if fresh.any():
            alive = np.abs(deltas[fresh]) > PRUNE_EPSILON
            new_columns = columns[fresh][alive]
            if new_columns.shape[0]:
                if row is None:
                    row = self._materialize(i)
                new_positions = np.searchsorted(
                    row.idx[: row.n], new_columns
                )
                self._insert_many(
                    i, row, new_positions, new_columns, deltas[fresh][alive]
                )
                return
        if row is not None and row.n == 0:
            del self._rows[i]  # meghlint: ignore[MEGH011] -- counter bumped by the public entry point (set/row_axpy) before delegating

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries — the Q-table size (Fig 7)."""
        return self._nnz

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(i, j, value)`` in (row, column) order."""
        implicit = np.nonzero(self._diag)[0]
        touched = sorted(set(self._rows).union(implicit.tolist()))
        for i in touched:
            row = self._rows.get(i)
            if row is None:
                yield (i, i, float(self._diag[i]))
                continue
            n = row.n
            for j, value in zip(row.idx[:n].tolist(), row.val[:n].tolist()):
                yield (i, j, value)

    def to_dense(self) -> np.ndarray:
        """Dense copy — for tests and small ablations only."""
        dense = np.zeros((self.dimension, self.dimension))
        implicit = np.nonzero(self._diag)[0]
        dense[implicit, implicit] = self._diag[implicit]
        for i, row in self._rows.items():
            n = row.n
            dense[i, row.idx[:n]] = row.val[:n]
        return dense

    def copy(self) -> "SparseMatrix":
        """Deep copy."""
        clone = SparseMatrix(self.dimension)
        clone._diag = self._diag.copy()
        for i, row in self._rows.items():
            duplicate = _Row(capacity=row.idx.shape[0])
            duplicate.idx[: row.n] = row.idx[: row.n]
            duplicate.val[: row.n] = row.val[: row.n]
            duplicate.n = row.n
            clone._rows[i] = duplicate
        clone._cols = {j: set(rows) for j, rows in self._cols.items()}
        clone._nnz = self._nnz
        clone.mutations = self.mutations
        return clone
