"""Numerical validation of the paper's Theorems 1 and 2.

* **Theorem 1** (unique projection): there exists a unique
  ``theta in R^d`` with ``V(s) = theta^T phi_pi(s)``.  With Megh's
  one-hot basis, the matrix stacking the basis vectors of any policy's
  action choices has full rank whenever the choices are distinct —
  :func:`projection_matrix` builds it and
  :func:`verify_unique_projection` checks invertibility and recovers the
  unique ``theta`` for a given value assignment.

* **Theorem 2** (convergence): the Bellman update
  ``(Mv)(s) = min_{s'} E[C(s, s') + gamma v(s')]`` is a
  ``gamma``-contraction in the sup norm, so value iteration converges to
  a unique fixed point.  :func:`verify_contraction` samples random value
  functions on a random reachability structure and measures the worst
  observed ratio ``||Mv - Mu|| / ||v - u||``;
  :func:`fixed_point_iteration` exhibits the geometric convergence.

These are the proof obligations, checked numerically; the tests in
``tests/core/test_theory.py`` pin them down.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mdp.action import ActionSpace, MigrationAction


def projection_matrix(
    action_space: ActionSpace, policy_actions: Sequence[MigrationAction]
) -> np.ndarray:
    """Stack ``phi_{pi(s^i)}`` rows for the states' policy choices.

    Theorem 1's ``Psi``: row ``i`` is the basis vector of the action the
    policy takes in reachable state ``s^i``.
    """
    matrix = np.zeros((len(policy_actions), action_space.dimension))
    for row, action in enumerate(policy_actions):
        matrix[row, action_space.index(action)] = 1.0
    return matrix


def verify_unique_projection(
    action_space: ActionSpace,
    policy_actions: Sequence[MigrationAction],
    values: Sequence[float],
) -> Tuple[bool, np.ndarray]:
    """Check Theorem 1 on a concrete instance.

    Returns ``(unique, theta)``: ``unique`` is true when the policy's
    action choices are distinct (the stacked one-hot rows are linearly
    independent), in which case ``theta`` reproduces ``values`` exactly
    via ``Psi theta = V`` and is the *minimum-norm* such vector.
    """
    if len(policy_actions) != len(values):
        raise ConfigurationError("need one value per policy action")
    psi = projection_matrix(action_space, policy_actions)
    rank = int(np.linalg.matrix_rank(psi))
    unique = rank == len(policy_actions)
    theta, *_ = np.linalg.lstsq(psi, np.asarray(values, dtype=np.float64), rcond=None)
    return unique, theta


def random_reachability(
    num_states: int, branching: int, rng: np.random.Generator
) -> List[List[int]]:
    """Random successor sets: each state reaches ``branching`` states.

    Models the paper's ``S_s`` — the states one migration away.
    """
    if num_states < 1 or branching < 1:
        raise ConfigurationError("need >= 1 state and branching")
    successors = []
    for _ in range(num_states):
        successors.append(
            sorted(
                int(s)
                for s in rng.choice(
                    num_states, size=min(branching, num_states), replace=False
                )
            )
        )
    return successors


def bellman_operator(
    values: np.ndarray,
    costs: np.ndarray,
    successors: Sequence[Sequence[int]],
    gamma: float,
) -> np.ndarray:
    """Apply ``(Mv)(s) = min_{s' in S_s} [C(s, s') + gamma v(s')]``."""
    if not 0 <= gamma < 1:
        raise ConfigurationError("gamma must be in [0, 1)")
    updated = np.empty_like(values, dtype=np.float64)
    for state, options in enumerate(successors):
        updated[state] = min(
            costs[state, nxt] + gamma * values[nxt] for nxt in options
        )
    return updated


def verify_contraction(
    num_states: int = 12,
    branching: int = 4,
    gamma: float = 0.5,
    trials: int = 50,
    seed: int = 0,
) -> float:
    """Worst observed ``||Mv - Mu||_inf / ||v - u||_inf`` over random pairs.

    Theorem 2 requires this to be at most ``gamma``; the return value
    lets callers assert it with a numerical margin.
    """
    rng = np.random.default_rng(seed)
    successors = random_reachability(num_states, branching, rng)
    costs = rng.uniform(0.1, 2.0, size=(num_states, num_states))
    worst = 0.0
    for _ in range(trials):
        v = rng.normal(0.0, 5.0, size=num_states)
        u = rng.normal(0.0, 5.0, size=num_states)
        gap = float(np.max(np.abs(v - u)))
        if gap <= 0.0:
            continue
        mv = bellman_operator(v, costs, successors, gamma)
        mu = bellman_operator(u, costs, successors, gamma)
        ratio = float(np.max(np.abs(mv - mu))) / gap
        worst = max(worst, ratio)
    return worst


def fixed_point_iteration(
    num_states: int = 12,
    branching: int = 4,
    gamma: float = 0.5,
    iterations: int = 60,
    seed: int = 0,
) -> Tuple[np.ndarray, List[float]]:
    """Iterate ``v <- Mv`` from zero; returns ``(v*, residual history)``.

    The residuals ``||v_{k+1} - v_k||_inf`` must decay geometrically at
    rate ``gamma`` — the convergence Theorem 2 promises Algorithm 1
    inherits from LSPI.
    """
    rng = np.random.default_rng(seed)
    successors = random_reachability(num_states, branching, rng)
    costs = rng.uniform(0.1, 2.0, size=(num_states, num_states))
    values = np.zeros(num_states)
    residuals: List[float] = []
    for _ in range(iterations):
        updated = bellman_operator(values, costs, successors, gamma)
        residuals.append(float(np.max(np.abs(updated - values))))
        values = updated
    return values, residuals
