"""Megh decision tracing.

Understanding *why* the agent moved a VM means seeing what it compared:
the candidate set, the Q-values, the temperature, and the normalized
cost that drove the last update.  :class:`DecisionTrace` captures one
:class:`DecisionRecord` per step when attached to a
:class:`~repro.core.agent.MeghScheduler` via ``trace=``; the learning-
inspection example renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DecisionRecord:
    """What the agent saw and did at one step."""

    step: int
    temperature: float
    normalized_cost: Optional[float]
    num_candidate_vms: int
    num_candidate_actions: int
    chosen: Tuple[Tuple[int, int], ...]  # (vm_id, dest_pm_id) executed
    chosen_q: Tuple[float, ...]
    q_table_nonzeros: int


@dataclass
class DecisionTrace:
    """Collects per-step decision records."""

    records: List[DecisionRecord] = field(default_factory=list)

    def append(self, record: DecisionRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def temperatures(self) -> List[float]:
        return [r.temperature for r in self.records]

    @property
    def costs(self) -> List[float]:
        return [
            r.normalized_cost
            for r in self.records
            if r.normalized_cost is not None
        ]

    @property
    def migrations_per_step(self) -> List[int]:
        return [len(r.chosen) for r in self.records]

    def vm_move_counts(self) -> Dict[int, int]:
        """How often each VM was migrated."""
        counts: Dict[int, int] = {}
        for record in self.records:
            for vm_id, _ in record.chosen:
                counts[vm_id] = counts.get(vm_id, 0) + 1
        return counts

    def exploration_phase_end(self, quiet_steps: int = 20) -> int:
        """First step after which no window of ``quiet_steps`` contains
        more exploration-rate migrations than the long-run average.

        A pragmatic estimate of when the agent switched from exploring
        to exploiting; returns the last step when it never settles.
        """
        moves = self.migrations_per_step
        if len(moves) <= quiet_steps:
            return len(moves)
        overall = sum(moves) / len(moves)
        for start in range(len(moves) - quiet_steps):
            window = moves[start : start + quiet_steps]
            if sum(window) / quiet_steps <= overall:
                return start
        return len(moves)
