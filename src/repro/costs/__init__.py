"""Operation-cost models: energy (Eq. 2), SLA violation (Eq. 3), total (Eq. 6)."""

from repro.costs.energy import EnergyCostModel
from repro.costs.sla_cost import SlaCostModel
from repro.costs.model import OperationCostModel, StepCost
from repro.costs.dynamic import (
    TieredVmPricingSlaCostModel,
    TimeOfUseEnergyCostModel,
    peak_offpeak_schedule,
    spot_and_premium_prices,
)

__all__ = [
    "EnergyCostModel",
    "SlaCostModel",
    "OperationCostModel",
    "StepCost",
    "TimeOfUseEnergyCostModel",
    "TieredVmPricingSlaCostModel",
    "peak_offpeak_schedule",
    "spot_and_premium_prices",
]
