"""Dynamic cost-model variants (the paper's "other cost models" hook).

Section 3.3 notes the SLA cost model "can be replaced with other cost
models considering varying market prices and various subtle factors
without further modifying Megh", and Section 7 repeats the claim for the
whole cost model.  This module provides two such replacements:

* :class:`TimeOfUseEnergyCostModel` — electricity priced per time of
  day (peak/off-peak), the standard commercial tariff;
* :class:`TieredVmPricingSlaCostModel` — per-VM hourly prices (premium
  and spot users), so refunds reflect what each user actually pays.

Both are drop-in replacements for the flat models inside
:class:`repro.costs.model.OperationCostModel`; the simulation driver
accepts a pre-built cost model, and Megh is untouched.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.sla import SlaAccountant
from repro.config import CostConfig
from repro.costs.energy import EnergyCostModel
from repro.costs.sla_cost import SlaCostModel
from repro.errors import ConfigurationError

#: Maps the hour of (simulated) day to a price multiplier.
PriceSchedule = Callable[[float], float]


def peak_offpeak_schedule(
    peak_multiplier: float = 1.5,
    offpeak_multiplier: float = 0.7,
    peak_start_hour: float = 8.0,
    peak_end_hour: float = 22.0,
) -> PriceSchedule:
    """The classic two-band tariff: peak price by day, off-peak by night."""
    if peak_multiplier <= 0 or offpeak_multiplier <= 0:
        raise ConfigurationError("price multipliers must be > 0")
    if not 0 <= peak_start_hour < peak_end_hour <= 24:
        raise ConfigurationError("need 0 <= start < end <= 24")

    def schedule(hour_of_day: float) -> float:
        if peak_start_hour <= hour_of_day % 24.0 < peak_end_hour:
            return peak_multiplier
        return offpeak_multiplier

    return schedule


class TimeOfUseEnergyCostModel(EnergyCostModel):
    """Energy cost with a time-of-day price multiplier.

    Args:
        config: base cost parameters (the flat kWh price).
        schedule: hour-of-day -> multiplier on the flat price.
        interval_seconds: simulation interval, to track the clock.
        start_hour: hour of day at step 0.
    """

    def __init__(
        self,
        config: CostConfig,
        schedule: PriceSchedule,
        interval_seconds: float = 300.0,
        start_hour: float = 0.0,
    ) -> None:
        super().__init__(config)
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        self._schedule = schedule
        self._interval_hours = interval_seconds / 3600.0
        self._clock_hours = start_hour

    @property
    def clock_hours(self) -> float:
        """Simulated time of day at the *next* interval's start."""
        return self._clock_hours % 24.0

    def step_cost(
        self, datacenter: Datacenter, interval_seconds: float
    ) -> float:
        multiplier = self._schedule(self._clock_hours % 24.0)
        if multiplier <= 0:
            raise ConfigurationError("schedule returned a multiplier <= 0")
        flat = super().step_cost(datacenter, interval_seconds)
        surcharge = flat * (multiplier - 1.0)
        # Keep the running totals consistent with what was billed.
        self._total_usd += surcharge
        self._clock_hours += self._interval_hours
        return flat + surcharge


class TieredVmPricingSlaCostModel(SlaCostModel):
    """SLA refunds proportional to per-VM hourly prices.

    Args:
        config: base cost parameters (payback fractions, thresholds).
        vm_prices: VM id -> hourly price; missing ids use the config's
            flat ``vm_price_usd_per_hour``.
    """

    def __init__(
        self, config: CostConfig, vm_prices: Mapping[int, float]
    ) -> None:
        super().__init__(config)
        for vm_id, price in vm_prices.items():
            if price < 0:
                raise ConfigurationError(
                    f"vm {vm_id} has a negative price"
                )
        self._vm_prices = dict(vm_prices)
        self._default_price = config.vm_price_usd_per_hour

    def price_of(self, vm_id: int) -> float:
        return self._vm_prices.get(vm_id, self._default_price)

    def step_cost(
        self, accountant: SlaAccountant, interval_seconds: float
    ) -> float:
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        hours = interval_seconds / 3600.0
        usd = 0.0
        for vm_id, record in accountant.vms.items():
            rate = self.payback_rate(record.downtime_fraction)
            if rate > 0.0:
                usd += rate * self.price_of(vm_id) * hours
        self._total_usd += usd
        return usd


def spot_and_premium_prices(
    num_vms: int,
    premium_vms: Sequence[int],
    premium_price: float = 2.4,
    spot_price: float = 0.4,
) -> Mapping[int, float]:
    """Convenience tier assignment: premium ids, spot for the rest."""
    if premium_price < 0 or spot_price < 0:
        raise ConfigurationError("prices must be >= 0")
    prices = {vm_id: spot_price for vm_id in range(num_vms)}
    for vm_id in premium_vms:
        if not 0 <= vm_id < num_vms:
            raise ConfigurationError(f"premium vm {vm_id} out of range")
        prices[vm_id] = premium_price
    return prices
