"""Energy-consumption cost (Section 3.2).

Eq. (2) discretizes Eq. (1): the cost up to step ``T`` is
``c_p * sum_k sum_i y_i(k tau) * tau`` where ``y_i`` is the power drawn by
host ``i`` (from its SPECpower curve at its delivered utilization) and
``tau`` is the observation interval.
"""

from __future__ import annotations

from repro.cloudsim.datacenter import Datacenter
from repro.config import CostConfig
from repro.errors import ConfigurationError


class EnergyCostModel:
    """Accumulates the data center's energy cost step by step."""

    def __init__(self, config: CostConfig) -> None:
        self._config = config
        self._total_joules = 0.0
        self._total_usd = 0.0

    @property
    def total_joules(self) -> float:
        """Cumulative energy drawn so far."""
        return self._total_joules

    @property
    def total_usd(self) -> float:
        """Cumulative energy cost so far (``C_p`` of Eq. 2)."""
        return self._total_usd

    def step_cost(
        self, datacenter: Datacenter, interval_seconds: float
    ) -> float:
        """Charge one interval and return its incremental cost in USD.

        Power is evaluated at each host's *delivered* utilization, so an
        oversubscribed host is charged at 100 % (its CPU is saturated) and
        a sleeping host is charged nothing.
        """
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        watts = 0.0
        for pm in datacenter.pms:
            utilization = datacenter.delivered_utilization(pm.pm_id)
            watts += pm.power(utilization)
        joules = watts * interval_seconds
        usd = joules * self._config.energy_price_usd_per_watt_second
        self._total_joules += joules
        self._total_usd += usd
        return usd
