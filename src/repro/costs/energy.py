"""Energy-consumption cost (Section 3.2).

Eq. (2) discretizes Eq. (1): the cost up to step ``T`` is
``c_p * sum_k sum_i y_i(k tau) * tau`` where ``y_i`` is the power drawn by
host ``i`` (from its SPECpower curve at its delivered utilization) and
``tau`` is the observation interval.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.config import CostConfig
from repro.errors import ConfigurationError


class EnergyCostModel:
    """Accumulates the data center's energy cost step by step."""

    def __init__(self, config: CostConfig) -> None:
        self._config = config
        self._total_joules = 0.0
        self._total_usd = 0.0
        # Hosts grouped by power-model instance, built once per
        # datacenter for the vectorized evaluation path.
        self._groups_for: Optional[object] = None
        self._groups: Optional[List[Tuple[object, np.ndarray]]] = None

    @property
    def total_joules(self) -> float:
        """Cumulative energy drawn so far."""
        return self._total_joules

    @property
    def total_usd(self) -> float:
        """Cumulative energy cost so far (``C_p`` of Eq. 2)."""
        return self._total_usd

    def step_cost(
        self, datacenter: Datacenter, interval_seconds: float
    ) -> float:
        """Charge one interval and return its incremental cost in USD.

        Power is evaluated at each host's *delivered* utilization, so an
        oversubscribed host is charged at 100 % (its CPU is saturated) and
        a sleeping host is charged nothing.
        """
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        arrays = getattr(datacenter, "arrays", None)
        groups = self._power_groups(datacenter) if arrays is not None else None
        if arrays is not None and groups is not None:
            # Batched path: evaluate each power model once over its
            # hosts, zero sleeping hosts, and total left-to-right
            # (cumsum) in host-id order — bit-identical to the loop.
            utilization = arrays.pm_delivered_utilization()
            watts_by_pm = np.zeros(arrays.num_pms, dtype=np.float64)
            for model, pm_ids in groups:
                watts_by_pm[pm_ids] = model.power_batch(utilization[pm_ids])
            watts_by_pm[arrays.pm_asleep] = 0.0
            watts = float(np.cumsum(watts_by_pm)[-1]) if arrays.num_pms else 0.0
        else:
            watts = 0.0
            for pm in datacenter.pms:
                utilization = datacenter.delivered_utilization(pm.pm_id)
                watts += pm.power(utilization)
        joules = watts * interval_seconds
        usd = joules * self._config.energy_price_usd_per_watt_second
        self._total_joules += joules
        self._total_usd += usd
        return usd

    def _power_groups(
        self, datacenter: Datacenter
    ) -> Optional[List[Tuple[object, np.ndarray]]]:
        """Hosts grouped by power-model instance; None if any model
        lacks ``power_batch`` (then the scalar loop is used)."""
        if self._groups_for is datacenter:
            return self._groups
        by_model: dict = {}
        for pm in datacenter.pms:
            if not hasattr(pm.power_model, "power_batch"):
                self._groups_for = datacenter
                self._groups = None
                return None
            by_model.setdefault(id(pm.power_model), (pm.power_model, []))[
                1
            ].append(pm.pm_id)
        self._groups_for = datacenter
        self._groups = [
            (model, np.asarray(ids, dtype=np.int64))
            for model, ids in by_model.values()
        ]
        return self._groups
