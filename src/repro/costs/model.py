"""Aggregate operation cost (Eq. 6).

``C(s_{t-1}, s_t) = ΔC_p + ΔC_v`` — the energy cost plus SLA-violation
cost incurred in one observation interval.  This is the per-stage cost the
MDP of Section 4 minimizes and the quantity Figures 2(a)–5(a) plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.sla import SlaAccountant
from repro.config import CostConfig
from repro.costs.energy import EnergyCostModel
from repro.costs.sla_cost import SlaCostModel


@dataclass(frozen=True)
class StepCost:
    """Cost of one observation interval, in USD."""

    energy_usd: float
    sla_usd: float

    @property
    def total_usd(self) -> float:
        return self.energy_usd + self.sla_usd


class OperationCostModel:
    """Combines the energy and SLA models into Eq. (6)'s per-stage cost.

    Either sub-model can be replaced (e.g. with the time-of-use or
    tiered-pricing variants from :mod:`repro.costs.dynamic`) — the
    paper's claim that cost models are swappable without touching Megh.
    """

    def __init__(
        self,
        config: CostConfig,
        energy: EnergyCostModel | None = None,
        sla: SlaCostModel | None = None,
    ) -> None:
        self.energy = energy if energy is not None else EnergyCostModel(config)
        self.sla = sla if sla is not None else SlaCostModel(config)

    @property
    def total_usd(self) -> float:
        """Cumulative operation cost so far."""
        return self.energy.total_usd + self.sla.total_usd

    def step_cost(
        self,
        datacenter: Datacenter,
        accountant: SlaAccountant,
        interval_seconds: float,
    ) -> StepCost:
        """Charge one interval against both sub-models."""
        energy_usd = self.energy.step_cost(datacenter, interval_seconds)
        sla_usd = self.sla.step_cost(accountant, interval_seconds)
        return StepCost(energy_usd=energy_usd, sla_usd=sla_usd)
