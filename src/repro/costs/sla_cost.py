"""SLA-violation cost (Section 3.3, Eq. 3).

The paper refunds users a fraction of their payment depending on their
downtime percentage: 16.7 % when it falls in (0.05 %, 0.10 %] and 33.3 %
above 0.10 %.  We accrue the refund per observation interval: a VM whose
*current* downtime percentage sits in a violation band costs the provider
``payback * vm_price_per_hour * (tau / 3600)`` for that interval.  Accruing
per step (rather than re-evaluating a cumulative refund) keeps the
per-stage cost ``ΔC_v`` non-negative, as Eq. (6)'s discussion requires.
"""

from __future__ import annotations

import numpy as np

from repro.cloudsim.sla import SlaAccountant
from repro.config import CostConfig
from repro.errors import ConfigurationError


class SlaCostModel:
    """Accumulates SLA-violation paybacks step by step."""

    def __init__(self, config: CostConfig) -> None:
        self._config = config
        self._total_usd = 0.0

    @property
    def total_usd(self) -> float:
        """Cumulative SLA-violation cost so far (``C_v`` of Eq. 3)."""
        return self._total_usd

    def payback_rate(self, downtime_fraction: float) -> float:
        """Refund fraction for a VM at the given downtime percentage."""
        if downtime_fraction > self._config.major_downtime_threshold:
            return self._config.payback_major
        if downtime_fraction > self._config.minor_downtime_threshold:
            return self._config.payback_minor
        return 0.0

    def step_cost(
        self, accountant: SlaAccountant, interval_seconds: float
    ) -> float:
        """Charge one interval and return its incremental cost in USD."""
        if interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        hours = interval_seconds / 3600.0
        if type(self).payback_rate is SlaCostModel.payback_rate:
            # Batched path: evaluate the violation tiers over every
            # tracked VM's windowed fraction in one pass and total the
            # per-VM refunds left-to-right in first-seen order — the
            # same operation sequence as the per-record loop, so the
            # result is bit-identical.
            vm_ids, fractions = accountant.windowed_downtime_fractions()
            if vm_ids.size == 0:
                return 0.0
            rates = np.where(
                fractions > self._config.major_downtime_threshold,
                self._config.payback_major,
                np.where(
                    fractions > self._config.minor_downtime_threshold,
                    self._config.payback_minor,
                    0.0,
                ),
            )
            terms = rates * self._config.vm_price_usd_per_hour * hours
            usd = float(np.cumsum(terms)[-1])
        else:
            # A subclass overrode the tier schedule: honor it per record.
            usd = 0.0
            for record in accountant.vms.values():
                rate = self.payback_rate(record.downtime_fraction)
                if rate > 0.0:
                    usd += rate * self._config.vm_price_usd_per_hour * hours
        self._total_usd += usd
        return usd
