"""Parallel, cache-aware experiment execution (see ``docs/engine.md``).

The engine turns (workload-builder, scheduler-factory, seed, steps)
tuples into declarative, content-hashed :class:`JobSpec`s and executes
them inline or on a ``spawn`` worker pool with per-job timeout, bounded
retry, and crash isolation.  Successful results are stored in a
content-addressed on-disk cache; every job's lifecycle is journaled as
structured events.  The core guarantee: ``jobs=1`` and ``jobs=N``
produce identical simulated metrics, because every job rebuilds its
entire world from its seed.
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.events import EngineEvent, EventJournal, read_journal
from repro.engine.jobs import CODE_VERSION, JobSpec, content_hash, engine_salt
from repro.engine.pool import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExecutionEngine,
    JobResult,
    require_ok,
    run_jobs,
)
from repro.engine.registry import (
    BuilderSpec,
    SchedulerSpec,
    execute_spec,
    job_spec,
    register_builder,
    register_scheduler,
    resolve_builder,
    resolve_scheduler,
    spec_mmt_factories,
    spec_paper_factories,
)
from repro.engine.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)

__all__ = [
    "BuilderSpec",
    "CacheStats",
    "CODE_VERSION",
    "EngineEvent",
    "EventJournal",
    "ExecutionEngine",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "SchedulerSpec",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "content_hash",
    "engine_salt",
    "execute_spec",
    "job_spec",
    "read_journal",
    "register_builder",
    "register_scheduler",
    "require_ok",
    "resolve_builder",
    "resolve_scheduler",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "run_jobs",
    "spec_mmt_factories",
    "spec_paper_factories",
]
