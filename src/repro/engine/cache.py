"""Content-addressed on-disk store of serialized simulation results.

Keys are the :func:`repro.engine.jobs.content_hash` of a job spec, which
already folds in the code-version salt — so a cache directory can be
shared across branches and runs, and a deliberate salt bump (not a cache
wipe) is what invalidates stale semantics.  Entries are JSON files
written atomically (temp file + ``os.replace``), so a killed run never
leaves a half-written entry behind; a corrupt or unreadable entry is
treated as a miss and removed.

The cache never stores failed jobs: only results that a worker (or the
serial path) produced successfully are persisted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.cloudsim.simulation import SimulationResult
from repro.engine.serialize import result_from_json, result_to_json
from repro.errors import SerializationError


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one cache instance's lifetime."""

    hits: int
    misses: int
    stores: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses, "
            f"{self.stores} stored"
        )


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` payloads.

    Args:
        directory: cache root; created (with parents) if missing.
            Entries are sharded by the first two key characters to keep
            directory listings short at scale.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._hits = 0
        self._misses = 0
        self._stores = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write from a killed process, schema
        drift) is deleted and counted as a miss rather than poisoning
        the run.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._misses += 1
            return None
        try:
            result = result_from_json(text)
        except SerializationError:
            self._misses += 1
            self._evict(path)
            return None
        self._hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result_to_json(result)
        temporary = path.parent / f".{path.name}.{os.getpid()}.tmp"
        temporary.write_text(payload, encoding="utf-8")
        os.replace(temporary, path)
        self._stores += 1
        return path

    def contains(self, key: str) -> bool:
        """Whether an entry file exists (no validity check, no counters)."""
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.directory.glob("*/*.json"):
            self._evict(entry)
            removed += 1
        return removed

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone or unwritable; the miss is recorded anyway

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/store counters."""
        return CacheStats(
            hits=self._hits, misses=self._misses, stores=self._stores
        )
