"""Structured progress events and the JSONL journal.

Every job the engine touches leaves a trail: ``queued`` when admitted,
``cache-hit`` when replayed from the store, ``started``/``finished`` for
executions, ``failed``/``timeout``/``retried`` for the fault paths.
Events carry a monotonically increasing sequence number and measured
durations (``time.perf_counter`` deltas) — never wall-clock timestamps,
which would couple journal content to when the run happened (the same
discipline meghlint's MEGH002 enforces on simulation code).

The journal accumulates in memory and, when given a path, appends each
event as one JSON line immediately, so a crashed run still leaves a
readable trail up to the crash.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

# Event kinds, in lifecycle order.
QUEUED = "queued"
CACHE_HIT = "cache-hit"
STARTED = "started"
FINISHED = "finished"
FAILED = "failed"
TIMEOUT = "timeout"
RETRIED = "retried"

ALL_KINDS = (QUEUED, CACHE_HIT, STARTED, FINISHED, FAILED, TIMEOUT, RETRIED)


@dataclass(frozen=True)
class EngineEvent:
    """One engine occurrence: what happened, to which job, on which try.

    Attributes:
        seq: monotonically increasing per-journal sequence number.
        kind: one of :data:`ALL_KINDS`.
        job: the job's content hash (cache key).
        tag: the job's display label.
        attempt: 1-based execution attempt (0 for pre-execution events).
        duration_seconds: measured execution duration, where meaningful.
        detail: human-readable context (error text, retry reason).
    """

    seq: int
    kind: str
    job: str
    tag: str = ""
    attempt: int = 0
    duration_seconds: Optional[float] = None
    detail: str = ""

    def to_json(self) -> str:
        """One-line JSON rendering for the journal file."""
        return json.dumps(asdict(self), separators=(",", ":"), sort_keys=True)


class EventJournal:
    """Ordered record of engine events, optionally mirrored to a JSONL file."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: List[EngineEvent] = []
        self._stream: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", encoding="utf-8")

    def emit(
        self,
        kind: str,
        job: str,
        tag: str = "",
        attempt: int = 0,
        duration_seconds: Optional[float] = None,
        detail: str = "",
    ) -> EngineEvent:
        """Record one event (and append it to the file, if any)."""
        event = EngineEvent(
            seq=len(self.events),
            kind=kind,
            job=job,
            tag=tag,
            attempt=attempt,
            duration_seconds=duration_seconds,
            detail=detail,
        )
        self.events.append(event)
        if self._stream is not None:
            self._stream.write(event.to_json() + "\n")
            self._stream.flush()
        return event

    def counts(self) -> Dict[str, int]:
        """Events per kind (kinds with zero occurrences included)."""
        totals = {kind: 0 for kind in ALL_KINDS}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def count(self, kind: str) -> int:
        """Number of events of ``kind``."""
        return sum(1 for event in self.events if event.kind == kind)

    def close(self) -> None:
        """Close the backing file (in-memory events remain readable)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: Union[str, Path]) -> List[EngineEvent]:
    """Load a JSONL journal back into :class:`EngineEvent` objects."""
    events: List[EngineEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(EngineEvent(**json.loads(line)))
    return events
