"""Declarative job specifications with stable content-addressed identity.

The execution engine never ships callables across process boundaries.  A
unit of work is a frozen :class:`JobSpec` that *names* a simulation
builder and a scheduler constructor from the engine registry (see
:mod:`repro.engine.registry`), together with their parameters, the
simulation seed, and the step horizon.  Specs are:

* **picklable** — plain frozen dataclasses of primitives, safe to send
  to ``spawn`` workers;
* **canonical** — parameters are frozen into a sorted, hashable form, so
  two specs describing the same experiment compare (and hash) equal no
  matter how their parameter dicts were ordered;
* **content-addressed** — :func:`content_hash` derives a stable SHA-256
  key over the spec and a code-version salt, which is the cache key for
  :class:`repro.engine.cache.ResultCache`.

The salt (:data:`CODE_VERSION`, overridable via the
``REPRO_ENGINE_SALT`` environment variable) is bumped deliberately when
simulation semantics change; unrelated code changes keep cached results
valid, which is the point of caching at experiment granularity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Cache-key salt naming the simulation semantics version.  Bump this when
#: a change alters what a (builder, scheduler, seed, steps) tuple computes
#: — cached results produced under another salt are then never replayed.
CODE_VERSION = "megh-engine-1"

#: Environment override for the salt (useful to segregate cache namespaces
#: in CI or to force a cold cache without deleting files).
SALT_ENV_VAR = "REPRO_ENGINE_SALT"

#: Tags marking frozen containers so freezing is unambiguous and
#: invertible: a mapping and a sequence of pairs never collide.
_DICT_TAG = "__dict__"
_LIST_TAG = "__list__"

_SCALAR_TYPES = (str, int, float, bool, type(None))


def freeze(value: Any) -> Any:
    """Convert ``value`` into a canonical, hashable, picklable form.

    Mappings become tagged tuples of sorted ``(key, frozen_value)``
    pairs, sequences become tagged tuples, dataclass instances are
    frozen via their field dict, and numpy scalars collapse to Python
    scalars.  :func:`thaw` inverts the transformation.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return freeze(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        items = tuple(
            (str(key), freeze(item)) for key, item in sorted(value.items())
        )
        return (_DICT_TAG, items)
    if isinstance(value, (list, tuple)):
        return (_LIST_TAG, tuple(freeze(item) for item in value))
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        scalar = item()
        if isinstance(scalar, _SCALAR_TYPES):
            return scalar
    raise ConfigurationError(
        f"job parameters must be JSON-like scalars or containers, "
        f"got {type(value).__name__}: {value!r}"
    )


def thaw(value: Any) -> Any:
    """Invert :func:`freeze`: tagged tuples back to dicts and lists."""
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _DICT_TAG:
            return {key: thaw(item) for key, item in value[1]}
        if len(value) == 2 and value[0] == _LIST_TAG:
            return [thaw(item) for item in value[1]]
        return tuple(thaw(item) for item in value)
    return value


def freeze_params(params: Optional[Mapping[str, Any]]) -> Tuple:
    """Freeze a keyword-parameter mapping into sorted ``(name, value)`` pairs."""
    if not params:
        return ()
    return tuple(
        (str(name), freeze(value)) for name, value in sorted(params.items())
    )


def thaw_params(frozen: Tuple) -> Dict[str, Any]:
    """Rebuild the keyword-argument dict a registry callable expects."""
    return {name: thaw(value) for name, value in frozen}


@dataclass(frozen=True)
class JobSpec:
    """One simulation run, fully described by names and parameters.

    Attributes:
        builder: registry name (or ``module:attr`` dotted path) of the
            simulation builder; called as ``builder(seed=seed, **params)``.
        scheduler: registry name (or dotted path) of the scheduler
            constructor; called as ``scheduler(simulation, **params)``.
        seed: simulation seed — the workload, fleet, and initial
            placement all derive from it, which is what makes a job
            self-contained and order-independent.
        num_steps: step horizon passed to :meth:`Simulation.run`
            (``None`` runs the simulation config's horizon).
        builder_params: frozen keyword parameters for the builder.
        scheduler_params: frozen keyword parameters for the scheduler
            (including the scheduler's own seed, when it takes one).
        tag: display label for journals and progress output.  Excluded
            from the content hash: it names the job, not the computation.
    """

    builder: str
    scheduler: str
    seed: int
    num_steps: Optional[int] = None
    builder_params: Tuple = ()
    scheduler_params: Tuple = ()
    tag: str = ""

    @classmethod
    def create(
        cls,
        builder: str,
        scheduler: str,
        seed: int,
        num_steps: Optional[int] = None,
        builder_params: Optional[Mapping[str, Any]] = None,
        scheduler_params: Optional[Mapping[str, Any]] = None,
        tag: str = "",
    ) -> "JobSpec":
        """Build a spec, canonicalizing the parameter mappings."""
        if not builder or not scheduler:
            raise ConfigurationError(
                "a job needs both a builder and a scheduler name"
            )
        return cls(
            builder=builder,
            scheduler=scheduler,
            seed=int(seed),
            num_steps=None if num_steps is None else int(num_steps),
            builder_params=freeze_params(builder_params),
            scheduler_params=freeze_params(scheduler_params),
            tag=tag or f"{scheduler}@seed{seed}",
        )

    def builder_kwargs(self) -> Dict[str, Any]:
        """Thawed keyword arguments for the builder callable."""
        return thaw_params(self.builder_params)

    def scheduler_kwargs(self) -> Dict[str, Any]:
        """Thawed keyword arguments for the scheduler callable."""
        return thaw_params(self.scheduler_params)


def engine_salt() -> str:
    """The active cache-key salt (env override, else :data:`CODE_VERSION`)."""
    return os.environ.get(SALT_ENV_VAR) or CODE_VERSION


def content_hash(spec: JobSpec) -> str:
    """Stable SHA-256 key for a spec under the current code-version salt.

    The hash covers every field that determines the computation (builder,
    scheduler, parameters, seed, horizon) plus the salt; the display
    ``tag`` is deliberately excluded.
    """
    payload = {
        "salt": engine_salt(),
        "builder": spec.builder,
        "builder_params": spec.builder_params,
        "scheduler": spec.scheduler,
        "scheduler_params": spec.scheduler_params,
        "seed": spec.seed,
        "num_steps": spec.num_steps,
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=list
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
